//! # realloc-sched
//!
//! A production-quality Rust implementation of **"Reallocation Problems in
//! Scheduling"** (Bender, Farach-Colton, Fekete, Fineman, Gilbert;
//! SPAA 2013, arXiv:1305.6555).
//!
//! Unit-length jobs with arrival/deadline windows are inserted and deleted
//! online; the scheduler maintains a feasible schedule on `m` machines
//! while rescheduling only `O(min{log* n, log* Δ})` already-placed jobs per
//! request and migrating **at most one** job across machines per request —
//! provided the instance keeps constant-factor slack
//! (`γ`-underallocation). See `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the measured reproduction of every
//! theorem/lemma/figure in the paper.
//!
//! # Quickstart
//!
//! ```
//! use realloc_sched::{JobId, Reallocator, TheoremOneScheduler, Window};
//!
//! // 4 machines, trim factor γ = 8.
//! let mut sched = TheoremOneScheduler::theorem_one(4, 8);
//!
//! // A patient wants an appointment somewhere in slots [10, 30).
//! let outcome = sched.insert(JobId(1), Window::new(10, 30)).unwrap();
//! assert_eq!(outcome.reallocation_cost(), 0); // nobody else moved
//!
//! let placement = sched.snapshot().placement(JobId(1)).unwrap();
//! assert!((10..30).contains(&placement.slot));
//!
//! // Cancel it. Deletions migrate at most one other job.
//! let outcome = sched.delete(JobId(1)).unwrap();
//! assert!(outcome.migration_cost() <= 1);
//! ```
//!
//! # Crate map
//!
//! | Crate | Paper section | Contents |
//! |---|---|---|
//! | [`core`] | §2 | windows, alignment, tower, costs, feasibility |
//! | [`reservation`] | §4, Fig. 1 | the reservation pecking-order scheduler |
//! | [`multi`] | §3, §5 | machine delegation + alignment wrappers |
//! | [`baselines`] | §1, §4, §6 | naive / EDF / LLF / offline / sized-EDF |
//! | [`workloads`] | §6, §7 | churn generators and lower-bound adversaries |
//! | [`telemetry`] | — | metrics registry, trace ring, TCP exposition |
//! | [`engine`] | — | sharded, batched, multi-tenant scheduling service |
//! | [`cluster`] | — | journal-shipping replication: primary/replica, fenced failover |
//! | [`service`] | — | client-facing TCP serving tier with per-tenant QoS |
//! | [`store`] | — | fsync'd on-disk journal/checkpoint store, fault injection, crash matrix |
//! | [`sim`] | — | harness, stats, experiment binaries |
//!
//! # Serving layer
//!
//! [`Engine`] shards requests across independent scheduler backends,
//! ingests them in batches, and aggregates per-shard cost telemetry:
//!
//! ```
//! use realloc_sched::{BackendKind, Engine, EngineConfig, JobId, Request, Window};
//!
//! let mut engine = Engine::new(EngineConfig {
//!     shards: 4,
//!     backend: BackendKind::TheoremOne { gamma: 8 },
//!     ..EngineConfig::default()
//! });
//! for i in 0..32u64 {
//!     engine.submit(Request::Insert { id: JobId(i), window: Window::new(0, 256) });
//! }
//! let report = engine.flush();
//! assert_eq!(report.processed(), 32);
//! assert_eq!(engine.metrics().active_jobs, 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core types (re-export of `realloc-core`).
pub mod core {
    pub use realloc_core::*;
}
/// The §4 reservation scheduler (re-export of `realloc-reservation`).
pub mod reservation {
    pub use realloc_reservation::*;
}
/// The §3/§5 wrappers (re-export of `realloc-multi`).
pub mod multi {
    pub use realloc_multi::*;
}
/// Baseline schedulers (re-export of `realloc-baselines`).
pub mod baselines {
    pub use realloc_baselines::*;
}
/// Workload generators (re-export of `realloc-workloads`).
pub mod workloads {
    pub use realloc_workloads::*;
}
/// Metrics, tracing, and exposition (re-export of `realloc-telemetry`).
pub mod telemetry {
    pub use realloc_telemetry::*;
}
/// The sharded, batched scheduling service (re-export of `realloc-engine`).
pub mod engine {
    pub use realloc_engine::*;
}
/// Journal-shipping replication (re-export of `realloc-cluster`).
pub mod cluster {
    pub use realloc_cluster::*;
}
/// Client-facing serving tier with QoS (re-export of `realloc-service`).
pub mod service {
    pub use realloc_service::*;
}
/// Crash-durable on-disk store (re-export of `realloc-store`).
pub mod store {
    pub use realloc_store::*;
}
/// Simulation harness (re-export of `realloc-sim`).
pub mod sim {
    pub use realloc_sim::*;
}

pub use realloc_cluster::{
    ApplyError, ClusterError, Frame, FrameSink, GroupError, JournalRelay, Payload, Primary,
    Replica, ReplicationGroup, TransportError,
};
pub use realloc_core::router::Router;
pub use realloc_core::{
    log_star, CostMeter, Error, Job, JobId, Move, Placement, Reallocator, Request, RequestOutcome,
    RequestSeq, Restorable, ScheduleSnapshot, SingleMachineReallocator, SlotMove, Tower, Window,
};
pub use realloc_engine::{
    BackendKind, CoalesceConfig, DurabilitySink, Engine, EngineConfig, EpochRecord, Journal,
    JournalCursor, JournalRecord, Metrics, RecoverError, ReplayError, ResizeError, ResizeReport,
    TenantId,
};
pub use realloc_multi::{AdaptiveScheduler, ReallocatingScheduler, TheoremOneScheduler};
pub use realloc_reservation::{DeamortizedScheduler, ReservationScheduler, TrimmedScheduler};
pub use realloc_service::{QosConfig, RateLimit, ServiceConfig, ServiceServer};
pub use realloc_store::{
    DurableStore, FaultIo, FlightRecorder, FsIo, MemIo, RecoverFromDir, StoreError, StoreIo,
};
pub use realloc_telemetry::{
    fetch_metrics, fetch_trace, labeled, parse_sample, Clock, Collector, CollectorConfig,
    FleetSnapshot, HealthCheck, NodeRole, NodeSpec, NodeStatus, ObsClient, ObsServer, Severity,
    Telemetry, TraceCtx,
};
