//! Cross-crate integration tests: the full Theorem-1 pipeline driven by
//! the workload generators, validated by the core feasibility machinery.

use realloc_sched::core::schedule::validate;
use realloc_sched::sim::harness::churn_seq;
use realloc_sched::sim::runner::{run, RunOptions};
use realloc_sched::workloads::scenarios::{cloud_cluster, doctors_office};
use realloc_sched::{JobId, Reallocator, Request, RequestSeq, TheoremOneScheduler, Window};
use std::collections::BTreeMap;

fn active_after(seq: &RequestSeq) -> BTreeMap<JobId, Window> {
    let mut active = BTreeMap::new();
    for &r in seq.requests() {
        match r {
            Request::Insert { id, window } => {
                active.insert(id, window);
            }
            Request::Delete { id } => {
                active.remove(&id);
            }
        }
    }
    active
}

#[test]
fn theorem_one_on_certified_churn_stays_feasible() {
    for &(m, gamma) in &[(1usize, 8u64), (2, 8), (4, 16)] {
        let seq = churn_seq(m, gamma, 150 * m, 1 << 10, true, 2500, 21);
        let mut sched = TheoremOneScheduler::theorem_one(m, gamma);
        let report = run(
            &mut sched,
            &seq,
            RunOptions {
                validate_each_step: true,
                fail_fast: true,
            },
        )
        .unwrap();
        assert_eq!(report.executed, seq.len());
        assert!(report.meter.max_migrations() <= 1, "m={m}");
        for machine in 0..m {
            sched.backend(machine).inner().check_invariants().unwrap();
        }
    }
}

#[test]
fn migrations_at_most_one_per_request_everywhere() {
    let seq = churn_seq(6, 16, 600, 1 << 12, true, 4000, 33);
    let mut sched = TheoremOneScheduler::theorem_one(6, 16);
    let report = run(&mut sched, &seq, RunOptions::default()).unwrap();
    assert!(report.meter.samples().iter().all(|s| s.migrations <= 1));
}

#[test]
fn scenarios_run_end_to_end() {
    let seq = doctors_office(5, 9).generate(1200);
    let mut sched = TheoremOneScheduler::theorem_one(1, 8);
    run(&mut sched, &seq, RunOptions::default()).unwrap();
    validate(&sched.snapshot(), &active_after(&seq), 1).unwrap();

    let seq = cloud_cluster(4, 10).generate(3000);
    let mut sched = TheoremOneScheduler::theorem_one(4, 16);
    run(&mut sched, &seq, RunOptions::default()).unwrap();
    validate(&sched.snapshot(), &active_after(&seq), 4).unwrap();
}

#[test]
fn identical_stream_all_schedulers_feasible() {
    use realloc_sched::baselines::{EdfRescheduler, LlfRescheduler, NaivePeckingScheduler};
    use realloc_sched::ReallocatingScheduler;

    let seq = churn_seq(2, 8, 120, 1 << 8, false, 1500, 5);
    let active = active_after(&seq);

    let mut ours = TheoremOneScheduler::theorem_one(2, 8);
    run(&mut ours, &seq, RunOptions::default()).unwrap();
    validate(&ours.snapshot(), &active, 2).unwrap();

    let mut naive = ReallocatingScheduler::from_factory(2, NaivePeckingScheduler::new);
    run(&mut naive, &seq, RunOptions::default()).unwrap();
    validate(&naive.snapshot(), &active, 2).unwrap();

    let mut edf = EdfRescheduler::new(2);
    run(&mut edf, &seq, RunOptions::default()).unwrap();
    validate(&edf.snapshot(), &active, 2).unwrap();

    let mut llf = LlfRescheduler::new(2);
    run(&mut llf, &seq, RunOptions::default()).unwrap();
    validate(&llf.snapshot(), &active, 2).unwrap();
}

#[test]
fn costs_reported_match_snapshot_diffs() {
    // The outcome moves must exactly explain the before/after snapshots.
    let seq = churn_seq(2, 8, 80, 1 << 8, true, 800, 8);
    let mut sched = TheoremOneScheduler::theorem_one(2, 8);
    let mut before = sched.snapshot();
    for &r in seq.requests() {
        let out = sched.request(r).unwrap();
        let after = sched.snapshot();
        let expected = before.diff(&after);
        let got = out.netted();
        // Same multiset of (job, from, to), order-insensitive.
        let mut a: Vec<_> = expected.iter().map(|m| (m.job, m.from, m.to)).collect();
        let mut b: Vec<_> = got.moves.iter().map(|m| (m.job, m.from, m.to)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "outcome does not explain the schedule change");
        before = after;
    }
}

#[test]
fn log_star_bound_sanity() {
    // The per-request cost (excluding trim rebuilds) stays within a small
    // multiple of log*(Δ) on certified churn.
    let seq = churn_seq(1, 8, 500, 1 << 20, false, 5000, 55);
    let mut sched = realloc_sched::ReallocatingScheduler::from_factory(
        1,
        realloc_sched::ReservationScheduler::new,
    );
    let report = run(&mut sched, &seq, RunOptions::default()).unwrap();
    let bound = 8 * (realloc_sched::log_star(1 << 20) as u64 + 1);
    assert!(
        report.meter.max_reallocations() <= bound,
        "max {} exceeds O(log* Δ) sanity bound {bound}",
        report.meter.max_reallocations()
    );
}
