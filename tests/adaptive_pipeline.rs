//! Integration: the adaptive scheduler as the per-machine backend of the
//! full multi-machine pipeline — over-packed phases degrade to Lemma 4
//! economics, slack phases recover to Theorem 1 economics, and the
//! schedule stays feasible throughout.

use realloc_sched::baselines::NaivePeckingScheduler;
use realloc_sched::core::schedule::validate;
use realloc_sched::multi::adaptive::AdaptiveScheduler;
use realloc_sched::{JobId, ReallocatingScheduler, Reallocator, ReservationScheduler, Window};
use std::collections::BTreeMap;

type Backend = AdaptiveScheduler<
    ReservationScheduler,
    NaivePeckingScheduler,
    fn() -> ReservationScheduler,
    fn() -> NaivePeckingScheduler,
>;

fn pipeline(machines: usize) -> ReallocatingScheduler<Backend> {
    ReallocatingScheduler::from_factory(machines, || {
        AdaptiveScheduler::new(
            ReservationScheduler::new as fn() -> ReservationScheduler,
            NaivePeckingScheduler::new as fn() -> NaivePeckingScheduler,
        )
    })
}

#[test]
fn overpack_then_recover_through_the_pipeline() {
    let machines = 2;
    let mut sched = pipeline(machines);
    let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
    let mut next = 0u64;

    // Phase 1: saturate a region across both machines (γ → 1): per-machine
    // backends must degrade rather than refuse.
    let w = Window::new(0, 256);
    for _ in 0..(machines as u64 * 256) {
        let id = JobId(next);
        next += 1;
        sched.insert(id, w).unwrap();
        active.insert(id, w);
    }
    validate(&sched.snapshot(), &active, machines).unwrap();
    assert!(
        (0..machines).any(|m| sched.backend(m).degradations() > 0),
        "full saturation must degrade at least one machine"
    );

    // Phase 2: drain most of it; backends recover to the fast path.
    let doomed: Vec<JobId> = active.keys().copied().take(active.len() - 8).collect();
    for id in doomed {
        let out = sched.delete(id).unwrap();
        active.remove(&id);
        assert!(out.netted().migration_cost() <= 1);
    }
    validate(&sched.snapshot(), &active, machines).unwrap();
    for m in 0..machines {
        assert_eq!(
            sched.backend(m).mode(),
            realloc_sched::multi::adaptive::Mode::Fast,
            "machine {m} did not recover"
        );
    }

    // Phase 3: normal slack-heavy operation works again.
    for i in 0..64u64 {
        let w = Window::with_span(1024 + (i % 8) * 512, 512);
        let id = JobId(next);
        next += 1;
        sched.insert(id, w).unwrap();
        active.insert(id, w);
    }
    validate(&sched.snapshot(), &active, machines).unwrap();
}
