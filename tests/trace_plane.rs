//! End-to-end causal tracing across the full stack, over real TCP.
//!
//! One traced client request must leave correlated spans — all carrying
//! the SAME trace id — in the rings of every node it touched:
//!
//! * the serving tier's receipt and admission points,
//! * the engine's queue-wait point and flush span,
//! * the durable store's group-commit fsync span,
//! * the replication link's ship point (primary side),
//! * and the replica's apply point (scraped from the *replica's* own
//!   registry over its ObsServer).
//!
//! The id travels three different ways — batch metadata through the
//! engine, an out-of-band comment on the replication frame, a ` trace`
//! suffix on the client reply — and none of them may perturb digested
//! state: the replica must end byte-identical to the primary.

use realloc_sched::cluster::tcp::{PrimaryLink, ReplicaServer};
use realloc_sched::cluster::transport::FrameSink as _;
use realloc_sched::engine::FlushMode;
use realloc_sched::service::QosConfig;
use realloc_sched::workloads::driver::{QosClient, QosResponse};
use realloc_sched::{
    BackendKind, DurableStore, Engine, EngineConfig, JournalRelay, MemIo, ObsServer, Replica,
    ServiceConfig, ServiceServer, StoreIo, Telemetry,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn engine_config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 4,
    }
}

/// Trace-ring lines (7th column = trace id) under `id`, keyed.
fn traced_keys(dump: &str, id: u64) -> Vec<String> {
    let want = id.to_string();
    dump.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            (f.len() == 7 && f[6] == want).then(|| f[3].to_string())
        })
        .collect()
}

#[test]
fn one_trace_id_spans_service_flush_fsync_ship_and_replica_apply() {
    // Primary node: telemetry + durable engine + serving tier + obs.
    let pt = Telemetry::new();
    let io: Arc<dyn StoreIo> = Arc::new(MemIo::new());
    let config = engine_config();
    let store = DurableStore::create(Arc::clone(&io), Path::new("/primary"), &config).unwrap();
    let mut engine = Engine::new(config);
    engine.attach_telemetry(&pt);
    engine.attach_durability(Box::new(store)).unwrap();
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        engine,
        ServiceConfig {
            qos: QosConfig::default(),
            read_timeout: Some(Duration::from_secs(5)),
            max_batch: 16,
            flush: FlushMode::Durable,
            trace_sample_every: 1, // trace every batch
        },
        &pt,
    )
    .unwrap();
    let p_obs = ObsServer::bind("127.0.0.1:0", pt.clone()).unwrap();

    // Replica node: own registry, own obs plane, real TCP apply path.
    let rt = Telemetry::new();
    let mut replica = Replica::new();
    replica.attach_telemetry(&rt);
    let mut r_server = ReplicaServer::bind("127.0.0.1:0", replica).unwrap();
    let r_obs = ObsServer::bind("127.0.0.1:0", rt.clone()).unwrap();

    // The relay tails the service tier's shared engine into the stream.
    let mut relay = JournalRelay::new(server.engine(), 1).unwrap();
    relay.attach_telemetry(&pt);
    let mut link = PrimaryLink::connect(r_server.addr()).unwrap();
    link.attach_telemetry(&pt);
    let (owed, boot) = relay.bootstrap().expect("fresh engine has no queue");
    assert!(owed.is_empty());
    link.send(&boot).unwrap();
    link.drain().unwrap();

    // One traced request through the serving tier.
    let mut client = QosClient::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    client.send_raw("place 1 7 0 256").unwrap();
    let (response, trace) = client.recv_traced().unwrap();
    assert!(
        matches!(response, QosResponse::Placed(_)),
        "unexpected reply: {response:?}"
    );
    let tid = trace.expect("trace_sample_every=1 annotates every admitted reply");
    assert_ne!(tid, 0);

    // Ship the traced batch to the replica and wait for its ack.
    let frames = relay.poll();
    assert!(!frames.is_empty());
    assert!(
        frames.iter().any(|f| f.trace.map(|tc| tc.id) == Some(tid)),
        "the shipped frame must carry the client's trace id"
    );
    for f in &frames {
        link.send(f).unwrap();
    }
    link.drain().unwrap();

    // Scrape BOTH nodes' rings over TCP, exactly as an operator would.
    let p_dump = realloc_sched::fetch_trace(p_obs.addr()).unwrap();
    let p_keys = traced_keys(&p_dump, tid);
    for key in ["receipt", "admit", "queue", "flush", "fsync", "ship"] {
        assert!(
            p_keys.iter().any(|k| k == key),
            "primary ring missing '{key}' under trace {tid}: {p_dump}"
        );
    }
    let r_dump = realloc_sched::fetch_trace(r_obs.addr()).unwrap();
    assert!(
        traced_keys(&r_dump, tid).iter().any(|k| k == "apply"),
        "replica ring missing 'apply' under trace {tid}: {r_dump}"
    );

    // Tracing stayed out of digested state: byte-identical lineages.
    let primary_digest = server.engine().lock().unwrap().state_digest();
    let replica_digest = r_server
        .replica()
        .lock()
        .unwrap()
        .state_digest()
        .expect("bootstrapped");
    assert_eq!(primary_digest, replica_digest);

    r_server.shutdown();
}
