//! Side-by-side policy comparison under multiprocessor churn: the
//! reservation scheduler (Theorem 1), the naive pecking-order baseline
//! (Lemma 4) and EDF re-planning, on the identical request stream.
//!
//! ```sh
//! cargo run --release --example multiprocessor_churn
//! ```

use realloc_sched::baselines::{EdfRescheduler, NaivePeckingScheduler};
use realloc_sched::sim::harness::churn_seq;
use realloc_sched::sim::runner::{run, RunOptions};
use realloc_sched::sim::stats::Summary;
use realloc_sched::{ReallocatingScheduler, TheoremOneScheduler};

fn main() {
    let machines = 4;
    let seq = churn_seq(machines, 8, 400, 1 << 12, true, 8000, 3);
    println!(
        "churn stream: {} requests on {machines} machines, γ = 8 slack\n",
        seq.len()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "scheduler", "mean", "p99", "max", "total", "migr max"
    );

    let mut ours = TheoremOneScheduler::theorem_one(machines, 8);
    let r = run(&mut ours, &seq, RunOptions::default()).unwrap();
    print_row("reservation+trim", &r);

    let mut naive = ReallocatingScheduler::from_factory(machines, NaivePeckingScheduler::new);
    let r = run(&mut naive, &seq, RunOptions::default()).unwrap();
    print_row("naive pecking (L4)", &r);

    let mut edf = EdfRescheduler::new(machines);
    let r = run(&mut edf, &seq, RunOptions::default()).unwrap();
    print_row("EDF re-planning", &r);

    println!("\n(on slack-heavy random churn every policy is cheap on average;");
    println!(" the adversarial examples show where naive pays Θ(log n) and");
    println!(" EDF pays Θ(n) while the reservation scheduler stays O(log* n))");
}

fn print_row(name: &str, r: &realloc_sched::sim::runner::RunReport) {
    let s = Summary::of(r.meter.samples().iter().map(|x| x.reallocations));
    println!(
        "{:<22} {:>8.3} {:>8} {:>8} {:>10} {:>10}",
        name,
        s.mean,
        s.p99,
        s.max,
        r.meter.total_reallocations(),
        r.meter.max_migrations()
    );
}
