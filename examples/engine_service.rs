//! The serving layer end-to-end: three tenants' churn streams batched
//! into a sharded engine, telemetry printed, then the journal replayed
//! to prove deterministic recovery.
//!
//! ```sh
//! cargo run --release --example engine_service
//! ```

use realloc_sched::workloads::{ChurnConfig, ChurnGenerator, TenantFeed};
use realloc_sched::{BackendKind, Engine, EngineConfig, Journal, TenantId};

fn main() {
    let mut engine = Engine::new(EngineConfig {
        shards: 4,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        ..EngineConfig::default()
    });

    // Three tenants, each with an independent density-certified stream.
    let mut feed = TenantFeed::new(
        (1u16..=3)
            .map(|t| {
                (
                    t,
                    ChurnGenerator::new(
                        ChurnConfig {
                            machines: 2,
                            gamma: 8,
                            horizon: 1 << 10,
                            spans: vec![1, 4, 16, 64],
                            target_active: 40,
                            insert_bias: 0.6,
                            unaligned: false,
                        },
                        t as u64,
                    ),
                )
            })
            .collect(),
    );

    let mut submitted = 0usize;
    while let Some(batch) = feed.next_batch(32) {
        for (tenant, request) in &batch {
            engine
                .submit_for(TenantId(*tenant), *request)
                .expect("ids fit the tenant space");
        }
        submitted += batch.len();
        let report = engine.flush();
        assert_eq!(
            report.failed(),
            0,
            "density-certified streams never decline"
        );
        if submitted >= 3000 {
            break;
        }
    }

    // The reserved tenant 0 (aliasing the raw submit() id space) is
    // refused at the front door.
    let refused = engine.submit_for(
        TenantId(0),
        realloc_sched::Request::Delete {
            id: realloc_sched::JobId(1),
        },
    );
    println!("submit_for(TenantId(0), ..) -> {refused:?}");
    assert!(refused.is_err(), "reserved tenant must be rejected");

    let m = engine.metrics();
    println!(
        "{} requests over {} batches; {} jobs active across {} shards (imbalance {:.2})",
        m.requests,
        engine.batches(),
        m.active_jobs,
        m.shards.len(),
        m.imbalance()
    );
    for s in &m.shards {
        println!(
            "  shard {}: {} requests, {} active, {} reallocs (p99 {} per request)",
            s.shard, s.requests, s.active_jobs, s.reallocations, s.cost.p99
        );
    }

    // Crash-recovery drill: serialize the journal, parse it back, replay
    // it into a fresh engine, and confirm the rebuilt schedule is
    // identical, placement for placement.
    let text = engine.journal().expect("journal enabled").to_text();
    let recovered = Journal::from_text(&text)
        .expect("journal parses")
        .replay()
        .expect("replay matches the recording");
    assert_eq!(recovered.placements(), engine.placements());
    println!(
        "journal: {} events, {} bytes serialized; replay rebuilt {} placements exactly",
        engine.journal().unwrap().iter_events().count(),
        text.len(),
        recovered.placements().len()
    );
}
