//! Quickstart: schedule, reschedule, and observe reallocation costs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use realloc_sched::{JobId, Reallocator, TheoremOneScheduler, Window};

fn main() {
    // Two machines, trim factor γ = 8 (the slack knob of Theorem 1).
    let mut sched = TheoremOneScheduler::theorem_one(2, 8);

    // Book three jobs with overlapping windows.
    for (id, (a, d)) in [(1u64, (0u64, 16u64)), (2, (0, 8)), (3, (4, 12))] {
        let outcome = sched.insert(JobId(id), Window::new(a, d)).unwrap();
        let p = sched.snapshot().placement(JobId(id)).unwrap();
        println!(
            "insert j{id} window [{a}, {d})  -> machine {} slot {}  ({} other jobs moved)",
            p.machine,
            p.slot,
            outcome.reallocation_cost()
        );
    }

    // Delete one; the wrapper migrates at most one job to rebalance.
    let outcome = sched.delete(JobId(2)).unwrap();
    println!(
        "delete j2 -> {} reallocations, {} migrations (Theorem 1: ≤ 1)",
        outcome.reallocation_cost(),
        outcome.migration_cost()
    );

    // The schedule stays feasible at all times; inspect it.
    println!("\nfinal schedule:");
    for (job, p) in sched.snapshot().iter() {
        println!("  {job} -> machine {} slot {}", p.machine, p.slot);
    }
    println!();
    print!(
        "{}",
        realloc_sched::sim::report::gantt(&sched.snapshot(), 2, 0, 16)
    );
}
