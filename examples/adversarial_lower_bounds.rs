//! Reproduces the paper's §6 lower-bound constructions interactively:
//! watch the Lemma 12 toggle force Θ(n) reallocations per request on EDF,
//! and the Lemma 11 adversary extract migrations from any scheduler that
//! serves it.
//!
//! ```sh
//! cargo run --release --example adversarial_lower_bounds
//! ```

use realloc_sched::baselines::EdfRescheduler;
use realloc_sched::workloads::{lemma12_toggle, Lemma11Adversary};
use realloc_sched::{Reallocator, TheoremOneScheduler};

fn main() {
    // --- Lemma 12: the staircase toggle --------------------------------
    let eta = 64;
    println!("Lemma 12 toggle, η = {eta} staircase jobs, 10 rounds on EDF:");
    let seq = lemma12_toggle(eta, 10);
    let mut edf = EdfRescheduler::new(1);
    let mut toggle_costs = Vec::new();
    for (i, &r) in seq.requests().iter().enumerate() {
        let out = edf.request(r).unwrap();
        if i >= eta as usize {
            toggle_costs.push(out.netted().reallocation_cost());
        }
    }
    println!(
        "  per-toggle reallocations: {:?} …",
        &toggle_costs[..8.min(toggle_costs.len())]
    );
    println!("  (every front/back insert forces ~η = {eta} jobs to shift — the Θ(s²) total)");

    // --- Lemma 11: the migration adversary -----------------------------
    let m = 4;
    println!("\nLemma 11 adversary, m = {m} machines, 25 rounds:");
    let mut adv = Lemma11Adversary::new();
    let mut ours = TheoremOneScheduler::theorem_one(m, 8);
    match adv.run(&mut ours, 25) {
        Ok(report) => println!(
            "  theorem-1 scheduler: s = {} requests, {} migrations (lower bound s/12 = {})",
            report.requests,
            report.migrations,
            report.requests / 12
        ),
        Err(e) => println!("  theorem-1 scheduler declined (no slack): {e}"),
    }
    let mut adv = Lemma11Adversary::new();
    let mut edf = EdfRescheduler::new(m);
    let report = adv.run(&mut edf, 25).unwrap();
    println!(
        "  EDF re-planner:      s = {} requests, {} migrations (lower bound s/12 = {})",
        report.requests,
        report.migrations,
        report.requests / 12
    );
    println!("\nNo scheduler can dodge these costs: without underallocation,");
    println!("migrations are Ω(s) (Lemma 11) and reallocations Ω(s²) (Lemma 12).");
}
