//! Checkpoint + journal-tail crash recovery, end to end:
//!
//! 1. ingest churn into a journaled engine, checkpointing periodically
//!    (each checkpoint snapshots every shard and lets the journal drop
//!    sealed segments beyond the retention cap);
//! 2. "crash" — all that survives is the serialized journal text;
//! 3. [`Engine::recover`] restores the latest checkpoint and replays
//!    only the tail (O(tail), not O(history)), verifying every recorded
//!    outcome on the way;
//! 4. the recovered engine's placements, telemetry, and flush counter
//!    match the pre-crash engine exactly, and it keeps serving.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use realloc_sched::workloads::{ChurnConfig, ChurnGenerator};
use realloc_sched::{BackendKind, Engine, EngineConfig};

fn main() {
    let mut engine = Engine::new(EngineConfig {
        shards: 4,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    });

    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 4,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![4, 16, 64, 256],
            target_active: 160,
            insert_bias: 0.6,
            unaligned: false,
        },
        42,
    );
    let seq = gen.generate(6_000);

    // Phase 1: serve traffic, checkpoint every 8 batches.
    for (i, chunk) in seq.requests().chunks(64).enumerate() {
        for &r in chunk {
            engine.submit(r);
        }
        let report = engine.flush();
        assert_eq!(report.failed(), 0, "density-certified stream");
        if i % 8 == 7 {
            engine.checkpoint();
        }
    }
    let journal = engine.journal().expect("journal enabled");
    let checkpoint = journal.latest_checkpoint().expect("checkpointed");
    let tail = journal.tail_events().len() as u64;
    println!(
        "served {} requests in {} batches; latest checkpoint at batch {} \
         ({} events before it, {} in the tail)",
        seq.len(),
        engine.batches(),
        checkpoint.batches,
        checkpoint.events_before,
        tail
    );
    println!(
        "journal retains {} segments ({} truncated segments / {} events dropped \
         thanks to checkpoints)",
        journal.segment_count(),
        journal.dropped_segments(),
        journal.dropped_events()
    );

    // Phase 2: "crash". The serialized journal is all that survives.
    let wal = journal.to_text();
    println!("crash! surviving WAL: {} bytes", wal.len());

    // Phase 3: recover = restore latest checkpoint + replay only the tail.
    let mut recovered = Engine::recover(wal.as_bytes()).expect("recovery succeeds");

    // Phase 4: verify the recovery is exact.
    assert_eq!(recovered.placements(), engine.placements());
    assert_eq!(recovered.metrics(), engine.metrics());
    assert_eq!(recovered.batches(), engine.batches());
    println!(
        "recovered {} active jobs across {} shards by replaying {tail} of {} events — \
         placements, metrics, and batch counter all match",
        recovered.active_count(),
        recovered.config().shards,
        checkpoint.events_before + tail,
    );

    // The recovered engine keeps serving (and keeps journaling) exactly
    // where the crashed one left off.
    let more = gen.generate(500);
    for chunk in more.requests().chunks(64) {
        for &r in chunk {
            recovered.submit(r);
            engine.submit(r);
        }
        assert_eq!(recovered.flush().failed(), 0);
        engine.flush();
    }
    assert_eq!(recovered.placements(), engine.placements());
    assert_eq!(
        recovered.journal().unwrap().to_text(),
        engine.journal().unwrap().to_text(),
        "post-recovery recording is byte-identical to never having crashed"
    );
    println!(
        "after {} more requests the recovered engine still matches the uncrashed one, \
         byte for byte at the journal layer",
        more.len()
    );
}
