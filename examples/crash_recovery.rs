//! Crash-durable recovery, end to end — through the **on-disk** store:
//!
//! 1. ingest churn into a journaled engine with a [`DurableStore`]
//!    attached: every `flush_durable` group-commits the batch's journal
//!    events to the open segment file and fsyncs before acknowledging;
//!    periodic checkpoints write a snapshot file (temp + fsync + atomic
//!    rename), roll the segment, and unlink segments past the retention
//!    cap;
//! 2. "crash" — the process state is dropped; all that survives is the
//!    store directory;
//! 3. [`Engine::recover_from_dir`] scans the directory, verifies every
//!    record's CRC, truncates any torn tail, restores the latest
//!    checkpoint, and replays only the tail (O(tail), not O(history));
//! 4. the recovered engine's placements, metrics, and flush counter
//!    match the pre-crash engine exactly — and it re-attaches a store
//!    over the same directory and keeps serving durably.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use realloc_sched::workloads::{ChurnConfig, ChurnGenerator};
use realloc_sched::{
    BackendKind, DurableStore, Engine, EngineConfig, FsIo, RecoverFromDir, StoreIo,
};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("realloc-crash-recovery-{}", std::process::id()));
    let config = EngineConfig {
        shards: 4,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    };

    let mut engine = Engine::new(config);
    let store = DurableStore::create(
        Arc::new(FsIo) as Arc<dyn StoreIo>,
        &dir,
        engine.journal().expect("journal enabled").config(),
    )
    .expect("create store directory");
    engine
        .attach_durability(Box::new(store))
        .expect("attach store");

    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 4,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![4, 16, 64, 256],
            target_active: 160,
            insert_bias: 0.6,
            unaligned: false,
        },
        42,
    );
    let seq = gen.generate(6_000);

    // Phase 1: serve traffic durably, checkpoint every 8 batches. Each
    // flush_durable is an acknowledgement: once it returns Ok, the batch
    // survives any crash.
    for (i, chunk) in seq.requests().chunks(64).enumerate() {
        for &r in chunk {
            engine.submit(r);
        }
        let report = engine.flush_durable().expect("group commit");
        assert_eq!(report.failed(), 0, "density-certified stream");
        if i % 8 == 7 {
            engine.checkpoint();
            assert!(engine.durability_error().is_none(), "checkpoint persisted");
        }
    }
    let journal = engine.journal().expect("journal enabled");
    let checkpoint = journal.latest_checkpoint().expect("checkpointed");
    let (check_batches, check_events) = (checkpoint.batches, checkpoint.events_before);
    let tail = journal.tail_events().len() as u64;
    println!(
        "served {} requests in {} durable batches; latest checkpoint at batch \
         {check_batches} ({check_events} events before it, {tail} in the tail)",
        seq.len(),
        engine.batches(),
    );
    let files = FsIo.list_dir(&dir).expect("store dir listable");
    let on_disk: u64 = files
        .iter()
        .filter_map(|name| std::fs::metadata(dir.join(name)).ok())
        .map(|m| m.len())
        .sum();
    println!(
        "store directory holds {} bytes across {} files (segments past the \
         retention cap were unlinked at checkpoint time)",
        on_disk,
        files.len()
    );

    // Phase 2: "crash". Drop the engine; the directory is all that
    // survives.
    let placements = engine.placements().clone();
    let metrics = engine.metrics();
    let batches = engine.batches();
    drop(engine);
    println!("crash! surviving store: {}", dir.display());

    // Phase 3: recover = scan + CRC-verify + truncate torn tail +
    // restore latest checkpoint + replay only the tail.
    let mut recovered = Engine::recover_from_dir(&dir).expect("recovery succeeds");

    // Phase 4: verify the recovery is exact.
    assert_eq!(*recovered.placements(), placements);
    assert_eq!(recovered.metrics(), metrics);
    assert_eq!(recovered.batches(), batches);
    recovered
        .validate()
        .expect("recovered schedule is feasible");
    println!(
        "recovered {} active jobs across {} shards by replaying {tail} of {} events — \
         placements, metrics, and batch counter all match",
        recovered.active_count(),
        recovered.config().shards,
        check_events + tail,
    );

    // The recovered engine re-attaches a store over the same directory
    // (repairing any torn tail on open) and keeps serving durably.
    let (store, report) =
        DurableStore::open(Arc::new(FsIo) as Arc<dyn StoreIo>, &dir).expect("reopen store");
    println!(
        "reopened the store at segment {} ({} torn bytes truncated, {} stale files removed)",
        report.segments, report.torn_bytes_truncated, report.files_removed
    );
    recovered
        .attach_durability(Box::new(store))
        .expect("re-attach");
    let more = gen.generate(500);
    for chunk in more.requests().chunks(64) {
        for &r in chunk {
            recovered.submit(r);
        }
        assert_eq!(recovered.flush_durable().expect("group commit").failed(), 0);
    }

    // And the durable history proves it: a second cold recovery lands on
    // the post-restart state exactly.
    let again = Engine::recover_from_dir(&dir).expect("second recovery");
    assert_eq!(again.state_digest(), recovered.state_digest());
    println!(
        "after {} more durable requests a second cold recovery still matches, \
         byte for byte at the journal layer",
        more.len()
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
