//! Elastic resharding under live traffic, end to end:
//!
//! 1. serve a skewed-tenant **hotspot** (one whale, several dwarfs) on a
//!    small journaled engine;
//! 2. **grow** the engine online — twice — while requests keep flowing
//!    (queued requests survive each resize, telemetry totals carry over);
//! 3. let **tenant-aware rebalancing** detect the whale and isolate it
//!    onto a dedicated shard (routing-epoch bump + journaled pin table);
//! 4. **shrink** back once the whale drains;
//! 5. replay and recover the journal — which now crosses four routing
//!    epochs — and verify byte-identical placements and metrics.
//!
//! ```sh
//! cargo run --release --example resize_under_load
//! ```

use realloc_sched::workloads::{hotspot, TenantFeed, HOTSPOT_WHALE};
use realloc_sched::{BackendKind, Engine, EngineConfig, Journal, Request, TenantId};

/// Serves up to `batches` feed batches, flushing after each.
fn serve(engine: &mut Engine, feed: &mut TenantFeed, batches: usize) -> usize {
    let mut served = 0usize;
    for _ in 0..batches {
        let Some(batch) = feed.next_batch(16) else {
            break;
        };
        for (tenant, request) in batch {
            engine
                .submit_for(TenantId(tenant), request)
                .expect("ids fit the tenant space");
            served += 1;
        }
        engine.flush();
    }
    served
}

fn main() {
    let mut engine = Engine::new(EngineConfig {
        shards: 2,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 4,
    });
    let mut feed = hotspot(3, 42);

    // Phase 1: traffic on the small engine.
    let served = serve(&mut engine, &mut feed, 10);
    println!(
        "phase 1  epoch {} shards {}  served {served}, active {}",
        engine.epoch(),
        engine.config().shards,
        engine.active_count()
    );

    // Phase 2: grow twice, mid-stream, with requests already queued.
    for target in [3usize, 5] {
        let Some(batch) = feed.next_batch(16) else {
            break;
        };
        for (tenant, request) in batch {
            engine.submit_for(TenantId(tenant), request).unwrap();
        }
        let queued = engine.queued();
        let report = engine
            .resize(target)
            .expect("dense streams always fit a grow");
        assert_eq!(
            report.queued_preserved, queued,
            "resize dropped queued work"
        );
        engine.validate().expect("invariants after resize");
        serve(&mut engine, &mut feed, 8);
        println!(
            "grow →{target}  epoch {} moved {}/{} jobs, {} queued preserved",
            report.epoch, report.jobs_moved, report.jobs, report.queued_preserved
        );
    }

    // Phase 3: the whale now dominates; rebalance isolates it.
    let report = engine
        .rebalance()
        .expect("whale stream is 1-machine dense")
        .expect("dominant tenant must trigger rebalance");
    let pinned = engine
        .router()
        .pin_of(HOTSPOT_WHALE as u64)
        .expect("whale pinned");
    engine.validate().expect("invariants after rebalance");
    let whale_jobs = engine
        .placements()
        .iter()
        .filter(|(id, shard, _)| {
            (id.0 >> realloc_sched::engine::TENANT_SHIFT) == HOTSPOT_WHALE as u64
                && *shard == pinned
        })
        .count();
    println!(
        "rebalance  epoch {} → whale pinned to shard {pinned} ({whale_jobs} jobs isolated)",
        report.epoch
    );
    serve(&mut engine, &mut feed, 8);

    // Phase 4: drain the whale and shrink back.
    let whale_ids: Vec<_> = engine
        .placements()
        .iter()
        .filter(|(id, _, _)| (id.0 >> realloc_sched::engine::TENANT_SHIFT) == HOTSPOT_WHALE as u64)
        .map(|&(id, _, _)| id)
        .collect();
    for id in whale_ids {
        engine.submit(Request::Delete { id });
    }
    engine.flush();
    let report = engine.resize(3).expect("drained engine fits 3 shards");
    engine.validate().expect("invariants after shrink");
    println!(
        "shrink →3  epoch {} moved {}/{} jobs",
        report.epoch, report.jobs_moved, report.jobs
    );

    // Phase 5: the journal crossed every epoch; replay + recover must
    // land on the live engine exactly.
    let m = engine.metrics();
    println!(
        "final    epoch {m_epoch} shards {shards}  lifetime requests {req} (failed {failed}), \
         active {active}",
        m_epoch = m.epoch,
        shards = m.shards.len(),
        req = m.requests,
        failed = m.failed,
        active = m.active_jobs,
    );
    let text = engine.journal().expect("journal enabled").to_text();
    let epochs = text.lines().filter(|l| l.starts_with("E ")).count();
    assert!(epochs >= 4, "journal must record every epoch, saw {epochs}");

    let replayed = Journal::from_text(&text)
        .expect("own journal parses")
        .replay()
        .expect("replay across epochs");
    assert_eq!(replayed.placements(), engine.placements());
    assert_eq!(replayed.metrics(), engine.metrics());

    let recovered = Engine::recover(text.as_bytes()).expect("recovery across epochs");
    assert_eq!(recovered.placements(), engine.placements());
    assert_eq!(recovered.metrics(), engine.metrics());
    println!(
        "journal  {epochs} epoch records, replay and recovery byte-identical — \
         elastic history is fully reproducible"
    );
}
