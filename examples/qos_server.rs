//! The client-facing serving tier end-to-end over loopback TCP: a
//! mixed-tenant hotspot (three small tenants plus one **whale**) driven
//! through the text protocol with per-tenant rate limits in force, an
//! online `rebalance()` isolating the whale onto its own shard while
//! the traffic flows, and per-tenant p99 service times polled live over
//! the observability endpoint the whole time.
//!
//! ```sh
//! cargo run --release --example qos_server
//! ```

use realloc_sched::service::{QosConfig, RateLimit, ServiceConfig, ServiceServer};
use realloc_sched::workloads::{drive_feed, hotspot, HOTSPOT_WHALE};
use realloc_sched::{BackendKind, Engine, EngineConfig, ObsClient, ObsServer, Telemetry, TenantId};
use std::time::{Duration, Instant};

fn main() {
    let telemetry = Telemetry::new();

    // The engine behind the front door: 4 journaled shards.
    let engine = Engine::new(EngineConfig {
        shards: 4,
        machines_per_shard: 4,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        ..EngineConfig::default()
    });

    // Every tenant is metered; the whale gets a bigger allowance. The
    // limits are set well above the offered load, so a healthy run
    // sheds nothing — they are a guard rail, not a throttle.
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        engine,
        ServiceConfig {
            qos: QosConfig {
                default_limit: Some(RateLimit {
                    rate_per_sec: 20_000,
                    burst: 256,
                }),
                tenant_limits: vec![(
                    HOTSPOT_WHALE,
                    Some(RateLimit {
                        rate_per_sec: 50_000,
                        burst: 1024,
                    }),
                )],
                ..QosConfig::default()
            },
            ..ServiceConfig::default()
        },
        &telemetry,
    )
    .expect("bind service");
    let obs = ObsServer::bind("127.0.0.1:0", telemetry.clone()).expect("bind obs");
    println!("serving on {}, metrics on {}", server.addr(), obs.addr());

    // Drive the hotspot feed from a client thread: 3 dwarfs + the
    // whale, pipelined 16 deep over one connection.
    let addr = server.addr();
    let driver = std::thread::spawn(move || {
        let mut feed = hotspot(3, 7);
        drive_feed(addr, &mut feed, 8, 60, 16).expect("drive feed")
    });

    // While the traffic flows, poll per-tenant p99s over the obs
    // endpoint and wait for the whale to dominate enough for the
    // rebalance to act.
    let mut poller = ObsClient::connect(obs.addr()).expect("connect obs");
    let p99_of = |text: &str, tenant: u16| {
        realloc_sched::parse_sample(
            text,
            &format!("service_request_nanos{{tenant=\"{tenant}\",quantile=\"0.99\"}}"),
        )
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let report = loop {
        std::thread::sleep(Duration::from_millis(10));
        let text = poller.metrics().expect("poll metrics");
        if let Some(p99) = p99_of(&text, HOTSPOT_WHALE) {
            println!("live: whale p99 {} ns", p99);
        }
        let acted = {
            let engine = server.engine();
            let mut engine = engine.lock().expect("engine lock");
            engine.rebalance().expect("rebalance under load")
        };
        if let Some(report) = acted {
            break report;
        }
        assert!(
            Instant::now() < deadline,
            "the whale never dominated — feed misconfigured?"
        );
    };
    println!(
        "rebalanced mid-run: {} -> {} shards, {} jobs re-placed ({} moved), {} queued preserved",
        report.from_shards,
        report.to_shards,
        report.jobs,
        report.jobs_moved,
        report.queued_preserved
    );

    let stats = driver.join().expect("driver thread");
    for (tenant, s) in &stats {
        let who = if *tenant == HOTSPOT_WHALE {
            "whale"
        } else {
            "dwarf"
        };
        println!(
            "tenant {tenant} ({who}): {} sent, {} admitted, {} shed, {} refused",
            s.sent, s.admitted, s.shed, s.refused
        );
        assert_eq!(
            (s.admitted, s.shed, s.refused),
            (s.sent, 0, 0),
            "rate limits sized above the load must not shed, and no \
             admitted request may be lost across the rebalance"
        );
    }

    // The final scrape: every tenant's quantiles are live.
    let text = poller.metrics().expect("final scrape");
    for tenant in stats.keys() {
        let p99 = p99_of(&text, *tenant).expect("per-tenant p99 scrapeable");
        println!("tenant {tenant}: final p99 {p99} ns");
    }

    // The engine behind it all came through consistent, whale isolated.
    let engine = server.engine();
    let engine = engine.lock().expect("engine lock");
    engine.validate().expect("engine valid after the run");
    let whale_active = engine.active_count_for(TenantId(HOTSPOT_WHALE));
    println!(
        "engine valid: {} whale jobs active across {} shards after isolation",
        whale_active,
        engine.metrics().shards.len()
    );
}
