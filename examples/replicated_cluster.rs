//! A replicated cluster on loopback TCP, end to end:
//!
//! 1. a journaled primary streams churn to **two** TCP replicas
//!    (snapshot bootstrap, then per-flush event frames, an online
//!    resize's epoch frame, and periodic checkpoint markers);
//! 2. the replicas serve reads the whole time (window lookups, metrics,
//!    digests) — that is the read-scaling story;
//! 3. the primary "crashes"; replica 1 is **promoted** under a bumped
//!    fencing term, re-bootstraps the lagging replica 2, and keeps
//!    serving the stream;
//! 4. the deposed primary wakes up and tries to stream — its frames are
//!    fenced (rejected by term) everywhere;
//! 5. final states are byte-identical across the promoted node, the
//!    surviving replica, and an uninterrupted reference engine: **no
//!    acknowledged event was lost**.
//!
//! Every node also carries a live telemetry registry exposed over its
//! own [`ObsServer`] port; the example polls all three **over TCP**
//! mid-stream — like a scrape loop would — and prints per-replica
//! replication lag (primary `cluster_next_seq − 1` minus each replica's
//! `cluster_replica_last_seq`) and the primary's flush-phase latency
//! quantiles.
//!
//! ```sh
//! cargo run --release --example replicated_cluster
//! ```

use realloc_sched::cluster::tcp::{PrimaryLink, ReplicaServer};
use realloc_sched::cluster::transport::{FrameSink, TransportError};
use realloc_sched::workloads::{ChurnConfig, ChurnGenerator};
use realloc_sched::{
    fetch_metrics, parse_sample, BackendKind, Engine, EngineConfig, ObsServer, Primary, Replica,
    Telemetry,
};
use std::net::SocketAddr;

/// Scrapes all three nodes over TCP and prints the poller's view:
/// per-replica lag from the two registries, plus the primary's
/// flush-phase latency quantiles. Returns the lags for assertions.
fn scrape(label: &str, primary_obs: SocketAddr, replica_obs: [SocketAddr; 2]) -> Vec<u64> {
    let p = fetch_metrics(primary_obs).expect("primary metrics endpoint");
    let shipped = parse_sample(&p, "cluster_next_seq").unwrap_or(1) - 1;
    let mut lags = Vec::new();
    for addr in replica_obs {
        let r = fetch_metrics(addr).expect("replica metrics endpoint");
        let applied = parse_sample(&r, "cluster_replica_last_seq").unwrap_or(0);
        lags.push(shipped - applied);
    }
    let q = |name: &str| parse_sample(&p, name).unwrap_or(0);
    println!(
        "[scrape {label}] {} frames shipped; replica lags {:?}; flush p50/p95/p99 = {}/{}/{} ns",
        shipped,
        lags,
        q("engine_flush_total_nanos{quantile=\"0.5\"}"),
        q("engine_flush_total_nanos{quantile=\"0.95\"}"),
        q("engine_flush_total_nanos{quantile=\"0.99\"}"),
    );
    lags
}

fn main() {
    let config = EngineConfig {
        shards: 2,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true, // primaries must journal: the journal IS the stream
        retained_segments: 2,
    };
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 14,
            spans: vec![4, 16, 64],
            target_active: 200,
            insert_bias: 0.6,
            unaligned: false,
        },
        42,
    );
    let seq = gen.generate(6_000);
    let chunks: Vec<_> = seq.requests().chunks(64).collect();

    // The uninterrupted reference lineage (same stream, same resize).
    let mut reference = Engine::new(config.clone());

    // Primary + two replicas behind TCP servers on loopback. Every node
    // gets its own registry and a TCP metrics endpoint.
    let primary_tel = Telemetry::new();
    let replica1_tel = Telemetry::new();
    let replica2_tel = Telemetry::new();
    let mut primary = Primary::new(Engine::new(config), 1).expect("journaled engine");
    primary.attach_telemetry(&primary_tel);
    let server1 = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    let server2 = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    server1
        .replica()
        .lock()
        .unwrap()
        .attach_telemetry(&replica1_tel);
    server2
        .replica()
        .lock()
        .unwrap()
        .attach_telemetry(&replica2_tel);
    let mut link1 = PrimaryLink::connect(server1.addr()).unwrap();
    let mut link2 = PrimaryLink::connect(server2.addr()).unwrap();
    link1.attach_telemetry(&primary_tel);
    link2.attach_telemetry(&primary_tel);
    let primary_obs = ObsServer::bind("127.0.0.1:0", primary_tel.clone()).unwrap();
    let replica1_obs = ObsServer::bind("127.0.0.1:0", replica1_tel.clone()).unwrap();
    let replica2_obs = ObsServer::bind("127.0.0.1:0", replica2_tel.clone()).unwrap();
    let obs = [replica1_obs.addr(), replica2_obs.addr()];
    println!(
        "primary (term 1) streaming to replicas at {} and {}",
        server1.addr(),
        server2.addr()
    );
    println!(
        "metrics endpoints: primary {}, replica 1 {}, replica 2 {}",
        primary_obs.addr(),
        replica1_obs.addr(),
        replica2_obs.addr()
    );

    let (_, boot) = primary.bootstrap();
    for f in &boot {
        link1.send(f).unwrap();
        link2.send(f).unwrap();
    }

    // Phase 1: serve traffic; resize online at chunk 30; checkpoint
    // every 16 chunks; replica 2 is partitioned from chunk 70 on.
    const RESIZE_AT: usize = 30;
    const PARTITION_FROM: usize = 70;
    const CRASH_AT: usize = 80;
    for (i, chunk) in chunks.iter().enumerate().take(CRASH_AT) {
        let mut frames = Vec::new();
        if i == RESIZE_AT {
            let (report, f) = primary.resize(3).expect("grow 2 -> 3");
            println!(
                "online resize at chunk {i}: {} -> {} shards, {} jobs re-homed",
                report.from_shards, report.to_shards, report.jobs_moved
            );
            frames.extend(f);
            reference.resize(3).expect("reference resize");
        }
        for &r in *chunk {
            primary.submit(r);
            reference.submit(r);
        }
        let (_, f) = primary.flush();
        frames.extend(f);
        reference.flush();
        if (i + 1) % 16 == 0 {
            frames.extend(primary.checkpoint());
        }
        for f in &frames {
            link1.send(f).expect("replica 1 acknowledges");
            if i < PARTITION_FROM {
                link2.send(f).expect("replica 2 acknowledges");
            }
        }
        if i + 1 == PARTITION_FROM / 2 {
            // Mid-stream scrape. Sends are pipelined (up to a window of
            // frames in flight), so drain both links first — the drain
            // is the commit barrier that makes "zero lag" meaningful.
            link1.drain().expect("replica 1 drains");
            link2.drain().expect("replica 2 drains");
            let lags = scrape("healthy", primary_obs.addr(), obs);
            assert_eq!(lags, [0, 0], "drained replicas show zero lag");
        }
    }

    // The partition is visible from the outside, through the registries
    // alone: replica 2 stopped acknowledging at the partition point.
    link1.drain().expect("replica 1 drains");
    let lags = scrape("partitioned", primary_obs.addr(), obs);
    assert_eq!(lags[0], 0, "replica 1 still acknowledges everything");
    assert!(lags[1] > 0, "partitioned replica 2 must show positive lag");
    {
        let p = fetch_metrics(primary_obs.addr()).unwrap();
        for (i, server) in [&server1, &server2].into_iter().enumerate() {
            let name = realloc_sched::labeled(
                "cluster_link_bytes_shipped_total",
                "replica",
                server.addr(),
            );
            println!(
                "link to replica {}: {} bytes shipped",
                i + 1,
                parse_sample(&p, &name).unwrap_or(0)
            );
        }
    }

    // Reads scale out: replicas answer queries while the stream runs.
    {
        let cell = server1.replica();
        let replica = cell.lock().unwrap();
        let m = replica.metrics().expect("bootstrapped");
        println!(
            "replica 1 serving reads: {} active jobs, {} requests seen, digest {:#x}",
            replica.active_count(),
            m.requests,
            replica.state_digest().unwrap()
        );
        assert!(replica.validate().is_ok());
    }

    // Phase 2: the primary crashes. Promote replica 1 under term 2 and
    // re-bootstrap the stale replica 2 from it.
    println!("primary crashes at chunk {CRASH_AT}; promoting replica 1");
    link1
        .drain()
        .expect("replica 1 acknowledged everything shipped");
    drop(link1);
    let mut promoted = server1
        .replica()
        .lock()
        .unwrap()
        .promote()
        .expect("bootstrapped replica promotes");
    println!(
        "promoted: term {}, resuming at seq {}",
        promoted.term(),
        promoted.next_seq()
    );
    // The promoted node keeps its registry: the engine instruments came
    // over from its replica days, and the streaming side attaches now.
    promoted.attach_telemetry(&replica1_tel);
    let (_, boot) = promoted.bootstrap();
    let mut new_link2 = PrimaryLink::connect(server2.addr()).unwrap();
    new_link2.attach_telemetry(&replica1_tel);
    for f in &boot {
        new_link2.send(f).expect("replica 2 re-bootstraps");
    }
    // Barrier: replica 2 must have *applied* the new lineage's snapshot
    // (and adopted term 2) before the deposed primary knocks.
    new_link2.drain().expect("replica 2 adopts term 2");

    // Phase 3: the deposed primary wakes up and streams — fenced.
    for &r in chunks[CRASH_AT] {
        primary.submit(r);
    }
    let (_, stale) = primary.flush();
    // Pipelined sends return before the replica answers; the rejection
    // surfaces on the commit barrier.
    match link2
        .send(&stale[0])
        .and_then(|()| link2.drain().map(|_| ()))
    {
        Err(TransportError::Rejected(detail)) => {
            println!("deposed primary fenced: {detail}");
        }
        other => panic!("stale frame accepted?! {other:?}"),
    }
    drop(primary);
    drop(link2);

    // Phase 4: the promoted primary keeps serving (the crashed node's
    // unshipped work was never acknowledged, so the new lineage
    // re-drives it).
    for chunk in chunks.iter().skip(CRASH_AT) {
        for &r in *chunk {
            promoted.submit(r);
            reference.submit(r);
        }
        let (_, frames) = promoted.flush();
        reference.flush();
        for f in &frames {
            new_link2.send(f).expect("replica 2 acknowledges");
        }
    }

    // After failover the new lineage's registry (the promoted node's)
    // shows replica 2 fully caught up again.
    new_link2.drain().expect("replica 2 drains");
    {
        let p = fetch_metrics(replica1_obs.addr()).expect("promoted metrics endpoint");
        let shipped = parse_sample(&p, "cluster_next_seq").unwrap_or(1) - 1;
        let r = fetch_metrics(replica2_obs.addr()).expect("replica 2 metrics endpoint");
        let applied = parse_sample(&r, "cluster_replica_last_seq").unwrap_or(0);
        println!(
            "[scrape failed-over] promoted node shipped through seq {shipped}; \
             replica 2 lag {}",
            shipped - applied
        );
        assert_eq!(shipped, applied, "re-bootstrapped replica 2 caught up");
        let rejected = parse_sample(&r, "cluster_replica_frames_rejected_total").unwrap_or(0);
        assert!(rejected >= 1, "the deposed primary's fenced frame counts");
    }

    // Phase 5: byte-identical convergence, zero acknowledged events lost.
    use realloc_sched::Restorable as _;
    assert_eq!(promoted.engine().snapshot_text(), reference.snapshot_text());
    let cell = server2.replica();
    let replica2 = cell.lock().unwrap();
    assert_eq!(
        replica2.engine().unwrap().snapshot_text(),
        reference.snapshot_text()
    );
    assert_eq!(replica2.term(), promoted.term());
    println!(
        "served {} requests across a crash + failover: promoted node, surviving \
         replica, and uninterrupted reference all byte-identical (digest {:#x})",
        seq.len(),
        reference.state_digest()
    );
}
