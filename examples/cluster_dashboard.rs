//! The cluster observability plane, end to end: a service tier and its
//! journal relay feed two TCP replicas while a [`Collector`] polls every
//! node's [`ObsServer`] and renders one fleet dashboard per poll.
//!
//! The lifecycle it demonstrates:
//!
//! 1. **healthy** — traffic flows, both replicas apply, lag 0, quorum
//!    headroom positive, every health probe green;
//! 2. **stalled** — frames to replica 2 are withheld while the primary
//!    keeps shipping; the collector's differential stall detector
//!    (shipped advancing, applied flat) flags the node within two
//!    polls, in the text dashboard *and* the JSON line;
//! 3. **recovered** — the backlog is delivered, applied catches up, and
//!    the stall flag clears on the next poll.
//!
//! As a finale, one traced request's causal spans — service receipt to
//! replica apply under a single trace id — are scraped back from both
//! nodes' rings, exactly as an operator chasing a slow request would.
//!
//! ```sh
//! cargo run --release --example cluster_dashboard
//! ```

use realloc_sched::cluster::tcp::{PrimaryLink, ReplicaServer};
use realloc_sched::cluster::transport::FrameSink as _;
use realloc_sched::cluster::Frame;
use realloc_sched::engine::FlushMode;
use realloc_sched::service::QosConfig;
use realloc_sched::workloads::driver::{QosClient, QosResponse};
use realloc_sched::{
    BackendKind, Collector, CollectorConfig, Engine, EngineConfig, FleetSnapshot, JournalRelay,
    NodeRole, NodeSpec, ObsServer, Replica, ServiceConfig, ServiceServer, Telemetry,
};
use std::sync::Arc;
use std::time::Duration;

/// Sends `n` placements through the serving tier and returns any trace
/// ids the replies carried.
fn drive_traffic(client: &mut QosClient, next_job: &mut u64, n: u64) -> Vec<u64> {
    let mut traces = Vec::new();
    for _ in 0..n {
        let id = *next_job;
        *next_job += 1;
        client.send_raw(&format!("place 1 {id} 0 4096")).unwrap();
        let (response, trace) = client.recv_traced().unwrap();
        assert!(
            matches!(response, QosResponse::Placed(_)),
            "placement rejected: {response:?}"
        );
        traces.extend(trace);
    }
    traces
}

/// Ships every pending relay frame to the given links; links passed as
/// `None` are "down" this round and accumulate backlog at the caller.
fn ship(frames: &[Frame], links: &mut [Option<&mut PrimaryLink>]) {
    for link in links.iter_mut().flatten() {
        for f in frames {
            link.send(f).unwrap();
        }
        link.drain().unwrap();
    }
}

fn print_poll(snapshot: &FleetSnapshot) {
    print!("{}", snapshot.render_dashboard());
    println!("json: {}", snapshot.to_json_line());
}

fn main() {
    // --- the primary node: engine + serving tier + relay + obs ---
    let pt = Telemetry::new();
    let config = EngineConfig {
        shards: 2,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true, // the journal IS the replication stream
        retained_segments: 4,
    };
    let mut engine = Engine::new(config);
    engine.attach_telemetry(&pt);
    let server = ServiceServer::bind(
        "127.0.0.1:0",
        engine,
        ServiceConfig {
            qos: QosConfig::default(),
            read_timeout: Some(Duration::from_secs(5)),
            max_batch: 16,
            flush: FlushMode::Immediate,
            trace_sample_every: 4, // every 4th batch is traced end to end
        },
        &pt,
    )
    .unwrap();
    // The health probe runs the engine's full invariant check.
    let probe_engine = server.engine();
    let health = Arc::new(move || match probe_engine.lock().unwrap().validate() {
        Ok(()) => "ok engine invariants hold".to_string(),
        Err(why) => format!("err {why}"),
    });
    let p_obs = ObsServer::bind_full(
        "127.0.0.1:0",
        pt.clone(),
        realloc_sched::telemetry::ObsConfig::default(),
        Some(health),
    )
    .unwrap();

    // --- two replica nodes, each with its own registry + obs plane ---
    let mut replica_servers = Vec::new();
    let mut replica_obs = Vec::new();
    for i in 0..2 {
        let rt = Telemetry::new();
        let mut replica = Replica::new();
        replica.attach_telemetry(&rt);
        let r_server = ReplicaServer::bind("127.0.0.1:0", replica).unwrap();
        let cell = r_server.replica();
        let health: realloc_sched::HealthCheck =
            Arc::new(move || format!("ok applied through {}", cell.lock().unwrap().last_seq()));
        let r_obs = ObsServer::bind_full(
            "127.0.0.1:0",
            rt,
            realloc_sched::telemetry::ObsConfig::default(),
            Some(health),
        )
        .unwrap();
        println!(
            "replica {} at {} (obs {})",
            i + 1,
            r_server.addr(),
            r_obs.addr()
        );
        replica_servers.push(r_server);
        replica_obs.push(r_obs);
    }

    // The relay tails the service tier's shared engine into the frame
    // stream; both links bootstrap from the same snapshot.
    let mut relay = JournalRelay::new(server.engine(), 1).unwrap();
    relay.attach_telemetry(&pt);
    let mut link1 = PrimaryLink::connect(replica_servers[0].addr()).unwrap();
    let mut link2 = PrimaryLink::connect(replica_servers[1].addr()).unwrap();
    link1.attach_telemetry(&pt);
    let (owed, boot) = relay.bootstrap().expect("fresh engine has no queue");
    assert!(owed.is_empty(), "fresh engine owes no frames");
    for link in [&mut link1, &mut link2] {
        link.send(&boot).unwrap();
        link.drain().unwrap();
    }

    // --- the collector: one spec per node, two share the primary's
    // registry (the serving tier and the relay co-reside) ---
    let collector_nodes = vec![
        NodeSpec::new("edge", p_obs.addr().to_string(), NodeRole::Service),
        NodeSpec::new("primary", p_obs.addr().to_string(), NodeRole::Primary),
        NodeSpec::new(
            "replica-1",
            replica_obs[0].addr().to_string(),
            NodeRole::Replica,
        ),
        NodeSpec::new(
            "replica-2",
            replica_obs[1].addr().to_string(),
            NodeRole::Replica,
        ),
    ];
    let mut collector = Collector::new(
        collector_nodes,
        CollectorConfig {
            read_timeout: Some(Duration::from_secs(2)),
            quorum: 1,
            slo_p99_nanos: 50_000_000,
        },
    );

    let mut client = QosClient::connect(server.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut next_job = 1u64;
    let mut traced = Vec::new();

    // --- phase 1: healthy ---
    println!("\n== phase 1: healthy ==");
    for _ in 0..2 {
        traced.extend(drive_traffic(&mut client, &mut next_job, 8));
        let frames = relay.poll();
        ship(&frames, &mut [Some(&mut link1), Some(&mut link2)]);
        print_poll(&collector.poll());
    }
    let healthy = collector.poll();
    assert!(healthy.all_reachable(), "every node answers while healthy");
    assert!(!healthy.any_stalled(), "no stall while frames flow");
    assert!(
        healthy.nodes.iter().all(|n| !n.unhealthy()),
        "every health probe is green"
    );

    // --- phase 2: replica 2 stalls (frames withheld, primary keeps
    // shipping) — the collector must flag it within two polls ---
    println!("\n== phase 2: replica 2 stalls ==");
    let mut backlog: Vec<Frame> = Vec::new();
    let mut detected_at = None;
    for round in 1..=2 {
        traced.extend(drive_traffic(&mut client, &mut next_job, 8));
        let frames = relay.poll();
        ship(&frames, &mut [Some(&mut link1), None]);
        backlog.extend(frames);
        let snapshot = collector.poll();
        print_poll(&snapshot);
        if snapshot.any_stalled() {
            detected_at = Some((round, snapshot));
            break;
        }
    }
    let (round, snapshot) = detected_at.expect("stall detected within two polls");
    println!("stall detected on poll {round} of the stalled phase");
    let stalled: Vec<&str> = snapshot
        .nodes
        .iter()
        .filter(|n| n.stalled)
        .map(|n| n.name.as_str())
        .collect();
    assert_eq!(stalled, ["replica-2"], "exactly the starved replica");
    assert!(
        snapshot.render_dashboard().contains("STALL: replica-2"),
        "the text dashboard names the stalled node"
    );
    assert!(
        snapshot.to_json_line().contains("\"stalled\":true"),
        "the JSON line carries the stall flag"
    );

    // --- phase 3: deliver the backlog; the stall clears ---
    println!("\n== phase 3: recovered ==");
    ship(&backlog, &mut [None, Some(&mut link2)]);
    traced.extend(drive_traffic(&mut client, &mut next_job, 8));
    let frames = relay.poll();
    ship(&frames, &mut [Some(&mut link1), Some(&mut link2)]);
    let recovered = collector.poll();
    print_poll(&recovered);
    assert!(!recovered.any_stalled(), "applied advanced: stall cleared");
    assert!(
        recovered
            .nodes
            .iter()
            .all(|n| n.lag.is_none_or(|lag| lag == 0)),
        "both replicas back at the primary's tip"
    );

    // --- finale: follow one traced request across both nodes ---
    let tid = *traced.last().expect("sampled traffic produced traces");
    let spans_under = |dump: &str| -> Vec<String> {
        let want = tid.to_string();
        dump.lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| {
                let f: Vec<&str> = l.split_whitespace().collect();
                (f.len() == 7 && f[6] == want).then(|| f[3].to_string())
            })
            .collect()
    };
    let p_spans = spans_under(&realloc_sched::fetch_trace(p_obs.addr()).unwrap());
    let r_spans = spans_under(&realloc_sched::fetch_trace(replica_obs[1].addr()).unwrap());
    println!(
        "\ntrace {tid:#018x}: primary spans {:?}, replica-2 spans {:?}",
        p_spans, r_spans
    );
    assert!(p_spans.iter().any(|k| k == "receipt"));
    assert!(p_spans.iter().any(|k| k == "flush"));
    assert!(p_spans.iter().any(|k| k == "ship"));
    assert!(r_spans.iter().any(|k| k == "apply"));

    println!(
        "\nserved {} placements across healthy -> stalled -> recovered; \
         stall flagged within two polls and cleared after catch-up",
        next_job - 1
    );
    for mut s in replica_servers {
        s.shutdown();
    }
}
