//! A batch compute cluster: jobs with SLA deadline windows on many
//! machines, heavy churn, and an operations team that wants to know how
//! much "schedule thrash" each policy causes.
//!
//! ```sh
//! cargo run --release --example cloud_cluster
//! ```

use realloc_sched::sim::runner::{run, RunOptions};
use realloc_sched::workloads::scenarios::cloud_cluster;
use realloc_sched::{Reallocator, TheoremOneScheduler};

fn main() {
    let machines = 8;
    let requests = cloud_cluster(machines, 7).generate(20_000);
    println!(
        "cluster stream: {} requests, peak backlog {} jobs, largest SLA window {} slots",
        requests.len(),
        requests.peak_active(),
        requests.max_span()
    );

    let mut sched = TheoremOneScheduler::theorem_one(machines, 16);
    let report = run(
        &mut sched,
        &requests,
        RunOptions {
            validate_each_step: false,
            fail_fast: true,
        },
    )
    .expect("cluster has slack");

    let meter = &report.meter;
    println!("\nover {} requests:", report.executed);
    println!(
        "  reallocations: {} total ({:.3} per request, max {} in one request)",
        meter.total_reallocations(),
        meter.mean_reallocations(),
        meter.max_reallocations()
    );
    println!(
        "  migrations:    {} total (max {} per request — Theorem 1 says ≤ 1)",
        meter.total_migrations(),
        meter.max_migrations()
    );

    // Per-machine load at the end.
    println!("\nfinal load per machine:");
    let snap = sched.snapshot();
    let mut load = vec![0usize; machines];
    for (_, p) in snap.iter() {
        load[p.machine] += 1;
    }
    for (m, l) in load.iter().enumerate() {
        println!("  machine {m}: {l} jobs");
    }
}
