//! Quorum group commit over three TCP replicas, end to end:
//!
//! 1. a journaled primary fans its frame stream out to **three** TCP
//!    replicas through a [`ReplicationGroup`] with **quorum 2**, using
//!    the pipelined group-commit pattern — ship batch *i*, then commit
//!    through batch *i − 1* while the replicas apply it;
//! 2. one replica stalls mid-stream; commits keep succeeding through
//!    the other two, and the laggard's pipelined frames land the moment
//!    it wakes — no resend, no blocking;
//! 3. **two** replicas stall: the quorum is lost, and the failure is a
//!    typed [`GroupError::QuorumLost`] that reports how close it got,
//!    returned within the links' bounded drain timeout instead of
//!    wedging; the next commit repairs both laggards back to parity;
//! 4. the primary "crashes"; failover promotes the **most-caught-up**
//!    replica, which must be at or past the group's committed floor —
//!    that is the quorum guarantee — and the new lineage re-bootstraps
//!    the others and re-drives the uncommitted suffix;
//! 5. the promoted node, both surviving replicas, and an uninterrupted
//!    reference engine end **byte-identical**: zero committed events
//!    lost.
//!
//! ```sh
//! cargo run --release --example quorum_cluster
//! ```

use realloc_sched::cluster::tcp::{LinkConfig, PrimaryLink, ReplicaServer};
use realloc_sched::workloads::{ChurnConfig, ChurnGenerator};
use realloc_sched::{
    BackendKind, Engine, EngineConfig, GroupError, Primary, Replica, ReplicationGroup, Telemetry,
};
use std::time::{Duration, Instant};

/// Builds a quorum-2 group of fresh TCP replicas around `primary`.
fn build_group(
    primary: Primary,
    replicas: usize,
    link_config: &LinkConfig,
    telemetry: &Telemetry,
) -> (ReplicationGroup, Vec<ReplicaServer>) {
    let mut group = ReplicationGroup::new(primary, 2).expect("quorum of 2");
    group.attach_telemetry(telemetry);
    let mut servers = Vec::new();
    for _ in 0..replicas {
        let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
        let mut link = PrimaryLink::connect_with(server.addr(), link_config.clone()).unwrap();
        link.attach_telemetry(telemetry);
        group.add_replica(Box::new(link)).expect("replica joins");
        servers.push(server);
    }
    (group, servers)
}

fn main() {
    let config = EngineConfig {
        shards: 2,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true, // primaries must journal: the journal IS the stream
        retained_segments: 2,
    };
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 14,
            spans: vec![4, 16, 64],
            target_active: 200,
            insert_bias: 0.6,
            unaligned: false,
        },
        7,
    );
    let seq = gen.generate(4_000);
    let chunks: Vec<_> = seq.requests().chunks(50).collect();

    // The uninterrupted reference lineage.
    let mut reference = Engine::new(config.clone());

    let telemetry = Telemetry::new();
    let link_config = LinkConfig {
        // Short enough that a lost quorum reports in example time; the
        // bound covers the *whole* pipeline drain, not one ack.
        drain_timeout: Duration::from_millis(750),
        ..LinkConfig::default()
    };
    let primary = Primary::new(Engine::new(config), 1).expect("journaled engine");
    let (mut group, servers) = build_group(primary, 3, &link_config, &telemetry);
    println!(
        "quorum-2 group (term 1) over replicas at {}, {}, {}",
        servers[0].addr(),
        servers[1].addr(),
        servers[2].addr()
    );

    const STALL_ONE_AT: usize = 20;
    const WAKE_ONE_AT: usize = 40;
    const CRASH_AT: usize = 60;
    let stalled_cell = servers[2].replica();
    let mut stall_guard = None;

    // Pipelined group commit: ship chunk i, commit through chunk i − 1
    // — the replicas apply one batch while the primary produces the
    // next. coverage[i] is the highest sequence shipped after chunk i.
    let mut coverage: Vec<u64> = Vec::new();
    let mut previous_shipped = 0u64;
    for (i, chunk) in chunks.iter().enumerate().take(CRASH_AT) {
        if i == STALL_ONE_AT {
            println!("chunk {i}: replica 3 stalls — quorum 2 of 3 keeps committing");
            stall_guard = Some(stalled_cell.lock().unwrap());
        }
        if i == WAKE_ONE_AT {
            drop(stall_guard.take());
            group.commit().expect("commit after the laggard wakes");
            println!(
                "chunk {i}: replica 3 wakes; its pipelined backlog lands without a resend \
                 (committed floor {})",
                group.committed_seq()
            );
        }
        for &r in *chunk {
            group.submit(r);
            reference.submit(r);
        }
        let (_, shipped) = group.flush_now();
        reference.flush();
        group
            .commit_through(previous_shipped)
            .expect("quorum 2 holds while one replica stalls");
        previous_shipped = shipped;
        coverage.push(shipped);
    }
    group.commit().expect("final pre-crash barrier");
    println!(
        "streamed {} chunks: committed floor {}, {} quorum commits, 0 failures so far",
        CRASH_AT,
        group.committed_seq(),
        telemetry
            .counter_value("cluster_group_commits_total")
            .unwrap_or(0),
    );

    // Two replicas stall at once: quorum 2 is unreachable. The failure
    // is typed, reports its progress, and arrives within the bounded
    // drain — the primary is never wedged.
    {
        let cell2 = servers[1].replica();
        let guard2 = cell2.lock().unwrap();
        let guard3 = stalled_cell.lock().unwrap();
        for &r in chunks[CRASH_AT] {
            group.submit(r);
            reference.submit(r);
        }
        group.flush_now();
        reference.flush();
        let started = Instant::now();
        match group.commit() {
            Err(GroupError::QuorumLost { needed, acked, .. }) => println!(
                "two replicas stalled: quorum lost ({acked}/{needed} at commit point) \
                 after {:?} — typed, bounded, reported",
                started.elapsed()
            ),
            other => panic!("quorum must be lost with 2 of 3 stalled: {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the lost quorum reports within the bounded drain"
        );
        drop(guard2);
        drop(guard3);
    }
    let committed = group.commit().expect("repair restores the quorum");
    coverage.push(committed);
    println!("both replicas woke: repair restored the quorum (floor {committed})");

    // The primary crashes. The quorum guarantee: every committed event
    // is on at least 2 replicas, so the most-caught-up replica is at or
    // past the committed floor — promote it.
    let floor = group.committed_seq();
    drop(group);
    let applied: Vec<u64> = servers
        .iter()
        .map(|s| s.replica().lock().unwrap().last_seq())
        .collect();
    let winner = (0..servers.len())
        .max_by_key(|&i| applied[i])
        .expect("three candidates");
    println!(
        "primary crashes: replicas applied through {applied:?}; \
         promoting replica {} (committed floor was {floor})",
        winner + 1
    );
    assert!(
        applied[winner] >= floor,
        "the most-caught-up replica covers every committed event"
    );
    let promoted = servers[winner]
        .replica()
        .lock()
        .unwrap()
        .promote()
        .expect("bootstrapped replica promotes");
    println!(
        "promoted: term {}, resuming at seq {}",
        promoted.term(),
        promoted.next_seq()
    );

    // The new lineage re-bootstraps the survivors and re-drives the
    // uncommitted suffix (chunks not fully covered by the promoted
    // node's applied prefix).
    let promoted_last = promoted.next_seq() - 1;
    let chunks_done = coverage.iter().filter(|&&s| s <= promoted_last).count();
    let mut group2 = ReplicationGroup::new(promoted, 2).expect("quorum of 2");
    for (i, server) in servers.iter().enumerate() {
        if i == winner {
            continue;
        }
        let link = PrimaryLink::connect_with(server.addr(), link_config.clone()).unwrap();
        group2
            .add_replica(Box::new(link))
            .expect("survivor rejoins");
    }
    for chunk in chunks.iter().skip(chunks_done) {
        for &r in *chunk {
            group2.submit(r);
        }
        group2.flush_now();
        group2.commit().expect("new lineage commits");
    }
    // (The reference already consumed chunks[CRASH_AT] above.)
    for chunk in chunks.iter().skip(CRASH_AT + 1) {
        for &r in *chunk {
            reference.submit(r);
        }
        reference.flush();
    }

    // Byte-identical convergence: promoted node, both surviving
    // replicas, and the uninterrupted reference.
    use realloc_sched::Restorable as _;
    assert_eq!(
        group2.primary().engine().snapshot_text(),
        reference.snapshot_text()
    );
    let digest = group2.primary().engine().state_digest();
    for (i, server) in servers.iter().enumerate() {
        if i == winner {
            continue;
        }
        let cell = server.replica();
        let replica = cell.lock().unwrap();
        assert_eq!(replica.state_digest(), Some(digest));
        assert_eq!(replica.term(), 2);
    }
    println!(
        "served {} requests across a stall, a lost quorum, and a failover: \
         promoted node, survivors, and reference all byte-identical (digest {:#x})",
        seq.len(),
        reference.state_digest()
    );
}
