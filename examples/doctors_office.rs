//! The doctor's office from the paper's introduction.
//!
//! Patients call asking for an appointment inside a time window; some
//! cancel. The office promises a concrete slot immediately and hates
//! rescheduling people. This example books a week of appointments through
//! the Theorem-1 scheduler and reports how many patients ever had to be
//! rescheduled — compared against the same stream through a classical
//! EDF re-planner.
//!
//! ```sh
//! cargo run --release --example doctors_office
//! ```

use realloc_sched::baselines::EdfRescheduler;
use realloc_sched::workloads::scenarios::doctors_office;
use realloc_sched::{Reallocator, Request, TheoremOneScheduler};

fn main() {
    let requests = doctors_office(7, 2024).generate(2000);
    println!(
        "A week of bookings: {} requests, peak {} active appointments\n",
        requests.len(),
        requests.peak_active()
    );

    let mut ours = TheoremOneScheduler::theorem_one(1, 8);
    let mut edf = EdfRescheduler::new(1);

    let mut ours_moved = 0u64;
    let mut ours_worst = 0u64;
    let mut edf_moved = 0u64;
    let mut edf_worst = 0u64;
    for &r in requests.requests() {
        let out = ours.request(r).expect("office has slack");
        let cost = out.netted().reallocation_cost();
        ours_moved += cost;
        ours_worst = ours_worst.max(cost);

        let out = edf.request(r).expect("feasible");
        let cost = out.netted().reallocation_cost();
        edf_moved += cost;
        edf_worst = edf_worst.max(cost);
    }

    println!("reallocation cost (patients rescheduled):");
    println!("  reservation scheduler: {ours_moved} total, worst request {ours_worst}");
    println!("  EDF re-planning:       {edf_moved} total, worst request {edf_worst}");
    println!(
        "\nEvery patient kept an appointment inside their window at all times; \
         the reservation scheduler just promises far fewer phone calls."
    );
    match validate_final(&ours, &requests) {
        Ok(()) => println!("final schedule validated ✓"),
        Err(e) => println!("VALIDATION FAILED: {e}"),
    }
}

fn validate_final(
    sched: &TheoremOneScheduler,
    requests: &realloc_sched::RequestSeq,
) -> Result<(), realloc_sched::core::ValidationError> {
    let mut active = std::collections::BTreeMap::new();
    for &r in requests.requests() {
        match r {
            Request::Insert { id, window } => {
                active.insert(id, window);
            }
            Request::Delete { id } => {
                active.remove(&id);
            }
        }
    }
    realloc_sched::core::schedule::validate(&sched.snapshot(), &active, 1)
}
