//! The coalescing × durability seam.
//!
//! Flush coalescing defers *servicing*, not durability: a deferred
//! batch has produced no journal events yet, so nothing is owed to the
//! sink — but the moment a `checkpoint()` or `flush_durable()` barrier
//! lands, every request accepted before the barrier must be serviced,
//! journaled, teed, and recoverable. These are regression tests for the
//! seam: no event may fall between a deferral and the next durable
//! barrier, and the on-disk stream must stay byte-identical to the
//! in-memory journal.

use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, CoalesceConfig, Engine, EngineConfig, FlushMode};
use realloc_store::{recover_journal_text, DurableStore, MemIo, RecoverFromDir, StoreIo};
use std::path::PathBuf;
use std::sync::Arc;

fn config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        machines_per_shard: 2,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 4,
    }
}

/// A journaled engine with an attached MemIo-backed durable store and a
/// coalescing policy that defers anything under `min_batch` requests.
fn coalescing_engine(min_batch: usize, max_defer: u32) -> (Engine, Arc<MemIo>, PathBuf) {
    let io = Arc::new(MemIo::new());
    let dir = PathBuf::from("/store");
    let mut engine = Engine::new(config());
    let store = DurableStore::create(
        Arc::clone(&io) as Arc<dyn StoreIo>,
        &dir,
        engine.journal().expect("journaled").config(),
    )
    .expect("create store");
    engine.attach_durability(Box::new(store)).expect("attach");
    engine.set_flush_coalescing(Some(CoalesceConfig {
        min_batch,
        max_defer,
    }));
    (engine, io, dir)
}

fn insert(id: u64) -> Request {
    let start = (id * 7) % 40;
    Request::Insert {
        id: JobId(id),
        window: Window::new(start, start + 2 + id % 3),
    }
}

/// Requests deferred by `flush_coalesced` then group-committed by
/// `flush_durable` all land: the report covers every accepted request,
/// and the recovered on-disk journal is byte-identical to memory.
#[test]
fn deferred_batch_then_flush_durable_loses_nothing() {
    let (mut engine, io, dir) = coalescing_engine(64, 10);

    for id in 1..=5 {
        engine.submit(insert(id));
    }
    assert!(
        engine.flush_coalesced().is_none(),
        "5 < min_batch 64 must defer"
    );
    assert_eq!(engine.queued(), 5, "deferred requests stay queued");
    assert_eq!(engine.active_count(), 0, "nothing serviced yet");

    // The durability barrier must pick up the whole deferred batch.
    let report = engine.flush_durable().expect("durable flush");
    assert_eq!(report.processed(), 5);
    assert!(report.failures.is_empty());
    assert_eq!(engine.active_count(), 5);
    assert_eq!(engine.queued(), 0);

    let mem = engine.journal().expect("journaled").to_text();
    let disk = recover_journal_text(io.as_ref(), &dir).expect("readable store");
    assert_eq!(mem, disk, "journal/disk byte parity after the barrier");
}

/// `checkpoint()` after a deferral services the deferred batch first —
/// a snapshot may never silently drop accepted-but-unserviced requests
/// — and full recovery from the store reproduces the live state.
#[test]
fn deferred_batch_then_checkpoint_services_first_and_recovers() {
    let (mut engine, io, dir) = coalescing_engine(64, 10);

    // An established prefix so the checkpoint is mid-stream.
    for id in 1..=4 {
        engine.submit(insert(id));
    }
    engine.flush_durable().expect("prefix flush");

    // Defer a follow-up batch, then checkpoint across the deferral.
    for id in 5..=7 {
        engine.submit(insert(id));
    }
    assert!(engine.flush_coalesced().is_none(), "3 < 64 defers");
    assert!(engine.checkpoint(), "checkpoint proceeds");
    assert!(engine.durability_error().is_none(), "tee healthy");
    assert_eq!(
        engine.active_count(),
        7,
        "the checkpoint serviced the deferred batch"
    );

    let recovered = Engine::recover_from_store(io.as_ref(), &dir).expect("recovery");
    assert_eq!(recovered.state_digest(), engine.state_digest());
    assert_eq!(recovered.active_count(), 7);
    recovered.validate().expect("recovered engine valid");
}

/// The deferral counter does not leak across a barrier: after a
/// barrier consumed the queue, the policy starts fresh — `max_defer`
/// deferrals are again available before a forced flush, and the
/// post-barrier stream keeps parity.
#[test]
fn barrier_resets_the_deferral_budget_and_parity_holds() {
    let (mut engine, io, dir) = coalescing_engine(4, 2);

    // Burn one deferral, then barrier.
    engine.submit(insert(1));
    assert!(engine.flush_coalesced().is_none(), "first deferral");
    engine.flush_durable().expect("barrier");

    // A fresh trickle gets the full budget again: two deferrals, then
    // the third coalesced flush is forced by max_defer.
    engine.submit(insert(2));
    assert!(engine.flush_coalesced().is_none(), "budget reset: defer 1");
    engine.submit(insert(3));
    assert!(engine.flush_coalesced().is_none(), "budget reset: defer 2");
    engine.submit(insert(4));
    let report = engine
        .flush_coalesced()
        .expect("max_defer forces the flush");
    assert_eq!(report.processed(), 3);

    // Coalesced output is teed like any flush; sync and compare.
    engine.flush_durable().expect("sync");
    let mem = engine.journal().expect("journaled").to_text();
    let disk = recover_journal_text(io.as_ref(), &dir).expect("readable store");
    assert_eq!(mem, disk);
}

/// The `FlushMode` dispatcher drives the same seam: `Coalesced` defers,
/// `Durable` commits the deferred batch, and the modes agree with the
/// direct calls they wrap.
#[test]
fn flush_batch_modes_cover_the_seam() {
    let (mut engine, io, dir) = coalescing_engine(64, 10);

    engine.submit(insert(1));
    engine.submit(insert(2));
    assert!(
        engine
            .flush_batch(FlushMode::Coalesced)
            .expect("no sink involved")
            .is_none(),
        "Coalesced defers under min_batch"
    );

    let report = engine
        .flush_batch(FlushMode::Durable)
        .expect("durable")
        .expect("a durable flush always reports");
    assert_eq!(report.processed(), 2);

    engine.submit(insert(3));
    let report = engine
        .flush_batch(FlushMode::Immediate)
        .expect("infallible")
        .expect("an immediate flush always reports");
    assert_eq!(report.processed(), 1);

    // Immediate mode does not sync — close the stream with a barrier
    // before comparing bytes.
    engine.flush_durable().expect("sync");
    let mem = engine.journal().expect("journaled").to_text();
    let disk = recover_journal_text(io.as_ref(), &dir).expect("readable store");
    assert_eq!(mem, disk);
}
