//! Kill-at-any-point crash matrix plus the non-crash fault categories
//! (failed fsyncs, lying fsyncs, bit flips). The matrix itself lives in
//! `realloc_store::harness` so the sim binary and CI smoke step run the
//! same proof; this test runs it at full default scale — every mutating
//! I/O operation, in all three crash modes.

use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_store::{
    run_crash_matrix, segment_file_name, CrashMatrixConfig, CrashMode, DurableStore, FaultIo,
    RecoverFromDir, StoreIo,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[test]
fn full_matrix_every_crash_point_every_mode() {
    let report = run_crash_matrix(&CrashMatrixConfig::default()).expect("crash matrix holds");
    assert_eq!(
        report.runs,
        3 * report.crash_points,
        "all points, all modes"
    );
    assert_eq!(report.recovered + report.graceful_errors, report.runs);
    // The matrix must actually exercise the interesting machinery, not
    // vacuously pass on a workload that never tears or synthesizes.
    assert!(report.torn_tails_truncated > 0, "no torn tails exercised");
    assert!(
        report.segments_materialized > 0,
        "no orphan checkpoints exercised"
    );
    assert!(report.recovered > report.graceful_errors);
}

fn config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        machines_per_shard: 2,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    }
}

/// An engine over a fault injector with `n` flushed batches.
fn durable_engine(io: &Arc<FaultIo>, dir: &Path, n: usize) -> Engine {
    let mut engine = Engine::new(config());
    let store = DurableStore::create(
        Arc::clone(io) as Arc<dyn StoreIo>,
        dir,
        engine.journal().expect("journaled").config(),
    )
    .expect("create");
    engine.attach_durability(Box::new(store)).expect("attach");
    for i in 0..n {
        let id = i as u64 + 1;
        engine.submit(Request::Insert {
            id: JobId(id),
            window: Window::new(id % 30, id % 30 + 2),
        });
        engine.flush_durable().expect("durable flush");
    }
    engine
}

#[test]
fn failed_fsync_fails_the_flush_sticky_and_loses_nothing_acked() {
    let io = Arc::new(FaultIo::new());
    let dir = PathBuf::from("/store");
    let mut engine = durable_engine(&io, &dir, 4);
    let acked = engine.state_digest();
    // Store creation fsyncs twice (file + dir); each flush once. The
    // next flush's group commit is fsync #7 — make it report failure.
    io.fail_fsync_at(2 + 4 + 1);
    engine.submit(Request::Insert {
        id: JobId(99),
        window: Window::new(0, 1),
    });
    let err = engine
        .flush_durable()
        .expect_err("fsync failure fails the flush");
    assert!(err.contains("injected fsync failure"), "{err}");
    assert!(engine.durability_error().is_some(), "error is sticky");
    assert!(engine.flush_durable().is_err(), "sticky until re-attached");
    assert!(io.injected_faults() >= 1);
    // In-memory serving continued (the unacknowledged batch is visible
    // live), but after power loss recovery owes exactly the acked
    // prefix — the failed-fsync batch must not resurface half-written.
    io.inner().crash(CrashMode::SyncedOnly);
    let recovered = Engine::recover_from_store(&*io, &dir).expect("recovery");
    assert_eq!(
        recovered.state_digest(),
        acked,
        "acked prefix survives exactly"
    );
    recovered.validate().expect("valid");
}

#[test]
fn lying_fsyncs_never_panic_recovery() {
    let io = Arc::new(FaultIo::new());
    let dir = PathBuf::from("/store");
    io.ignore_fsyncs(true);
    let mut engine = Engine::new(config());
    let store = DurableStore::create(
        Arc::clone(&io) as Arc<dyn StoreIo>,
        &dir,
        engine.journal().expect("journaled").config(),
    )
    .expect("create succeeds against a lying disk");
    engine.attach_durability(Box::new(store)).expect("attach");
    for i in 0..6u64 {
        engine.submit(Request::Insert {
            id: JobId(i + 1),
            window: Window::new(i, i + 2),
        });
        engine
            .flush_durable()
            .expect("the lying disk acks everything");
    }
    assert!(engine.checkpoint());
    assert!(io.injected_faults() > 0);
    // Power loss: nothing was truly synced. No-loss is explicitly NOT
    // guaranteed here — but recovery must stay graceful (a located
    // error or a valid engine, never a panic).
    io.inner().crash(CrashMode::SyncedOnly);
    match Engine::recover_from_store(&*io, &dir) {
        Ok(engine) => engine.validate().expect("recovered engine must validate"),
        Err(e) => {
            let _ = e.to_string(); // located, printable
        }
    }
}

#[test]
fn bit_flip_sweep_never_panics_and_is_detected_or_harmless() {
    let io = Arc::new(FaultIo::new());
    let dir = PathBuf::from("/store");
    let engine = durable_engine(&io, &dir, 5);
    let honest = engine.state_digest();
    let seg = dir.join(segment_file_name(0));
    let len = io.inner().file_len(&seg).expect("segment exists");
    // Flip every 7th byte (every byte is covered across bit positions).
    for byte in (0..len).step_by(7) {
        let bit = (byte % 8) as u8;
        io.flip_bit(&seg, byte, bit).expect("flip");
        match Engine::recover_from_store(&*io, &dir) {
            // A flip in the torn-tail window of the open segment may
            // truncate; anything recovered must be a valid engine.
            Ok(engine) => {
                engine.validate().expect("recovered engine must validate");
                assert!(
                    engine.state_digest() == honest || engine.state_digest() != 0,
                    "digest is well-defined"
                );
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains(&segment_file_name(0)) || !msg.is_empty(),
                    "error is located and printable"
                );
            }
        }
        io.flip_bit(&seg, byte, bit).expect("unflip");
    }
    // Untampered again: recovery is exact.
    let recovered = Engine::recover_from_store(&*io, &dir).expect("clean");
    assert_eq!(recovered.state_digest(), honest);
}
