//! Hostile on-disk corpus: recovery over tampered, truncated, and
//! garbage store directories must produce located errors or clean
//! truncation — never a panic, never silent acceptance of corrupt
//! history.

use proptest::prelude::*;
use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_store::{segment_file_name, DurableStore, MemIo, RecoverFromDir, StoreError, StoreIo};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        machines_per_shard: 2,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    }
}

/// Builds a store with real history: `flushes` durable batches with a
/// checkpoint after each `ckpt_every`-th, returning the io handle, the
/// directory, the live engine, and the journal text captured after
/// every durable action (the set of states any honest truncation may
/// recover).
fn build(flushes: usize, ckpt_every: usize) -> (Arc<MemIo>, PathBuf, Engine, Vec<String>) {
    let io = Arc::new(MemIo::new());
    let dir = PathBuf::from("/store");
    let mut engine = Engine::new(config());
    let store = DurableStore::create(
        Arc::clone(&io) as Arc<dyn StoreIo>,
        &dir,
        engine.journal().expect("journaled").config(),
    )
    .expect("create store");
    engine.attach_durability(Box::new(store)).expect("attach");
    let mut texts = vec![engine.journal().expect("journaled").to_text()];
    for i in 0..flushes {
        let id = i as u64 + 1;
        let start = (id * 7) % 40;
        engine.submit(Request::Insert {
            id: JobId(id),
            window: Window::new(start, start + 1 + id % 5),
        });
        if i % 3 == 2 {
            engine.submit(Request::Delete {
                id: JobId(id / 2 + 1),
            });
        }
        engine.flush_durable().expect("durable flush");
        texts.push(engine.journal().expect("journaled").to_text());
        if ckpt_every > 0 && (i + 1) % ckpt_every == 0 {
            assert!(engine.checkpoint());
            assert!(engine.durability_error().is_none(), "checkpoint tee failed");
            texts.push(engine.journal().expect("journaled").to_text());
        }
    }
    (io, dir, engine, texts)
}

fn recover(io: &MemIo, dir: &Path) -> Result<Engine, StoreError> {
    Engine::recover_from_store(io, dir)
}

#[test]
fn clean_directory_recovers_the_live_state() {
    let (io, dir, engine, _) = build(10, 4);
    let recovered = recover(&io, &dir).expect("clean recovery");
    assert_eq!(recovered.state_digest(), engine.state_digest());
    assert_eq!(
        format!("{:?}", recovered.placements()),
        format!("{:?}", engine.placements())
    );
    recovered.validate().expect("recovered engine valid");
}

#[test]
fn bad_crc_in_a_sealed_segment_is_a_located_error() {
    let (io, dir, _engine, _) = build(10, 4); // segments 0..=2, seg-2 open
    let victim = dir.join(segment_file_name(1));
    let len = io.file_len(&victim).expect("sealed segment exists");
    io.flip_bit(&victim, len / 2, 3).expect("flip");
    match recover(&io, &dir) {
        Err(StoreError::Corrupt { file, .. }) => {
            assert_eq!(file, segment_file_name(1), "error names the tampered file")
        }
        other => panic!("expected a located Corrupt error, got {other:?}"),
    }
}

#[test]
fn torn_tail_in_the_open_segment_is_truncated_not_fatal() {
    let (io, dir, engine, _) = build(7, 4);
    let open_seg = dir.join(segment_file_name(1));
    let before = io.file_len(&open_seg).expect("open segment exists");
    // A record header promising more payload than exists: a mid-record
    // tear at the end of the open segment.
    io.append(
        &open_seg,
        &[0x00, 0x00, 0x01, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x41],
    )
    .expect("tamper append");
    let recovered = recover(&io, &dir).expect("torn tail tolerated");
    assert_eq!(recovered.state_digest(), engine.state_digest());
    // Re-opening repairs the file back to its valid prefix…
    let (_store, report) =
        DurableStore::open(Arc::clone(&io) as Arc<dyn StoreIo>, &dir).expect("open repairs");
    assert_eq!(report.torn_bytes_truncated, 9);
    assert_eq!(io.file_len(&open_seg), Some(before));
    // …after which recovery still agrees.
    let again = recover(&io, &dir).expect("recovery after repair");
    assert_eq!(again.state_digest(), engine.state_digest());
}

#[test]
fn truncated_checkpoint_is_a_located_error() {
    let (io, dir, _engine, _) = build(10, 4);
    let ckpt = dir.join("ckpt-000001.ckpt");
    let len = io.file_len(&ckpt).expect("checkpoint exists") as u64;
    io.truncate(&ckpt, len - 3).expect("truncate");
    match recover(&io, &dir) {
        Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, "ckpt-000001.ckpt"),
        other => panic!("expected a located Corrupt error, got {other:?}"),
    }
}

#[test]
fn segment_numbering_gap_is_a_layout_error() {
    let (io, dir, _engine, _) = build(10, 4); // segments 0, 1, 2 on disk
    io.remove_file(&dir.join(segment_file_name(1)))
        .expect("remove");
    match recover(&io, &dir) {
        Err(StoreError::Layout(m)) => {
            assert!(
                m.contains(&segment_file_name(1)),
                "error names the hole: {m}"
            )
        }
        other => panic!("expected a Layout error, got {other:?}"),
    }
}

#[test]
fn duplicate_index_under_a_non_canonical_name_is_rejected() {
    let (io, dir, _engine, _) = build(6, 4);
    // `seg-0000001.log` aliases index 1 under a second spelling; the
    // scan refuses to guess which file is authoritative.
    io.append(&dir.join("seg-0000001.log"), b"imposter")
        .expect("write alias");
    match recover(&io, &dir) {
        Err(StoreError::Layout(m)) => assert!(m.contains("seg-0000001.log"), "{m}"),
        other => panic!("expected a Layout error, got {other:?}"),
    }
}

#[test]
fn unknown_file_names_are_rejected() {
    let (io, dir, _engine, _) = build(4, 0);
    io.append(&dir.join("notes.txt"), b"scribbles")
        .expect("write");
    match recover(&io, &dir) {
        Err(StoreError::Layout(m)) => assert!(m.contains("notes.txt"), "{m}"),
        other => panic!("expected a Layout error, got {other:?}"),
    }
}

#[test]
fn zero_length_sealed_segment_is_a_located_error() {
    let (io, dir, _engine, _) = build(10, 4);
    let victim = dir.join(segment_file_name(1));
    io.truncate(&victim, 0).expect("truncate");
    match recover(&io, &dir) {
        Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, segment_file_name(1)),
        other => panic!("expected a located Corrupt error, got {other:?}"),
    }
}

#[test]
fn garbage_checkpoint_bytes_are_a_located_error() {
    let (io, dir, _engine, _) = build(10, 4);
    let ckpt = dir.join("ckpt-000002.ckpt");
    let len = io.file_len(&ckpt).expect("checkpoint exists") as u64;
    io.truncate(&ckpt, 0).expect("wipe");
    io.append(&ckpt, &vec![0xA5; len as usize])
        .expect("garbage");
    match recover(&io, &dir) {
        Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, "ckpt-000002.ckpt"),
        other => panic!("expected a located Corrupt error, got {other:?}"),
    }
}

#[test]
fn empty_directory_is_a_layout_error_and_missing_dir_is_io() {
    let io = MemIo::new();
    let dir = Path::new("/store");
    assert!(matches!(recover(&io, dir), Err(StoreError::Io { .. })));
    io.create_dir_all(dir).expect("mkdir");
    assert!(matches!(recover(&io, dir), Err(StoreError::Layout(_))));
}

#[test]
fn tmp_files_are_ignored_and_removed_on_open() {
    let (io, dir, engine, _) = build(8, 4);
    io.append(&dir.join("ckpt-000009.ckpt.tmp"), b"\xff\xfe interrupted")
        .expect("leftover tmp");
    let recovered = recover(&io, &dir).expect("tmp ignored");
    assert_eq!(recovered.state_digest(), engine.state_digest());
    let (_store, report) =
        DurableStore::open(Arc::clone(&io) as Arc<dyn StoreIo>, &dir).expect("open");
    assert!(report.files_removed >= 1);
    assert!(io.file_len(&dir.join("ckpt-000009.ckpt.tmp")).is_none());
}

#[test]
fn create_refuses_a_directory_with_history() {
    let (io, dir, _engine, _) = build(3, 0);
    let err = DurableStore::create(Arc::clone(&io) as Arc<dyn StoreIo>, &dir, &config())
        .expect_err("create over history");
    assert!(matches!(err, StoreError::Layout(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating the open segment file at ANY byte recovers a valid
    /// prefix of the acknowledged history: the recovered journal text
    /// equals one of the states captured during the honest run, and the
    /// recovered engine validates. (CRC framing means an arbitrary cut
    /// can only ever drop whole records off the tail.)
    #[test]
    fn truncating_the_open_segment_anywhere_recovers_a_valid_prefix(cut_seed in 0u64..10_000) {
        let (io, dir, _engine, texts) = build(9, 4);
        let open_seg = dir.join(segment_file_name(2));
        let len = io.file_len(&open_seg).expect("open segment exists") as u64;
        let cut = cut_seed % (len + 1);
        io.truncate(&open_seg, cut).expect("truncate");
        let recovered = recover(&io, &dir).expect("any truncation of the open segment recovers");
        recovered.validate().expect("recovered engine valid");
        let text = recovered.journal().expect("journaled").to_text();
        prop_assert!(
            texts.contains(&text),
            "cut at {cut}/{len} recovered a state outside the honest history"
        );
    }
}
