//! The durable store: an fsync'd on-disk tee under the engine's
//! in-memory journal, and the directory scan that reconstructs a
//! journal from it after a crash.
//!
//! # Write path
//!
//! [`DurableStore`] implements [`realloc_engine::DurabilitySink`]:
//!
//! * every flushed batch and epoch record becomes one framed record
//!   appended to the open segment file (`seg-NNNNNN.log`),
//! * [`DurableStore::sync`] — called by `Engine::flush_durable` — is
//!   the **group commit**: one `fsync` per flush, covering however many
//!   records the flush appended,
//! * a checkpoint seals the segment (fsyncs any unsynced tail), writes
//!   `ckpt-NNNNNN.ckpt` via temp-file + `fsync` + atomic rename +
//!   directory `fsync`, starts segment `N`, and then unlinks sealed
//!   segments beyond the retention cap — the on-disk analogue of
//!   `EngineConfig::retained_segments`, byte-for-byte aligned with the
//!   in-memory journal's truncation so a recovered journal serializes
//!   identically to the one that crashed.
//!
//! # Recovery
//!
//! [`scan`] reads the directory back into journal v3 text:
//!
//! * `*.tmp` files are ignored (interrupted checkpoint writes — never
//!   acknowledged),
//! * a trailing segment file whose checkpoint never became durable, or
//!   whose header record is torn, is dropped (its creation was not
//!   acknowledged),
//! * a trailing checkpoint whose segment file never appeared is adopted
//!   as an empty segment (the crash hit between rename and segment
//!   creation),
//! * a torn tail in the **last** segment is truncated at the last valid
//!   record — never fatal,
//! * segments below the retention horizon (stale files from an
//!   interrupted unlink pass) are ignored,
//! * everything else — index gaps, corrupt records in sealed segments
//!   or checkpoints, unknown file names, config mismatches — is a
//!   located [`StoreError`], never a panic.
//!
//! The reconstructed text goes through [`Journal::from_text`] and the
//! engine's O(tail) checkpoint+tail recovery, so the on-disk tier
//! reuses the exact grammar, validation, and divergence detection of
//! the in-memory path.

use crate::format::{
    append_record, checkpoint_file_name, classify, segment_file_name, FileKind, RecordReader,
};
use crate::io::{FsIo, StoreIo};
use crate::tele::StoreTele;
use realloc_core::textio::ParseError;
use realloc_engine::{
    Checkpoint, DurabilitySink, Engine, EngineConfig, EpochRecord, Journal, JournalEvent,
    ReplayError,
};
use realloc_telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a store operation or recovery failed. Every variant names the
/// file (and where applicable the byte offset) it tripped over.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// File (or directory) the operation targeted.
        file: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file's contents are invalid at a known offset.
    Corrupt {
        /// The offending file name.
        file: String,
        /// Byte offset of the first invalid record.
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// The directory's file set is unusable (gaps, unknown names,
    /// nothing to recover from).
    Layout(String),
    /// The reconstructed journal text failed to parse.
    Journal(ParseError),
    /// The checkpoint restore or tail replay failed.
    Replay(ReplayError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { file, source } => write!(f, "store I/O on '{file}': {source}"),
            StoreError::Corrupt {
                file,
                offset,
                message,
            } => {
                write!(f, "corrupt store file '{file}' at byte {offset}: {message}")
            }
            StoreError::Layout(m) => write!(f, "unusable store directory: {m}"),
            StoreError::Journal(e) => write!(f, "reconstructed journal failed to parse: {e}"),
            StoreError::Replay(e) => write!(f, "recovery replay failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ParseError> for StoreError {
    fn from(e: ParseError) -> Self {
        StoreError::Journal(e)
    }
}

impl From<ReplayError> for StoreError {
    fn from(e: ReplayError) -> Self {
        StoreError::Replay(e)
    }
}

fn io_err(file: impl Into<String>) -> impl FnOnce(std::io::Error) -> StoreError {
    let file = file.into();
    move |source| StoreError::Io { file, source }
}

// ----------------------------------------------------------------------
// Directory scan
// ----------------------------------------------------------------------

/// One parsed checkpoint file.
#[derive(Debug)]
struct CkptData {
    batches: u64,
    events_before: u64,
    config_line: String,
    snapshot: String,
}

/// One parsed segment file.
#[derive(Debug, Default)]
struct SegData {
    config_line: String,
    /// Concatenated chunk payloads (journal grammar lines, verbatim).
    chunks: String,
    /// Total file length that decoded cleanly.
    valid_len: usize,
    /// Bytes past `valid_len` (non-empty only for a torn tail).
    torn_bytes: usize,
}

/// What a [`scan`] found; consumed by recovery and [`DurableStore::open`].
#[derive(Debug)]
pub struct Scan {
    /// Reconstructed journal v3 text (feed to [`Journal::from_text`]).
    pub text: String,
    /// Oldest retained segment index.
    pub lo: u64,
    /// Open (newest) segment index.
    pub hi: u64,
    /// The journal config header line (`c …`) the store was created with.
    pub config_line: String,
    /// Retention cap parsed out of the config line.
    pub retained: usize,
    /// Torn tail in the open segment: `(file name, valid byte length)`.
    pub torn: Option<(String, u64)>,
    /// Files that are not part of the recovered state (stale retention
    /// leftovers, dropped unacknowledged segments, `*.tmp`); `open`
    /// unlinks them.
    pub drop_files: Vec<String>,
    /// Whether the open segment exists only as a checkpoint (the crash
    /// hit between checkpoint rename and segment creation); `open`
    /// materializes the segment file.
    pub synthesized_hi: bool,
}

fn corrupt(file: &str, offset: usize, message: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        file: file.to_string(),
        offset,
        message: message.into(),
    }
}

/// Parses a segment file. `last` relaxes tail handling: a torn record
/// suffix is truncated instead of fatal. The header record (index and
/// config) is validated against `index`; a torn *header* is reported as
/// `Ok(None)` — the whole file is unusable, which for the last segment
/// means "drop it" rather than "fail".
fn parse_segment(
    name: &str,
    bytes: &[u8],
    index: u64,
    last: bool,
) -> Result<Option<SegData>, StoreError> {
    let mut reader = RecordReader::new(bytes);
    let mut out = SegData::default();
    // Header record.
    match reader.next_record() {
        Ok(Some(payload)) => {
            let text = std::str::from_utf8(payload)
                .map_err(|e| corrupt(name, 0, format!("header is not UTF-8: {e}")))?;
            let mut lines = text.lines();
            let head = lines.next().unwrap_or("");
            let expect = format!("seg {index}");
            if head != expect {
                return Err(corrupt(
                    name,
                    0,
                    format!("header says '{head}', file name says '{expect}'"),
                ));
            }
            let config = lines
                .next()
                .ok_or_else(|| corrupt(name, 0, "header has no config line"))?;
            if !config.starts_with("c ") {
                return Err(corrupt(
                    name,
                    0,
                    format!("bad header config line '{config}'"),
                ));
            }
            if lines.next().is_some() {
                return Err(corrupt(name, 0, "trailing lines in segment header"));
            }
            out.config_line = config.to_string();
        }
        Ok(None) | Err(_) if last => return Ok(None), // torn/empty header: drop
        Ok(None) => return Err(corrupt(name, 0, "segment file is empty")),
        Err(fault) => return Err(corrupt(name, reader.offset(), fault.to_string())),
    }
    out.valid_len = reader.offset();
    // Chunk records.
    loop {
        match reader.next_record() {
            Ok(Some(payload)) => {
                let text = std::str::from_utf8(payload).map_err(|e| {
                    corrupt(name, out.valid_len, format!("chunk is not UTF-8: {e}"))
                })?;
                out.chunks.push_str(text);
                out.valid_len = reader.offset();
            }
            Ok(None) => break,
            Err(fault) => {
                if last {
                    out.torn_bytes = bytes.len() - out.valid_len;
                    break;
                }
                return Err(corrupt(name, reader.offset(), fault.to_string()));
            }
        }
    }
    Ok(Some(out))
}

/// Parses a checkpoint file (exactly one record).
fn parse_checkpoint(name: &str, bytes: &[u8], index: u64) -> Result<CkptData, StoreError> {
    let mut reader = RecordReader::new(bytes);
    let payload = match reader.next_record() {
        Ok(Some(p)) => p,
        Ok(None) => return Err(corrupt(name, 0, "checkpoint file is empty")),
        Err(fault) => return Err(corrupt(name, reader.offset(), fault.to_string())),
    };
    let after = reader.offset();
    match reader.next_record() {
        Ok(None) => {}
        Ok(Some(_)) => return Err(corrupt(name, after, "trailing record in checkpoint file")),
        Err(fault) => return Err(corrupt(name, after, fault.to_string())),
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| corrupt(name, 0, format!("checkpoint is not UTF-8: {e}")))?;
    let (head, rest) = text
        .split_once('\n')
        .ok_or_else(|| corrupt(name, 0, "checkpoint has no header line"))?;
    let mut parts = head.split_whitespace();
    let tag = parts.next().unwrap_or("");
    let parse_u64 = |tok: Option<&str>, what: &str| -> Result<u64, StoreError> {
        tok.ok_or_else(|| corrupt(name, 0, format!("checkpoint header missing {what}")))?
            .parse::<u64>()
            .map_err(|e| corrupt(name, 0, format!("bad checkpoint {what}: {e}")))
    };
    if tag != "ckpt" {
        return Err(corrupt(
            name,
            0,
            format!("bad checkpoint header tag '{tag}'"),
        ));
    }
    let idx = parse_u64(parts.next(), "index")?;
    if idx != index {
        return Err(corrupt(
            name,
            0,
            format!("header says index {idx}, file name says {index}"),
        ));
    }
    let batches = parse_u64(parts.next(), "batches")?;
    let events_before = parse_u64(parts.next(), "events-before")?;
    if parts.next().is_some() {
        return Err(corrupt(name, 0, "trailing tokens in checkpoint header"));
    }
    let (config_line, snapshot) = rest
        .split_once('\n')
        .ok_or_else(|| corrupt(name, 0, "checkpoint has no config line"))?;
    if !config_line.starts_with("c ") {
        return Err(corrupt(
            name,
            0,
            format!("bad checkpoint config line '{config_line}'"),
        ));
    }
    Ok(CkptData {
        batches,
        events_before,
        config_line: config_line.to_string(),
        snapshot: snapshot.to_string(),
    })
}

/// Retention cap: the 4th field of the journal config line.
fn retained_of(config_line: &str) -> Result<usize, StoreError> {
    config_line
        .split_whitespace()
        .nth(4)
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| {
            StoreError::Layout(format!("config line '{config_line}' has no retention cap"))
        })
}

/// Scans a store directory into reconstructed journal text plus the
/// repair/bookkeeping facts `open` needs; see the module docs for the
/// tolerated and rejected shapes.
pub fn scan(io: &dyn StoreIo, dir: &Path) -> Result<Scan, StoreError> {
    let names = io
        .list_dir(dir)
        .map_err(io_err(dir.display().to_string()))?;
    let mut segs: BTreeSet<u64> = BTreeSet::new();
    let mut ckpts: BTreeSet<u64> = BTreeSet::new();
    let mut drop_files: Vec<String> = Vec::new();
    for name in &names {
        match classify(name) {
            FileKind::Segment(i) => {
                segs.insert(i);
            }
            FileKind::Checkpoint(i) => {
                ckpts.insert(i);
            }
            FileKind::Temp => drop_files.push(name.clone()),
            FileKind::Unknown => {
                return Err(StoreError::Layout(format!(
                    "unrecognized file '{name}' in store directory"
                )))
            }
        }
    }
    // Segment numbering must be contiguous: a hole means a whole
    // segment of history vanished, which no crash window produces.
    if let (Some(&first), Some(&last)) = (segs.iter().next(), segs.iter().next_back()) {
        for i in first..=last {
            if !segs.contains(&i) {
                return Err(StoreError::Layout(format!(
                    "gap in segment numbering: '{}' is missing (segments run {} to {})",
                    segment_file_name(i),
                    segment_file_name(first),
                    segment_file_name(last),
                )));
            }
        }
    }
    // Fix the open segment `hi`: drop unacknowledged trailing segment
    // files (no durable checkpoint, or a torn header record), and adopt
    // a trailing orphan checkpoint as an empty synthesized segment.
    let mut seg_data: BTreeMap<u64, SegData> = BTreeMap::new();
    let (hi, synthesized_hi) = loop {
        let smax = segs.iter().next_back().copied();
        let cmax = ckpts.iter().next_back().copied();
        let (hi, synthesized) = match (smax, cmax) {
            (None, None) => {
                return Err(StoreError::Layout(
                    "no segment or checkpoint files to recover from".to_string(),
                ))
            }
            (Some(s), Some(c)) if c == s + 1 => (c, true),
            (Some(s), Some(c)) if c > s + 1 => {
                return Err(StoreError::Layout(format!(
                    "checkpoint '{}' has no matching segment and does not extend '{}'",
                    checkpoint_file_name(c),
                    segment_file_name(s),
                )))
            }
            (Some(s), _) => (s, false),
            (None, Some(c)) => (c, true),
        };
        if !synthesized {
            if hi >= 1 && !ckpts.contains(&hi) {
                // The segment's anchoring checkpoint never became
                // durable: nothing in the file was acknowledged.
                drop_files.push(segment_file_name(hi));
                segs.remove(&hi);
                continue;
            }
            let name = segment_file_name(hi);
            let bytes = io.read_file(&dir.join(&name)).map_err(io_err(&name))?;
            match parse_segment(&name, &bytes, hi, true)? {
                Some(data) => {
                    seg_data.insert(hi, data);
                    break (hi, false);
                }
                None => {
                    // Torn header: the file was being created at the
                    // crash; drop it and re-evaluate (its checkpoint, if
                    // durable, becomes a synthesized segment).
                    drop_files.push(name);
                    segs.remove(&hi);
                    continue;
                }
            }
        }
        break (hi, synthesized);
    };
    // The config line comes from the newest anchor (checkpoint `hi`, or
    // the genesis segment header when no checkpoint exists yet).
    let mut ckpt_data: BTreeMap<u64, CkptData> = BTreeMap::new();
    let config_line = if hi >= 1 {
        let name = checkpoint_file_name(hi);
        let bytes = io.read_file(&dir.join(&name)).map_err(io_err(&name))?;
        let data = parse_checkpoint(&name, &bytes, hi)?;
        let line = data.config_line.clone();
        ckpt_data.insert(hi, data);
        line
    } else {
        seg_data[&hi].config_line.clone()
    };
    let retained = retained_of(&config_line)?;
    // Walk the retained range down from `hi`, then clamp to the
    // retention cap: segments past it are stale leftovers of an
    // interrupted unlink pass (or of a crash before the pass ran) and
    // recovering them would disagree with the in-memory journal's own
    // truncation arithmetic.
    let mut lo = hi;
    while lo >= 1 && segs.contains(&(lo - 1)) && (lo - 1 == 0 || ckpts.contains(&(lo - 1))) {
        lo -= 1;
    }
    lo = lo.max(hi.saturating_sub(retained as u64));
    // Everything below `lo` is dead weight.
    for &i in segs.iter().filter(|&&i| i < lo) {
        drop_files.push(segment_file_name(i));
    }
    for &i in ckpts.iter().filter(|&&i| i < lo) {
        drop_files.push(checkpoint_file_name(i));
    }
    // Read the rest of the retained range.
    for i in lo..hi {
        if let std::collections::btree_map::Entry::Vacant(slot) = seg_data.entry(i) {
            let name = segment_file_name(i);
            let bytes = io.read_file(&dir.join(&name)).map_err(io_err(&name))?;
            let data = parse_segment(&name, &bytes, i, false)?
                .expect("non-last parse never drops the file");
            slot.insert(data);
        }
        if i >= 1 && !ckpt_data.contains_key(&i) {
            let name = checkpoint_file_name(i);
            let bytes = io.read_file(&dir.join(&name)).map_err(io_err(&name))?;
            ckpt_data.insert(i, parse_checkpoint(&name, &bytes, i)?);
        }
    }
    // One store, one config: every header must agree.
    for (i, data) in &seg_data {
        if data.config_line != config_line {
            return Err(corrupt(
                &segment_file_name(*i),
                0,
                format!(
                    "config line '{}' disagrees with the store's '{config_line}'",
                    data.config_line
                ),
            ));
        }
    }
    for (i, data) in &ckpt_data {
        if data.config_line != config_line {
            return Err(corrupt(
                &checkpoint_file_name(*i),
                0,
                format!(
                    "config line '{}' disagrees with the store's '{config_line}'",
                    data.config_line
                ),
            ));
        }
    }
    // Reassemble journal v3 text — the exact shape `Journal::to_text`
    // emits, so a recovered journal serializes byte-identically.
    let mut text = String::new();
    text.push_str("# realloc-engine journal v3\n");
    text.push_str(&config_line);
    text.push('\n');
    if lo >= 1 {
        let events_before = ckpt_data[&lo].events_before;
        writeln!(text, "T {lo} {events_before}").expect("string write");
    }
    for i in lo..=hi {
        if i >= 1 {
            let cp = &ckpt_data[&i];
            let nlines = cp.snapshot.lines().count();
            writeln!(text, "s {} {} {nlines}", cp.batches, cp.events_before).expect("string write");
            for line in cp.snapshot.lines() {
                text.push_str(line);
                text.push('\n');
            }
        }
        if let Some(data) = seg_data.get(&i) {
            text.push_str(&data.chunks);
        }
    }
    let torn = seg_data
        .get(&hi)
        .and_then(|d| (d.torn_bytes > 0).then(|| (segment_file_name(hi), d.valid_len as u64)));
    Ok(Scan {
        text,
        lo,
        hi,
        config_line,
        retained,
        torn,
        drop_files,
        synthesized_hi,
    })
}

/// Reconstructs journal v3 text from a store directory without
/// mutating anything (the read-only half of recovery).
pub fn recover_journal_text(io: &dyn StoreIo, dir: &Path) -> Result<String, StoreError> {
    Ok(scan(io, dir)?.text)
}

/// Crash recovery from an on-disk store: implemented for
/// [`realloc_engine::Engine`]. (An extension trait because the engine
/// crate cannot depend on this one — the store *uses* the journal's
/// grammar and replay machinery.)
pub trait RecoverFromDir: Sized {
    /// Recovers from `dir` through `io` — scan, reconstruct the
    /// journal, restore the latest checkpoint, replay the tail.
    fn recover_from_store(io: &dyn StoreIo, dir: &Path) -> Result<Self, StoreError>;

    /// [`RecoverFromDir::recover_from_store`] over the real file system.
    fn recover_from_dir(dir: &Path) -> Result<Self, StoreError> {
        Self::recover_from_store(&FsIo, dir)
    }
}

impl RecoverFromDir for Engine {
    fn recover_from_store(io: &dyn StoreIo, dir: &Path) -> Result<Engine, StoreError> {
        let text = recover_journal_text(io, dir)?;
        let journal = Journal::from_text(&text)?;
        Ok(journal.recover_engine()?)
    }
}

// ----------------------------------------------------------------------
// The durable store
// ----------------------------------------------------------------------

/// What [`DurableStore::open`] found and repaired.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Retained segments (including the open one).
    pub segments: usize,
    /// Bytes cut off the open segment's torn tail (0: clean shutdown).
    pub torn_bytes_truncated: u64,
    /// Stale/unacknowledged/temp files unlinked.
    pub files_removed: usize,
    /// Whether the open segment had to be materialized from an orphan
    /// checkpoint.
    pub segment_materialized: bool,
}

/// The on-disk durability tier; see the module docs. Attach to an
/// engine with [`realloc_engine::Engine::attach_durability`].
#[derive(Debug)]
pub struct DurableStore {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    /// Open segment index (appends go to `seg-{seg}.log`).
    seg: u64,
    /// Oldest on-disk segment index.
    lo: u64,
    /// Retention cap (mirrors `EngineConfig::retained_segments`).
    retained: usize,
    /// The journal config header line this store was created under.
    config_line: String,
    /// Whether every appended byte has been fsynced (skips redundant
    /// group commits).
    synced: bool,
    tele: Option<Box<StoreTele>>,
}

impl DurableStore {
    /// Creates a fresh store in `dir` (created if missing, must not
    /// already hold store files) for an engine journaling under
    /// `config`. Pass the config of the engine's *journal*
    /// (`engine.journal().unwrap().config()`), which records the
    /// genesis shard count — after a resize the engine's live config
    /// differs.
    ///
    /// Attaching a store to an engine that already has history requires
    /// an immediate `Engine::checkpoint()` afterwards: the store only
    /// sees records from the attach onward, and the checkpoint anchors
    /// them with full state. A freshly built engine needs no checkpoint
    /// (its genesis segment replays from the config header).
    pub fn create(
        io: Arc<dyn StoreIo>,
        dir: &Path,
        config: &EngineConfig,
    ) -> Result<DurableStore, StoreError> {
        io.create_dir_all(dir)
            .map_err(io_err(dir.display().to_string()))?;
        let names = io
            .list_dir(dir)
            .map_err(io_err(dir.display().to_string()))?;
        for name in &names {
            if !matches!(classify(name), FileKind::Temp) {
                return Err(StoreError::Layout(format!(
                    "directory already holds '{name}' — use DurableStore::open to resume"
                )));
            }
        }
        let config_line = format!(
            "c {} {} {} {}",
            config.shards, config.machines_per_shard, config.backend, config.retained_segments
        );
        let mut store = DurableStore {
            io,
            dir: dir.to_path_buf(),
            seg: 0,
            lo: 0,
            retained: config.retained_segments,
            config_line,
            synced: true,
            tele: None,
        };
        store.write_segment_header(0).map_err(Self::from_io)?;
        Ok(store)
    }

    /// Opens an existing store after a crash or restart: scans, repairs
    /// (truncates the torn tail, unlinks stale and unacknowledged
    /// files, materializes a checkpoint-only open segment), and resumes
    /// appending where the durable state ends. Recover the engine first
    /// ([`RecoverFromDir`]) — it must see the same directory this open
    /// repairs — then attach the opened store to it.
    pub fn open(
        io: Arc<dyn StoreIo>,
        dir: &Path,
    ) -> Result<(DurableStore, OpenReport), StoreError> {
        let scan = scan(&*io, dir)?;
        let mut report = OpenReport {
            segments: (scan.hi - scan.lo + 1) as usize,
            ..OpenReport::default()
        };
        for name in &scan.drop_files {
            io.remove_file(&dir.join(name))
                .map_err(io_err(name.clone()))?;
            report.files_removed += 1;
        }
        if let Some((name, valid_len)) = &scan.torn {
            let path = dir.join(name);
            let total = io.read_file(&path).map_err(io_err(name.clone()))?.len() as u64;
            io.truncate(&path, *valid_len)
                .map_err(io_err(name.clone()))?;
            io.sync_file(&path).map_err(io_err(name.clone()))?;
            report.torn_bytes_truncated = total - valid_len;
        }
        let mut store = DurableStore {
            io,
            dir: dir.to_path_buf(),
            seg: scan.hi,
            lo: scan.lo,
            retained: scan.retained,
            config_line: scan.config_line,
            synced: true,
            tele: None,
        };
        if scan.synthesized_hi {
            store.write_segment_header(scan.hi).map_err(Self::from_io)?;
            report.segment_materialized = true;
        } else if report.files_removed > 0 || report.torn_bytes_truncated > 0 {
            store
                .io
                .sync_dir(&store.dir)
                .map_err(io_err(dir.display().to_string()))?;
        }
        Ok((store, report))
    }

    /// Attaches a telemetry registry (fsync latency, bytes/records
    /// written, checkpoints, retention unlinks, torn-tail truncations).
    /// A disabled handle detaches.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = StoreTele::build(telemetry);
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the open segment.
    pub fn segment_index(&self) -> u64 {
        self.seg
    }

    /// Index of the oldest retained on-disk segment.
    pub fn oldest_index(&self) -> u64 {
        self.lo
    }

    /// Records a torn-tail truncation in the attached registry (called
    /// by recovery harnesses that learn of one via [`OpenReport`]).
    pub fn note_torn_truncation(&self) {
        if let Some(tele) = &self.tele {
            tele.torn_truncations.inc();
        }
    }

    fn seg_path(&self) -> PathBuf {
        self.dir.join(segment_file_name(self.seg))
    }

    fn from_io(e: (String, std::io::Error)) -> StoreError {
        StoreError::Io {
            file: e.0,
            source: e.1,
        }
    }

    /// Creates `seg-{index}.log` with its header record and makes it
    /// durable (file fsync + directory fsync).
    fn write_segment_header(&mut self, index: u64) -> Result<(), (String, std::io::Error)> {
        let name = segment_file_name(index);
        let path = self.dir.join(&name);
        let payload = format!("seg {index}\n{}\n", self.config_line);
        let mut framed = Vec::with_capacity(payload.len() + 8);
        append_record(&mut framed, payload.as_bytes());
        self.io
            .append(&path, &framed)
            .map_err(|e| (name.clone(), e))?;
        self.io.sync_file(&path).map_err(|e| (name.clone(), e))?;
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| (self.dir.display().to_string(), e))?;
        self.count_write(framed.len());
        Ok(())
    }

    /// Appends one framed chunk to the open segment (no fsync — that is
    /// [`DurableStore::sync`]'s group commit).
    fn append_chunk(&mut self, payload: &str) -> Result<(), String> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        append_record(&mut framed, payload.as_bytes());
        let path = self.seg_path();
        self.io
            .append(&path, &framed)
            .map_err(|e| format!("append to '{}': {e}", path.display()))?;
        self.synced = false;
        self.count_write(framed.len());
        Ok(())
    }

    fn count_write(&self, bytes: usize) {
        if let Some(tele) = &self.tele {
            tele.bytes_written.add(bytes as u64);
            tele.records.inc();
        }
    }
}

impl DurabilitySink for DurableStore {
    fn append_batch(&mut self, events: &[JournalEvent]) -> Result<(), String> {
        let Some(first) = events.first() else {
            return Ok(());
        };
        let mut payload = String::with_capacity(events.len() * 24 + 16);
        writeln!(payload, "b {}", first.batch).expect("string write");
        for e in events {
            e.write_line(&mut payload);
        }
        self.append_chunk(&payload)
    }

    fn append_epoch(&mut self, record: &EpochRecord) -> Result<(), String> {
        let mut payload = String::new();
        record.write_line(&mut payload);
        self.append_chunk(&payload)
    }

    fn checkpoint(&mut self, checkpoint: &Checkpoint) -> Result<(), String> {
        let fail = |file: &str, e: std::io::Error| format!("checkpoint I/O on '{file}': {e}");
        // Seal the open segment: its tail must be durable before the
        // checkpoint that supersedes it, or a recovered journal would
        // hold fewer events than the in-memory one that kept serving.
        if !self.synced {
            let path = self.seg_path();
            self.io
                .sync_file(&path)
                .map_err(|e| fail(&path.display().to_string(), e))?;
            self.synced = true;
        }
        let next = self.seg + 1;
        let name = checkpoint_file_name(next);
        let tmp_name = format!("{name}.tmp");
        let path = self.dir.join(&name);
        let tmp = self.dir.join(&tmp_name);
        let payload = format!(
            "ckpt {next} {} {}\n{}\n{}",
            checkpoint.batches, checkpoint.events_before, self.config_line, checkpoint.snapshot
        );
        let mut framed = Vec::with_capacity(payload.len() + 8);
        append_record(&mut framed, payload.as_bytes());
        // Temp + fsync + rename + dir fsync: the checkpoint appears
        // atomically and durably, or not at all.
        self.io
            .append(&tmp, &framed)
            .map_err(|e| fail(&tmp_name, e))?;
        self.io.sync_file(&tmp).map_err(|e| fail(&tmp_name, e))?;
        self.io.rename(&tmp, &path).map_err(|e| fail(&name, e))?;
        let dir_name = self.dir.display().to_string();
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| fail(&dir_name, e))?;
        self.count_write(framed.len());
        // Start the next segment (durable before anything is appended
        // to it), then unlink sealed segments beyond the cap — the same
        // arithmetic as the in-memory journal's truncation.
        self.write_segment_header(next)
            .map_err(|(f, e)| fail(&f, e))?;
        self.seg = next;
        self.synced = true;
        let mut unlinked = 0u64;
        while (self.seg - self.lo) as usize > self.retained {
            let seg_name = segment_file_name(self.lo);
            self.io
                .remove_file(&self.dir.join(&seg_name))
                .map_err(|e| fail(&seg_name, e))?;
            if self.lo >= 1 {
                let ck_name = checkpoint_file_name(self.lo);
                self.io
                    .remove_file(&self.dir.join(&ck_name))
                    .map_err(|e| fail(&ck_name, e))?;
            }
            self.lo += 1;
            unlinked += 1;
        }
        if unlinked > 0 {
            self.io
                .sync_dir(&self.dir)
                .map_err(|e| fail(&dir_name, e))?;
        }
        if let Some(tele) = &self.tele {
            tele.checkpoints.inc();
            tele.segments_unlinked.add(unlinked);
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), String> {
        if self.synced {
            return Ok(());
        }
        let path = self.seg_path();
        let t0 = self.tele.as_ref().map(|t| t.t.now_nanos());
        self.io
            .sync_file(&path)
            .map_err(|e| format!("fsync '{}': {e}", path.display()))?;
        if let Some(tele) = &self.tele {
            tele.fsync_nanos.record(
                tele.t
                    .now_nanos()
                    .saturating_sub(t0.expect("stamped above")),
            );
        }
        self.synced = true;
        Ok(())
    }
}
