//! On-disk framing: file naming and the CRC32+length record format.
//!
//! # Files
//!
//! A store directory holds two kinds of files:
//!
//! * `seg-NNNNNN.log` — one per journal segment, records appended as
//!   the engine flushes. Segment `0` is genesis; segment `N >= 1` is
//!   anchored by checkpoint `N`.
//! * `ckpt-NNNNNN.ckpt` — the checkpoint anchoring segment `N`, a
//!   single record written via temp-file + `fsync` + atomic rename.
//!
//! `*.tmp` files are in-flight checkpoint writes; recovery ignores
//! them (an interrupted checkpoint was never acknowledged).
//!
//! # Records
//!
//! Every file is a sequence of length-framed, checksummed records:
//!
//! ```text
//! ┌──────────────┬──────────────────┬───────────────┐
//! │ u32 BE: len  │ u32 BE: crc32    │ len payload   │
//! │  of payload  │  of the payload  │ bytes (UTF-8) │
//! └──────────────┴──────────────────┴───────────────┘
//! ```
//!
//! The CRC is [`realloc_core::crc::crc32`] (IEEE, zlib-compatible). A
//! record whose header is short, whose length exceeds
//! [`MAX_RECORD_BYTES`], whose payload is cut off, or whose checksum
//! mismatches is *invalid*; [`RecordReader`] reports the byte offset of
//! the first invalid record so recovery can decide between torn-tail
//! truncation (last segment) and a hard corruption error (anywhere
//! else).

use realloc_core::crc::crc32;

/// Cap on one record's payload. Checkpoint snapshots dominate record
/// size; 256 MiB is far above any honest snapshot and small enough to
/// reject a corrupt length prefix before allocating.
pub const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// Canonical segment file name (`seg-000042.log`).
pub fn segment_file_name(index: u64) -> String {
    format!("seg-{index:06}.log")
}

/// Canonical checkpoint file name (`ckpt-000042.ckpt`).
pub fn checkpoint_file_name(index: u64) -> String {
    format!("ckpt-{index:06}.ckpt")
}

/// What a directory entry is, per the canonical naming scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `seg-NNNNNN.log`
    Segment(u64),
    /// `ckpt-NNNNNN.ckpt`
    Checkpoint(u64),
    /// `*.tmp` — an interrupted checkpoint write; ignored.
    Temp,
    /// Anything else — recovery refuses to guess.
    Unknown,
}

/// Classifies a file name. Only *canonical* names count (zero-padded to
/// six digits): `seg-1.log` and `seg-000001.log` naming the same index
/// from two files would be undetectable corruption, so non-canonical
/// spellings are [`FileKind::Unknown`].
pub fn classify(name: &str) -> FileKind {
    if name.ends_with(".tmp") {
        return FileKind::Temp;
    }
    let parse = |prefix: &str, suffix: &str| -> Option<u64> {
        let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
        if digits.len() < 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    };
    // Canonical spelling is enforced by re-deriving the name: a
    // non-canonical spelling (`seg-0000017.log`) parses to an index
    // whose canonical name differs, and is rejected.
    if let Some(i) = parse("seg-", ".log") {
        if segment_file_name(i) == name {
            return FileKind::Segment(i);
        }
    }
    if let Some(i) = parse("ckpt-", ".ckpt") {
        if checkpoint_file_name(i) == name {
            return FileKind::Checkpoint(i);
        }
    }
    FileKind::Unknown
}

/// Appends one framed record to `buf`.
pub fn append_record(buf: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_RECORD_BYTES as usize,
        "record payload exceeds MAX_RECORD_BYTES"
    );
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);
}

/// Why a record failed to decode (the reader stops at the first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordFault {
    /// Fewer than 8 header bytes remain.
    ShortHeader,
    /// The length prefix exceeds [`MAX_RECORD_BYTES`].
    OversizedLength(u32),
    /// The payload runs past the end of the file.
    ShortPayload {
        /// Bytes the length prefix promised.
        want: u32,
        /// Bytes actually present.
        have: usize,
    },
    /// Checksum mismatch.
    BadCrc {
        /// CRC the header recorded.
        want: u32,
        /// CRC of the payload as read.
        got: u32,
    },
}

impl std::fmt::Display for RecordFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordFault::ShortHeader => write!(f, "short record header"),
            RecordFault::OversizedLength(n) => {
                write!(f, "record length {n} exceeds the {MAX_RECORD_BYTES} cap")
            }
            RecordFault::ShortPayload { want, have } => {
                write!(f, "record payload cut off: {have} of {want} bytes")
            }
            RecordFault::BadCrc { want, got } => {
                write!(
                    f,
                    "record checksum mismatch: header {want:#010x}, payload {got:#010x}"
                )
            }
        }
    }
}

/// Sequential reader over a file's framed records.
#[derive(Debug)]
pub struct RecordReader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> RecordReader<'a> {
    /// Reads `bytes` from the start.
    pub fn new(bytes: &'a [u8]) -> RecordReader<'a> {
        RecordReader { bytes, offset: 0 }
    }

    /// Byte offset of the next (unread) record — after the final `Ok`
    /// this is the file's valid length; after an `Err` it is the offset
    /// of the first invalid record (the torn-tail truncation point).
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The next record's payload, `Ok(None)` at a clean end of file,
    /// or the fault that stops decoding (`offset()` then points at the
    /// faulty record's first byte).
    pub fn next_record(&mut self) -> Result<Option<&'a [u8]>, RecordFault> {
        let rest = &self.bytes[self.offset..];
        if rest.is_empty() {
            return Ok(None);
        }
        if rest.len() < 8 {
            return Err(RecordFault::ShortHeader);
        }
        let len = u32::from_be_bytes(rest[0..4].try_into().expect("4 bytes"));
        let want_crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            return Err(RecordFault::OversizedLength(len));
        }
        let body = &rest[8..];
        if body.len() < len as usize {
            return Err(RecordFault::ShortPayload {
                want: len,
                have: body.len(),
            });
        }
        let payload = &body[..len as usize];
        let got = crc32(payload);
        if got != want_crc {
            return Err(RecordFault::BadCrc {
                want: want_crc,
                got,
            });
        }
        self.offset += 8 + len as usize;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_offsets() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"alpha");
        append_record(&mut buf, b"");
        append_record(&mut buf, b"beta beta");
        let mut r = RecordReader::new(&buf);
        assert_eq!(r.next_record().unwrap(), Some(&b"alpha"[..]));
        assert_eq!(r.next_record().unwrap(), Some(&b""[..]));
        assert_eq!(r.next_record().unwrap(), Some(&b"beta beta"[..]));
        assert_eq!(r.next_record().unwrap(), None);
        assert_eq!(r.offset(), buf.len());
    }

    #[test]
    fn truncation_at_every_byte_yields_a_valid_prefix_boundary() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"first");
        append_record(&mut buf, b"second record");
        let boundaries = [0, 8 + 5, 8 + 5 + 8 + 13];
        for cut in 0..buf.len() {
            let mut r = RecordReader::new(&buf[..cut]);
            let mut valid = 0;
            while let Ok(Some(_)) = r.next_record() {
                valid = r.offset();
            }
            assert!(
                boundaries.contains(&valid),
                "cut {cut} recovered non-boundary {valid}"
            );
            assert!(valid <= cut);
        }
    }

    #[test]
    fn bad_crc_is_detected() {
        let mut buf = Vec::new();
        append_record(&mut buf, b"payload");
        buf[10] ^= 0x40; // flip a payload bit
        let mut r = RecordReader::new(&buf);
        assert!(matches!(r.next_record(), Err(RecordFault::BadCrc { .. })));
        assert_eq!(r.offset(), 0);
    }

    #[test]
    fn file_names_are_canonical() {
        assert_eq!(classify("seg-000000.log"), FileKind::Segment(0));
        assert_eq!(classify("ckpt-000017.ckpt"), FileKind::Checkpoint(17));
        assert_eq!(classify("ckpt-000017.ckpt.tmp"), FileKind::Temp);
        assert_eq!(classify("seg-17.log"), FileKind::Unknown);
        assert_eq!(classify("seg-0000017.log"), FileKind::Unknown);
        assert_eq!(classify("notes.txt"), FileKind::Unknown);
        assert_eq!(
            classify(&segment_file_name(1234567)),
            FileKind::Segment(1234567)
        );
    }
}
