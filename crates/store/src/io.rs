//! The store's file-system seam: every byte the durability tier reads
//! or writes goes through [`StoreIo`], so the same store code runs
//! against the real file system ([`FsIo`]), a crash-simulating
//! in-memory file system ([`MemIo`]), and a deterministic fault
//! injector ([`FaultIo`]) that the crash-matrix harness drives.
//!
//! # The durability model [`MemIo`] simulates
//!
//! POSIX durability is two-level: `write` makes bytes visible, `fsync`
//! makes them stable; creating/renaming/unlinking a file makes the
//! *directory entry* visible, and only an `fsync` of the directory
//! makes it stable. [`MemIo`] tracks both levels — per-file synced
//! length, per-directory durable name set — and [`MemIo::crash`]
//! discards everything volatile according to a [`CrashMode`]. A store
//! that survives every `MemIo` crash point has its write ordering
//! right, not just its happy path.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Abstract file I/O for the store; see the module docs. All methods
/// take `&self` (implementations use interior mutability) so one
/// `Arc<dyn StoreIo>` can be shared between a store and a harness.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// The entire contents of `path`.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Appends `data` to `path`, creating it if absent. Visibility only
    /// — durability needs [`StoreIo::sync_file`].
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// `fsync(path)`: appended bytes are stable when this returns `Ok`.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// `fsync` of the directory: create/rename/unlink entries under
    /// `dir` are stable when this returns `Ok`.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncates `path` to `len` bytes (torn-tail repair).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

// ----------------------------------------------------------------------
// Real file system
// ----------------------------------------------------------------------

/// [`StoreIo`] over `std::fs` — the production implementation.
#[derive(Debug, Default)]
pub struct FsIo;

impl FsIo {
    /// A real-fs handle.
    pub fn new() -> FsIo {
        FsIo
    }
}

impl StoreIo for FsIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // std-only way to persist its entries on Unix; on platforms
        // where directories cannot be fsynced this degrades to a no-op
        // error swallow (Windows has no dir-entry durability gap API).
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all().or(Ok(())),
            Err(e) => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }
}

// ----------------------------------------------------------------------
// Crash-simulating in-memory file system
// ----------------------------------------------------------------------

/// What survives a simulated crash; see [`MemIo::crash`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Only explicitly synced state survives: file contents revert to
    /// their last `sync_file` length, directory entries to their last
    /// `sync_dir` set. The strictest honest-disk model.
    SyncedOnly,
    /// Like [`CrashMode::SyncedOnly`], but half of each file's unsynced
    /// suffix also lands (rounded up) — the page-cache partial
    /// write-back that produces **torn records** mid-record.
    TornTail,
    /// Everything written survives, synced or not — an OS that flushed
    /// its caches before the process died. Recovery may legitimately
    /// see *more* than was acknowledged.
    AllWritten,
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Debug, Default)]
struct MemState {
    /// Live (visible) files.
    files: BTreeMap<PathBuf, MemFile>,
    /// Per-directory durable entry sets (names whose create/rename/
    /// unlink was covered by a `sync_dir`).
    durable_names: BTreeMap<PathBuf, BTreeSet<String>>,
    dirs: BTreeSet<PathBuf>,
}

/// In-memory [`StoreIo`] with POSIX-style two-level durability and a
/// deterministic [`MemIo::crash`]; see the module docs.
#[derive(Debug, Default)]
pub struct MemIo {
    state: Mutex<MemState>,
}

fn split(path: &Path) -> io::Result<(PathBuf, String)> {
    let parent = path.parent().unwrap_or_else(|| Path::new("")).to_path_buf();
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    Ok((parent, name))
}

impl MemIo {
    /// An empty in-memory file system.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// Simulates a machine crash: discards all volatile state per
    /// `mode`. Afterwards the surviving files are readable — point a
    /// recovery at this handle to test the crash.
    pub fn crash(&self, mode: CrashMode) {
        let mut s = self.state.lock().expect("memio state poisoned");
        if mode == CrashMode::AllWritten {
            for f in s.files.values_mut() {
                f.synced = f.data.len();
            }
            let names: Vec<(PathBuf, String)> =
                s.files.keys().filter_map(|p| split(p).ok()).collect();
            for (dir, name) in names {
                s.durable_names.entry(dir).or_default().insert(name);
            }
            return;
        }
        let mut survivors: BTreeMap<PathBuf, MemFile> = BTreeMap::new();
        let files = std::mem::take(&mut s.files);
        for (path, mut file) in files {
            let Ok((dir, name)) = split(&path) else {
                continue;
            };
            // A file survives only if its directory entry was durable.
            if !s
                .durable_names
                .get(&dir)
                .is_some_and(|set| set.contains(&name))
            {
                continue;
            }
            let keep = match mode {
                CrashMode::SyncedOnly => file.synced,
                CrashMode::TornTail => {
                    let unsynced = file.data.len() - file.synced;
                    file.synced + unsynced.div_ceil(2)
                }
                CrashMode::AllWritten => unreachable!("handled above"),
            };
            file.data.truncate(keep);
            file.synced = file.data.len().min(file.synced);
            survivors.insert(path, file);
        }
        s.files = survivors;
        // Durable names with no surviving file content vanish (the
        // entry pointed at an inode whose data never landed).
        let live: BTreeSet<PathBuf> = s.files.keys().cloned().collect();
        for (dir, set) in s.durable_names.iter_mut() {
            set.retain(|name| live.contains(&dir.join(name)));
        }
    }

    /// Total bytes currently held (live view) — test instrumentation.
    pub fn total_bytes(&self) -> usize {
        let s = self.state.lock().expect("memio state poisoned");
        s.files.values().map(|f| f.data.len()).sum()
    }

    /// Flips one bit of a live file (fault injection). Errors when the
    /// file is absent or shorter than `byte`.
    pub fn flip_bit(&self, path: &Path, byte: usize, bit: u8) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        let f = s
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        if byte >= f.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "flip offset past end of file",
            ));
        }
        f.data[byte] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Length of a live file, if present (test instrumentation).
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        let s = self.state.lock().expect("memio state poisoned");
        s.files.get(path).map(|f| f.data.len())
    }
}

impl StoreIo for MemIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        s.dirs.insert(dir.to_path_buf());
        s.durable_names.entry(dir.to_path_buf()).or_default();
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let s = self.state.lock().expect("memio state poisoned");
        if !s.dirs.contains(dir) && !s.durable_names.contains_key(dir) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such directory"));
        }
        let mut names: Vec<String> = s
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.lock().expect("memio state poisoned");
        s.files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        s.files
            .entry(path.to_path_buf())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        let f = s
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        f.synced = f.data.len();
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        let live: BTreeSet<String> = s
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        s.durable_names.insert(dir.to_path_buf(), live);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        let f = s
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        s.files.insert(to.to_path_buf(), f);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        s.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.state.lock().expect("memio state poisoned");
        let f = s
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        f.data.truncate(len as usize);
        f.synced = f.synced.min(f.data.len());
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Deterministic fault injector
// ----------------------------------------------------------------------

#[derive(Debug, Default)]
struct FaultCtl {
    /// Crash after this many mutating ops have *started* (the op that
    /// reaches the count fails without applying).
    crash_at: Option<u64>,
    mode: Option<CrashMode>,
    crashed: bool,
    /// Fail (with an error) the nth `sync_file`/`sync_dir`, 1-based.
    fail_fsync_at: Option<u64>,
    fsyncs: u64,
    /// Report fsync success without actually syncing — the lying-disk
    /// fault. No-loss is explicitly NOT guaranteed under it; recovery
    /// must merely stay graceful.
    ignore_fsync: bool,
}

/// A [`StoreIo`] wrapper around [`MemIo`] that injects deterministic
/// faults: a crash at the N-th mutating operation (the crash-matrix
/// schedule), failed or silently ignored fsyncs, and bit flips. Counts
/// every injected fault, optionally into a
/// `store_injected_faults_total` telemetry counter.
#[derive(Debug, Default)]
pub struct FaultIo {
    inner: MemIo,
    ctl: Mutex<FaultCtl>,
    ops: AtomicU64,
    injected: AtomicU64,
    tele: Mutex<Option<realloc_telemetry::Counter>>,
}

impl FaultIo {
    /// A fault injector over a fresh in-memory file system.
    pub fn new() -> FaultIo {
        FaultIo::default()
    }

    /// The wrapped in-memory file system (for direct inspection and
    /// [`MemIo::flip_bit`]-style tampering).
    pub fn inner(&self) -> &MemIo {
        &self.inner
    }

    /// Mutating operations started so far (the crash-point space).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far (crashes, failed/ignored fsyncs, flips).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        self.ctl.lock().expect("fault ctl poisoned").crashed
    }

    /// Schedules a crash at mutating op `n` (1-based): that op and all
    /// later mutations fail, and the file system reverts per `mode`.
    /// Reads keep working — they serve the post-crash recovery view.
    pub fn crash_at(&self, n: u64, mode: CrashMode) {
        let mut ctl = self.ctl.lock().expect("fault ctl poisoned");
        ctl.crash_at = Some(n);
        ctl.mode = Some(mode);
    }

    /// Clears a fired (or pending) crash: mutating operations work
    /// again over whatever survived — "the machine came back up". The
    /// recovery harness revives before re-opening the store.
    pub fn revive(&self) {
        let mut ctl = self.ctl.lock().expect("fault ctl poisoned");
        ctl.crashed = false;
        ctl.crash_at = None;
        ctl.mode = None;
    }

    /// Makes the `n`-th fsync (file or dir, 1-based, counted together)
    /// return an error without crashing.
    pub fn fail_fsync_at(&self, n: u64) {
        self.ctl.lock().expect("fault ctl poisoned").fail_fsync_at = Some(n);
    }

    /// Turns every fsync into a silent no-op (the lying disk).
    pub fn ignore_fsyncs(&self, on: bool) {
        self.ctl.lock().expect("fault ctl poisoned").ignore_fsync = on;
    }

    /// Flips one bit of a stored file (counts as an injected fault).
    pub fn flip_bit(&self, path: &Path, byte: usize, bit: u8) -> io::Result<()> {
        self.inner.flip_bit(path, byte, bit)?;
        self.count_fault();
        Ok(())
    }

    /// Counts injected faults into `store_injected_faults_total` as
    /// well; a disabled handle detaches.
    pub fn attach_telemetry(&self, telemetry: &realloc_telemetry::Telemetry) {
        let counter = telemetry
            .is_enabled()
            .then(|| telemetry.counter("store_injected_faults_total"));
        *self.tele.lock().expect("fault tele poisoned") = counter;
    }

    fn count_fault(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.tele.lock().expect("fault tele poisoned").as_ref() {
            c.inc();
        }
    }

    /// Gate for every mutating op: advances the op counter and fires
    /// the scheduled crash when the count is reached.
    fn mutating(&self) -> io::Result<()> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ctl = self.ctl.lock().expect("fault ctl poisoned");
        if ctl.crashed {
            return Err(io::Error::other("injected crash: store is down"));
        }
        if ctl.crash_at == Some(n) {
            ctl.crashed = true;
            let mode = ctl.mode.unwrap_or(CrashMode::SyncedOnly);
            drop(ctl);
            self.inner.crash(mode);
            self.count_fault();
            return Err(io::Error::other(format!("injected crash at op {n}")));
        }
        Ok(())
    }

    /// Additional gate for fsyncs: fail-at-N and ignore faults. Returns
    /// `Ok(true)` when the sync should actually be performed.
    fn fsync_gate(&self) -> io::Result<bool> {
        let mut ctl = self.ctl.lock().expect("fault ctl poisoned");
        ctl.fsyncs += 1;
        if ctl.fail_fsync_at == Some(ctl.fsyncs) {
            drop(ctl);
            self.count_fault();
            return Err(io::Error::other("injected fsync failure"));
        }
        if ctl.ignore_fsync {
            drop(ctl);
            self.count_fault();
            return Ok(false);
        }
        Ok(true)
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.mutating()?;
        self.inner.create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list_dir(dir)
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read_file(path)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.mutating()?;
        self.inner.append(path, data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.mutating()?;
        if self.fsync_gate()? {
            self.inner.sync_file(path)?;
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.mutating()?;
        if self.fsync_gate()? {
            self.inner.sync_dir(dir)?;
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.mutating()?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.mutating()?;
        self.inner.remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.mutating()?;
        self.inner.truncate(path, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_only_crash_drops_unsynced_suffix_and_unsynced_entries() {
        let io = MemIo::new();
        let dir = Path::new("/s");
        io.create_dir_all(dir).unwrap();
        io.append(&dir.join("a"), b"hello").unwrap();
        io.sync_file(&dir.join("a")).unwrap();
        io.sync_dir(dir).unwrap();
        io.append(&dir.join("a"), b" world").unwrap(); // unsynced suffix
        io.append(&dir.join("b"), b"new").unwrap(); // unsynced entry
        io.crash(CrashMode::SyncedOnly);
        assert_eq!(io.read_file(&dir.join("a")).unwrap(), b"hello");
        assert!(io.read_file(&dir.join("b")).is_err());
        assert_eq!(io.list_dir(dir).unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn torn_tail_crash_keeps_half_the_unsynced_suffix() {
        let io = MemIo::new();
        let dir = Path::new("/s");
        io.create_dir_all(dir).unwrap();
        io.append(&dir.join("a"), b"0123").unwrap();
        io.sync_file(&dir.join("a")).unwrap();
        io.sync_dir(dir).unwrap();
        io.append(&dir.join("a"), b"abcdef").unwrap();
        io.crash(CrashMode::TornTail);
        assert_eq!(io.read_file(&dir.join("a")).unwrap(), b"0123abc");
    }

    #[test]
    fn rename_needs_dir_sync_to_survive() {
        let io = MemIo::new();
        let dir = Path::new("/s");
        io.create_dir_all(dir).unwrap();
        io.append(&dir.join("x.tmp"), b"payload").unwrap();
        io.sync_file(&dir.join("x.tmp")).unwrap();
        io.rename(&dir.join("x.tmp"), &dir.join("x")).unwrap();
        // No sync_dir: the new entry is volatile.
        io.crash(CrashMode::SyncedOnly);
        assert!(io.read_file(&dir.join("x")).is_err());
    }

    #[test]
    fn fault_io_crash_schedule_is_deterministic() {
        let run = |crash_at: Option<u64>| {
            let io = FaultIo::new();
            if let Some(n) = crash_at {
                io.crash_at(n, CrashMode::SyncedOnly);
            }
            let dir = Path::new("/s");
            let mut errs = 0;
            for op in [
                io.create_dir_all(dir),
                io.append(&dir.join("a"), b"x"),
                io.sync_file(&dir.join("a")),
                io.sync_dir(dir),
            ] {
                errs += op.is_err() as u32;
            }
            (io.ops(), errs)
        };
        assert_eq!(run(None), (4, 0));
        // Crash at op 2: op 2, 3, 4 all fail.
        assert_eq!(run(Some(2)), (4, 3));
    }
}
