//! Crash durability for the reallocation engine: an fsync'd on-disk
//! segment/checkpoint store under the in-memory journal, a pluggable
//! I/O layer with a fault-injecting implementation, and a
//! kill-at-any-point crash-matrix harness.
//!
//! The paper's model ([Bender et al., SPAA 2013][paper]) charges every
//! reallocation; this crate makes the *history* of those decisions
//! survive the process. The in-memory journal (PR 2/3) already defines
//! the grammar, checkpoint arithmetic, and O(tail) recovery; this crate
//! is a byte-exact tee of that journal onto disk, so a machine that
//! loses power mid-flush recovers the same engine a clean restart
//! would have.
//!
//! * [`io`] — the [`StoreIo`] trait over raw file operations, with
//!   [`FsIo`] (real file system), [`MemIo`] (in-memory file system with
//!   a POSIX-style write/fsync durability model and simulated crashes),
//!   and [`FaultIo`] (deterministic crash schedules, failed or ignored
//!   fsyncs, bit flips).
//! * [`format`] — file naming and the CRC32+length record framing.
//! * [`store`] — [`DurableStore`] (the [`realloc_engine::DurabilitySink`]
//!   implementation), the recovery [`scan`], and the [`RecoverFromDir`]
//!   extension trait that gives `Engine::recover_from_dir`.
//! * [`harness`] — the crash matrix: run a workload, kill the store at
//!   every write/fsync boundary in every crash mode, recover, and
//!   require that every *acknowledged* flush survives byte-identically
//!   and [`realloc_engine::Engine::validate`] holds.
//! * [`flight`] — the [`FlightRecorder`]: on telemetry incidents
//!   (quorum lost, drain timeout, durability error) dump the metrics
//!   registry and trace ring to a durable file through the same
//!   [`StoreIo`] layer, before the ring overwrites the evidence.
//!
//! # Guarantees
//!
//! With a store attached, `Engine::flush_durable` returning `Ok` means
//! the flush's journal records are on stable storage (one group-commit
//! `fsync` per flush). A crash at *any* instruction boundary loses at
//! most the unacknowledged suffix; recovery truncates a torn tail at
//! the last valid record and never panics on hostile bytes. What it
//! cannot prove valid, it reports as a located error naming the file
//! and offset.
//!
//! [paper]: https://doi.org/10.1145/2486159.2486173

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod format;
pub mod harness;
pub mod io;
pub mod store;
mod tele;

pub use flight::{FlightRecorder, FLIGHT_PREFIX};
pub use format::{
    append_record, checkpoint_file_name, classify, segment_file_name, FileKind, RecordFault,
    RecordReader, MAX_RECORD_BYTES,
};
pub use harness::{run_crash_matrix, CrashMatrixConfig, CrashMatrixReport};
pub use io::{CrashMode, FaultIo, FsIo, MemIo, StoreIo};
pub use store::{
    recover_journal_text, scan, DurableStore, OpenReport, RecoverFromDir, Scan, StoreError,
};
