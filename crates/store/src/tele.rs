//! Store instrument bundle: resolved-once handles into an attached
//! [`realloc_telemetry::Telemetry`] registry.
//!
//! Naming follows the workspace scheme (`store_*`):
//!
//! * `store_fsync_nanos` — latency histogram of every group-commit
//!   [`crate::DurableStore`] `sync` (the durability tax each
//!   acknowledged flush pays),
//! * `store_bytes_written_total` / `store_records_total` — framed bytes
//!   and records appended (segments and checkpoints together),
//! * `store_checkpoints_total` — checkpoints persisted (temp + fsync +
//!   rename sequences completed),
//! * `store_segments_unlinked_total` — sealed segment files removed by
//!   retention,
//! * `store_torn_tail_truncations_total` — torn tails truncated when a
//!   store was opened over a crashed directory,
//! * `store_injected_faults_total` — counted by [`crate::FaultIo`]
//!   (test/ chaos runs only; absent in production).

use realloc_telemetry::{Counter, Histo, Telemetry};

/// Write-path instruments; held by [`crate::DurableStore`].
#[derive(Debug)]
pub(crate) struct StoreTele {
    /// The attached registry (clock for fsync timing).
    pub t: Telemetry,
    pub fsync_nanos: Histo,
    pub bytes_written: Counter,
    pub records: Counter,
    pub checkpoints: Counter,
    pub segments_unlinked: Counter,
    pub torn_truncations: Counter,
}

impl StoreTele {
    /// Resolves the store's instruments; `None` for a disabled handle.
    pub fn build(t: &Telemetry) -> Option<Box<StoreTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Box::new(StoreTele {
            fsync_nanos: t.histogram("store_fsync_nanos"),
            bytes_written: t.counter("store_bytes_written_total"),
            records: t.counter("store_records_total"),
            checkpoints: t.counter("store_checkpoints_total"),
            segments_unlinked: t.counter("store_segments_unlinked_total"),
            torn_truncations: t.counter("store_torn_tail_truncations_total"),
            t: t.clone(),
        }))
    }
}
