//! The flight recorder: on incident, snapshot the telemetry registry
//! and trace ring to a durable file.
//!
//! Trace rings are *in-memory* and bounded — by the time an operator
//! attaches to a node that lost quorum an hour ago, the interesting
//! events have long been overwritten. The [`FlightRecorder`] closes
//! that gap: [`FlightRecorder::install`] hooks the registry's incident
//! path ([`realloc_telemetry::Telemetry::incident`] — quorum lost,
//! drain timeout, durability error), and every firing dumps the full
//! metrics exposition plus the trace ring to a sequenced file through
//! the same [`StoreIo`] abstraction the durable store writes through —
//! so the crash matrix's fault injection covers dump I/O too, and tests
//! capture dumps with [`crate::MemIo`] without touching a disk.
//!
//! Dumps are advisory diagnostics, not durability state: a dump that
//! fails to write is counted (`flight_dump_errors_total`) and dropped —
//! an incident must never escalate into a crash because the disk was
//! the problem all along.
//!
//! Incident hooks run **synchronously on the incident's own thread**
//! ([`realloc_telemetry::Telemetry::incident`]) — which, for a
//! durability error, is the flush path of a node whose disk is already
//! struggling. So the installed hook rate-limits itself: at most one
//! dump per incident key per [`FlightRecorder::with_dump_gap`] window
//! (default 1s). A repeating incident costs the hot path one dump per
//! window instead of one per firing; suppressed firings are counted
//! (`flight_dump_suppressed_total`) so the repeat rate is still
//! visible. Manual [`FlightRecorder::dump`] calls are never limited.

use crate::io::StoreIo;
use realloc_telemetry::Telemetry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default [`FlightRecorder::with_dump_gap`]: one dump per incident key
/// per second.
pub const DEFAULT_DUMP_GAP_NANOS: u64 = 1_000_000_000;

/// File-name prefix of every dump ([`FlightRecorder::dumps`] filters
/// on it).
pub const FLIGHT_PREFIX: &str = "flight-";

/// Dumps registry + trace-ring snapshots to durable files on incident;
/// see the module docs.
pub struct FlightRecorder {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    telemetry: Telemetry,
    seq: AtomicU64,
    dump_errors: realloc_telemetry::Counter,
    dump_suppressed: realloc_telemetry::Counter,
    /// Per-key floor between *incident-hook* dumps, in nanos.
    dump_gap_nanos: u64,
    /// Timestamp of the last hook dump, per incident key.
    last_dump: Mutex<HashMap<String, u64>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.dir)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// Creates a recorder dumping snapshots of `telemetry` into `dir`
    /// through `io` (the directory is created if missing). Existing
    /// dumps are preserved: numbering resumes past the highest present,
    /// so a restarted node never overwrites its pre-crash evidence.
    pub fn create(
        io: Arc<dyn StoreIo>,
        dir: impl Into<PathBuf>,
        telemetry: &Telemetry,
    ) -> std::io::Result<FlightRecorder> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let next = io
            .list_dir(&dir)?
            .iter()
            .filter_map(|name| parse_seq(name))
            .max()
            .map_or(0, |hi| hi + 1);
        Ok(FlightRecorder {
            io,
            dir,
            telemetry: telemetry.clone(),
            seq: AtomicU64::new(next),
            dump_errors: telemetry.counter("flight_dump_errors_total"),
            dump_suppressed: telemetry.counter("flight_dump_suppressed_total"),
            dump_gap_nanos: DEFAULT_DUMP_GAP_NANOS,
            last_dump: Mutex::new(HashMap::new()),
        })
    }

    /// Sets the per-key floor between incident-hook dumps (see the
    /// module docs). Zero disables the limit — every incident dumps.
    pub fn with_dump_gap(mut self, nanos: u64) -> FlightRecorder {
        self.dump_gap_nanos = nanos;
        self
    }

    /// The dump directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one dump now and returns its file name. `reason` is
    /// sanitized into the name (lowercased; anything outside
    /// `[a-z0-9_-]` becomes `_`) and recorded verbatim in the header.
    /// The file carries the registry exposition and the trace ring,
    /// fsync'd (file + directory) before returning.
    pub fn dump(&self, reason: &str) -> std::io::Result<String> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at = self.telemetry.now_nanos();
        let name = format!("{FLIGHT_PREFIX}{seq:06}-{}.log", sanitize(reason));
        let path = self.dir.join(&name);
        let mut body = String::with_capacity(1024);
        body.push_str(&format!("# flight recorder dump {seq} at {at}ns\n"));
        body.push_str(&format!("# reason: {reason}\n"));
        body.push_str("# --- metrics ---\n");
        body.push_str(&self.telemetry.render_text());
        body.push_str("# --- trace ring ---\n");
        body.push_str(&self.telemetry.render_trace());
        self.io.append(&path, body.as_bytes())?;
        self.io.sync_file(&path)?;
        self.io.sync_dir(&self.dir)?;
        Ok(name)
    }

    /// Whether an incident-hook dump for `key` may run at `now`, and if
    /// so, stamps it as this key's latest. One small map op under a
    /// private lock — the hook's fast path when an incident repeats.
    fn claim_dump_slot(&self, key: &str, now: u64) -> bool {
        let mut last = self.last_dump.lock().expect("last-dump map poisoned");
        match last.get(key) {
            Some(&at) if now.saturating_sub(at) < self.dump_gap_nanos => false,
            _ => {
                last.insert(key.to_string(), now);
                true
            }
        }
    }

    /// Hooks this recorder into its registry's incident path: every
    /// [`realloc_telemetry::Telemetry::incident`] (quorum lost, drain
    /// timeout, durability error, …) dumps a snapshot named after the
    /// incident key. Failed dumps bump `flight_dump_errors_total` and
    /// are otherwise swallowed — diagnostics must not crash the node.
    /// The hook runs on the incident's own thread (often a degraded
    /// flush or replication path), so dumps are rate-limited to one per
    /// key per [`FlightRecorder::with_dump_gap`] window; suppressed
    /// firings bump `flight_dump_suppressed_total` instead of touching
    /// the disk. Replaces any previously installed hook on the registry.
    pub fn install(self: &Arc<Self>) {
        let recorder = Arc::clone(self);
        self.telemetry
            .set_incident_hook(Arc::new(move |key: &'static str| {
                let now = recorder.telemetry.now_nanos();
                if !recorder.claim_dump_slot(key, now) {
                    recorder.dump_suppressed.inc();
                    return;
                }
                if recorder.dump(key).is_err() {
                    recorder.dump_errors.inc();
                }
            }));
    }

    /// Dump file names present in the directory, oldest first.
    pub fn dumps(&self) -> std::io::Result<Vec<String>> {
        let mut names: Vec<String> = self
            .io
            .list_dir(&self.dir)?
            .into_iter()
            .filter(|n| n.starts_with(FLIGHT_PREFIX))
            .collect();
        names.sort();
        Ok(names)
    }

    /// Reads one dump back as text (hostile bytes become U+FFFD — the
    /// dump is for humans, not parsers).
    pub fn read_dump(&self, name: &str) -> std::io::Result<String> {
        let bytes = self.io.read_file(&self.dir.join(name))?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

/// `flight-000042-reason.log` → `Some(42)`.
fn parse_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix(FLIGHT_PREFIX)?;
    let digits = rest.split('-').next()?;
    digits.parse::<u64>().ok()
}

fn sanitize(reason: &str) -> String {
    let mut out: String = reason
        .chars()
        .map(|c| match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9' | '_' | '-') => c,
            _ => '_',
        })
        .take(48)
        .collect();
    if out.is_empty() {
        out.push_str("incident");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;
    use realloc_telemetry::{Clock, Severity, Telemetry};

    fn recorder() -> (Arc<FlightRecorder>, Telemetry) {
        let t = Telemetry::with_clock(Clock::manual(), 64);
        let io: Arc<dyn StoreIo> = Arc::new(MemIo::new());
        let rec = Arc::new(FlightRecorder::create(io, "/flight", &t).unwrap());
        (rec, t)
    }

    #[test]
    fn dump_captures_metrics_and_trace_ring() {
        let (rec, t) = recorder();
        t.counter("demo_total").add(3);
        t.point(Severity::Info, "boot", 1, 2);
        let name = rec.dump("manual check").unwrap();
        assert_eq!(name, "flight-000000-manual_check.log");
        let text = rec.read_dump(&name).unwrap();
        assert!(text.contains("# reason: manual check"), "{text}");
        assert!(text.contains("demo_total 3"), "{text}");
        assert!(text.contains("info point boot 1 2"), "{text}");
        assert_eq!(rec.dumps().unwrap(), vec![name]);
    }

    #[test]
    fn installed_hook_dumps_on_incident() {
        let (rec, t) = recorder();
        rec.install();
        t.incident("quorum_lost", 2, 1);
        t.incident("drain_timeout", 5, 3);
        let dumps = rec.dumps().unwrap();
        assert_eq!(
            dumps,
            vec![
                "flight-000000-quorum_lost.log".to_string(),
                "flight-000001-drain_timeout.log".to_string()
            ]
        );
        // The dump captures the incident's own Warn point too (the
        // point records before the hook fires).
        let text = rec.read_dump(&dumps[0]).unwrap();
        assert!(text.contains("warn point quorum_lost 2 1"), "{text}");
    }

    #[test]
    fn repeated_incidents_rate_limit_per_key() {
        let (rec, t) = recorder();
        rec.install();
        t.incident("durability_error", 1, 0);
        // Same key inside the gap: suppressed, counted, no disk touch.
        t.incident("durability_error", 2, 0);
        // A different key is its own slot and dumps immediately.
        t.incident("quorum_lost", 1, 0);
        assert_eq!(rec.dumps().unwrap().len(), 2);
        assert_eq!(t.counter_value("flight_dump_suppressed_total"), Some(1));
        // Past the gap the same key dumps again.
        t.clock().unwrap().advance(DEFAULT_DUMP_GAP_NANOS);
        t.incident("durability_error", 3, 0);
        assert_eq!(rec.dumps().unwrap().len(), 3);
        // Manual dumps are operator-requested and never limited.
        rec.dump("durability_error").unwrap();
        rec.dump("durability_error").unwrap();
        assert_eq!(rec.dumps().unwrap().len(), 5);
    }

    #[test]
    fn numbering_resumes_past_existing_dumps() {
        let t = Telemetry::with_clock(Clock::manual(), 64);
        let io: Arc<dyn StoreIo> = Arc::new(MemIo::new());
        let rec = Arc::new(FlightRecorder::create(Arc::clone(&io), "/f", &t).unwrap());
        rec.dump("one").unwrap();
        drop(rec);
        let rec2 = Arc::new(FlightRecorder::create(io, "/f", &t).unwrap());
        let name = rec2.dump("two").unwrap();
        assert_eq!(name, "flight-000001-two.log");
        assert_eq!(rec2.dumps().unwrap().len(), 2);
    }

    #[test]
    fn hostile_reasons_sanitize_into_the_name() {
        let (rec, _t) = recorder();
        let name = rec.dump("../../etc/passwd: Quorum LOST!").unwrap();
        assert_eq!(name, "flight-000000-______etc_passwd__quorum_lost_.log");
    }
}
