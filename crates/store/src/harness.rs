//! The kill-at-any-point crash matrix.
//!
//! [`run_crash_matrix`] proves the store's central claim — *no
//! acknowledged flush is ever lost* — by construction rather than by
//! spot check:
//!
//! 1. A deterministic workload (inserts, deletes, checkpoints, an
//!    online resize) runs once **uncrashed** against a plain journaled
//!    engine, capturing a baseline `(journal text, state digest,
//!    placements)` after every mutation that reaches the store. These
//!    are the only states a correct recovery may produce.
//! 2. A probe run over [`crate::FaultIo`] counts the workload's
//!    mutating I/O operations `P` — every append, fsync, rename,
//!    unlink, and truncate the store issues.
//! 3. For every crash point `n in 1..=P` and every [`CrashMode`]
//!    (synced-only, torn-tail, all-written), the workload runs again
//!    with a crash scheduled at op `n`. The machine "comes back up"
//!    ([`crate::FaultIo::revive`]), the engine recovers from the
//!    surviving files, and the harness requires:
//!    * the recovered `(journal, digest, placements)` equals baseline
//!      `j` for **some `j ≥` the last acknowledged step** — nothing
//!      acknowledged is lost, and anything extra is a legal
//!      more-than-acked state (the all-written mode exercises these),
//!    * [`realloc_engine::Engine::validate`] holds,
//!    * the store re-opens over the repaired directory, accepts new
//!      durable flushes, and a second recovery sees them.
//!
//! A crash so early that the store directory never became durable may
//! instead surface as a located error — graceful, and only legal while
//! nothing has been acknowledged.

use crate::io::{CrashMode, FaultIo, StoreIo};
use crate::store::{DurableStore, RecoverFromDir};
use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig};
use std::path::Path;
use std::sync::Arc;

/// Shape of the crash-matrix workload. The defaults run a few hundred
/// crash points in well under a second; `ops` and `max_points` scale it
/// up for soak runs.
#[derive(Clone, Debug)]
pub struct CrashMatrixConfig {
    /// Shards the engine starts with.
    pub shards: usize,
    /// Machines per shard.
    pub machines_per_shard: usize,
    /// Sealed segments retained after a checkpoint.
    pub retained_segments: usize,
    /// Flush steps in the workload.
    pub ops: usize,
    /// A checkpoint is taken after every this-many flush steps.
    pub checkpoint_every: usize,
    /// Flush step after which the engine resizes to `shards + 1`
    /// (`None`: no resize).
    pub resize_after: Option<usize>,
    /// Workload seed (same seed, same workload, same crash points).
    pub seed: u64,
    /// Cap on crash points tested **per mode**; `0` tests every one.
    /// When capped, points are strided evenly across the schedule.
    pub max_points: usize,
}

impl Default for CrashMatrixConfig {
    fn default() -> Self {
        CrashMatrixConfig {
            shards: 2,
            machines_per_shard: 3,
            retained_segments: 1,
            ops: 10,
            checkpoint_every: 3,
            resize_after: Some(5),
            seed: 0x005e_ed1e_55c0_ffee,
            max_points: 0,
        }
    }
}

/// What a completed crash matrix proved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashMatrixReport {
    /// Mutating I/O operations in the uncrashed schedule (the per-mode
    /// crash-point space).
    pub crash_points: u64,
    /// Crashed runs executed (points tested × modes).
    pub runs: u64,
    /// Runs whose recovery matched a baseline at or after the last
    /// acknowledged step.
    pub recovered: u64,
    /// Runs that crashed before anything (store creation included) was
    /// acknowledged and surfaced a located error instead of a state.
    pub graceful_errors: u64,
    /// Recoveries that truncated a torn tail.
    pub torn_tails_truncated: u64,
    /// Recoveries that materialized a checkpoint-only open segment.
    pub segments_materialized: u64,
    /// Baseline states the workload produced.
    pub baselines: u64,
}

// ---------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------

/// xorshift64* — deterministic, seed-stable across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One workload step; each maps to exactly one baseline state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    /// Submit a few requests, then flush. **Ack point** (durable runs
    /// use `flush_durable`).
    Flush,
    /// Online resize to this shard count. Appends an (unsynced) epoch
    /// record; its durability rides the next ack point.
    Resize(usize),
    /// Checkpoint (queue is empty by construction — always follows a
    /// flush). **Ack point** when the tee'd checkpoint lands.
    Checkpoint,
}

fn build_steps(cfg: &CrashMatrixConfig) -> Vec<Step> {
    let mut steps = Vec::new();
    for i in 1..=cfg.ops {
        steps.push(Step::Flush);
        if cfg.resize_after == Some(i) {
            steps.push(Step::Resize(cfg.shards + 1));
            steps.push(Step::Flush); // ack the epoch record promptly
        }
        if cfg.checkpoint_every > 0 && i % cfg.checkpoint_every == 0 {
            steps.push(Step::Checkpoint);
        }
    }
    steps
}

fn engine_config(cfg: &CrashMatrixConfig) -> EngineConfig {
    EngineConfig {
        shards: cfg.shards,
        machines_per_shard: cfg.machines_per_shard,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: cfg.retained_segments,
    }
}

/// Mutable workload cursor: the rng and the live-id pool evolve
/// identically in the baseline and every crashed run.
struct Workload {
    rng: Rng,
    live: Vec<u64>,
    next_id: u64,
}

impl Workload {
    fn new(seed: u64) -> Workload {
        Workload {
            rng: Rng(seed | 1),
            live: Vec::new(),
            next_id: 1,
        }
    }

    /// Enqueues this flush step's requests (1–3 inserts/deletes).
    fn submit(&mut self, engine: &mut Engine) {
        let k = 1 + self.rng.below(3);
        for _ in 0..k {
            if !self.live.is_empty() && self.rng.below(4) == 0 {
                let idx = self.rng.below(self.live.len() as u64) as usize;
                let id = self.live.remove(idx);
                engine.submit(Request::Delete { id: JobId(id) });
            } else {
                let id = self.next_id;
                self.next_id += 1;
                let start = self.rng.below(40);
                let len = 1 + self.rng.below(8);
                engine.submit(Request::Insert {
                    id: JobId(id),
                    window: Window::new(start, start + len),
                });
                self.live.push(id);
            }
        }
    }
}

/// One baseline state: everything recovery must reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BaselineState {
    journal: String,
    digest: u64,
    placements: String,
}

fn capture(engine: &Engine) -> BaselineState {
    BaselineState {
        journal: engine.journal().expect("harness engines journal").to_text(),
        digest: engine.state_digest(),
        placements: format!("{:?}", engine.placements()),
    }
}

/// The uncrashed reference run: a plain journaled engine (no store —
/// the tee never changes journal contents) stepping through the
/// workload, capturing a baseline after every step, plus the genesis
/// state at index 0.
fn baseline_run(cfg: &CrashMatrixConfig, steps: &[Step]) -> Result<Vec<BaselineState>, String> {
    let mut engine = Engine::new(engine_config(cfg));
    let mut wl = Workload::new(cfg.seed);
    let mut baselines = vec![capture(&engine)];
    for step in steps {
        match step {
            Step::Flush => {
                wl.submit(&mut engine);
                engine.flush();
            }
            Step::Resize(n) => {
                engine
                    .resize(*n)
                    .map_err(|e| format!("baseline resize: {e}"))?;
            }
            Step::Checkpoint => {
                if !engine.checkpoint() {
                    return Err("baseline checkpoint refused".to_string());
                }
            }
        }
        baselines.push(capture(&engine));
    }
    engine
        .validate()
        .map_err(|e| format!("baseline invalid: {e}"))?;
    Ok(baselines)
}

/// Outcome of one (possibly crashed) durable run.
struct DurableRun {
    /// Baseline index of the last acknowledged step; `None` when not
    /// even the store's creation was acknowledged.
    last_acked: Option<usize>,
    /// Whether the scheduled crash fired mid-run.
    crashed: bool,
}

/// Runs the workload against a store over `io`, stopping at the first
/// durability failure. Mirrors `baseline_run` step for step.
fn durable_run(
    io: &Arc<FaultIo>,
    dir: &Path,
    cfg: &CrashMatrixConfig,
    steps: &[Step],
) -> Result<DurableRun, String> {
    let mut engine = Engine::new(engine_config(cfg));
    let journal_cfg = engine.journal().expect("journaled").config().clone();
    let store = match DurableStore::create(Arc::clone(io) as Arc<dyn StoreIo>, dir, &journal_cfg) {
        Ok(s) => s,
        Err(e) => {
            if io.crashed() {
                return Ok(DurableRun {
                    last_acked: None,
                    crashed: true,
                });
            }
            return Err(format!("store create failed without a crash: {e}"));
        }
    };
    engine.attach_durability(Box::new(store))?;
    let mut wl = Workload::new(cfg.seed);
    let mut run = DurableRun {
        last_acked: Some(0), // store creation is durable
        crashed: false,
    };
    for (i, step) in steps.iter().enumerate() {
        let acked = match step {
            Step::Flush => {
                wl.submit(&mut engine);
                engine.flush_durable().is_ok()
            }
            Step::Resize(n) => {
                engine
                    .resize(*n)
                    .map_err(|e| format!("durable resize: {e}"))?;
                // Not an ack point: the epoch record is appended but
                // unsynced until the next flush/checkpoint.
                continue;
            }
            Step::Checkpoint => {
                if !engine.checkpoint() {
                    return Err("durable checkpoint refused".to_string());
                }
                engine.durability_error().is_none()
            }
        };
        if acked {
            run.last_acked = Some(i + 1);
        } else if io.crashed() {
            run.crashed = true;
            return Ok(run);
        } else {
            return Err(format!(
                "step {i} ({step:?}) lost durability without a crash: {:?}",
                engine.durability_error()
            ));
        }
    }
    run.crashed = io.crashed();
    Ok(run)
}

/// Recovery check for one crashed run; returns the matched baseline
/// index, or `None` for a graceful early error.
fn check_recovery(
    io: &Arc<FaultIo>,
    dir: &Path,
    run: &DurableRun,
    baselines: &[BaselineState],
    report: &mut CrashMatrixReport,
    context: &str,
) -> Result<(), String> {
    io.revive();
    let engine = match Engine::recover_from_store(&**io, dir) {
        Ok(e) => e,
        Err(e) => {
            // A located error is legal only while nothing (not even the
            // store's creation) was acknowledged.
            if run.last_acked.is_none() {
                report.graceful_errors += 1;
                return Ok(());
            }
            return Err(format!("{context}: recovery failed after acks: {e}"));
        }
    };
    let floor = run.last_acked.unwrap_or(0);
    let got = capture(&engine);
    let matched = baselines[floor..]
        .iter()
        .position(|b| *b == got)
        .map(|p| p + floor);
    let Some(j) = matched else {
        let near = baselines
            .iter()
            .position(|b| *b == got)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "none".to_string());
        return Err(format!(
            "{context}: recovered state matches no baseline >= {floor} \
             (closest unrestricted match: {near}) — an acknowledged flush was lost"
        ));
    };
    engine
        .validate()
        .map_err(|e| format!("{context}: recovered engine invalid: {e}"))?;
    // The repaired directory must re-open, accept new durable writes,
    // and a second recovery must see them.
    let mut engine = engine;
    let (store, open) = DurableStore::open(Arc::clone(io) as Arc<dyn StoreIo>, dir)
        .map_err(|e| format!("{context}: post-crash open failed: {e}"))?;
    if open.torn_bytes_truncated > 0 {
        report.torn_tails_truncated += 1;
    }
    if open.segment_materialized {
        report.segments_materialized += 1;
    }
    engine.attach_durability(Box::new(store))?;
    engine.submit(Request::Insert {
        id: JobId(1_000_000 + j as u64),
        window: Window::new(0, 1),
    });
    engine
        .flush_durable()
        .map_err(|e| format!("{context}: reopened store rejected a flush: {e}"))?;
    let again = Engine::recover_from_store(&**io, dir)
        .map_err(|e| format!("{context}: second recovery failed: {e}"))?;
    if again.state_digest() != engine.state_digest() {
        return Err(format!(
            "{context}: second recovery diverged from the live engine"
        ));
    }
    report.recovered += 1;
    Ok(())
}

/// Runs the full crash matrix; see the module docs. `Err` carries the
/// first violated guarantee (mode, crash point, and what diverged).
pub fn run_crash_matrix(cfg: &CrashMatrixConfig) -> Result<CrashMatrixReport, String> {
    let steps = build_steps(cfg);
    let baselines = baseline_run(cfg, &steps)?;
    let dir = Path::new("/store");
    // Probe: count the uncrashed schedule's mutating ops and prove the
    // durable run lands exactly on the final baseline.
    let probe = Arc::new(FaultIo::new());
    let run = durable_run(&probe, dir, cfg, &steps)?;
    if run.crashed || run.last_acked != Some(steps.len()) {
        return Err("probe run did not acknowledge every step".to_string());
    }
    let engine = Engine::recover_from_store(&*probe, dir)
        .map_err(|e| format!("probe recovery failed: {e}"))?;
    if capture(&engine) != *baselines.last().expect("nonempty") {
        return Err("probe recovery does not match the final baseline".to_string());
    }
    let total_ops = probe.ops();
    let mut report = CrashMatrixReport {
        crash_points: total_ops,
        baselines: baselines.len() as u64,
        ..CrashMatrixReport::default()
    };
    // Stride when capped; always include the first and last points.
    let points: Vec<u64> = if cfg.max_points > 0 && (cfg.max_points as u64) < total_ops {
        let m = cfg.max_points as u64;
        (0..m)
            .map(|k| 1 + k * (total_ops - 1) / (m - 1).max(1))
            .collect()
    } else {
        (1..=total_ops).collect()
    };
    for mode in [
        CrashMode::SyncedOnly,
        CrashMode::TornTail,
        CrashMode::AllWritten,
    ] {
        for &n in &points {
            let io = Arc::new(FaultIo::new());
            io.crash_at(n, mode);
            let run = durable_run(&io, dir, cfg, &steps)?;
            if !run.crashed {
                return Err(format!("{mode:?}@{n}: scheduled crash never fired"));
            }
            report.runs += 1;
            check_recovery(
                &io,
                dir,
                &run,
                &baselines,
                &mut report,
                &format!("{mode:?}@{n}"),
            )?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed matrix runs inside the unit suite; the full default
    /// matrix is the `crash_matrix` integration test.
    #[test]
    fn small_matrix_holds() {
        let cfg = CrashMatrixConfig {
            ops: 4,
            checkpoint_every: 2,
            resize_after: Some(2),
            max_points: 12,
            ..CrashMatrixConfig::default()
        };
        let report = run_crash_matrix(&cfg).expect("crash matrix");
        assert_eq!(report.runs, 36);
        assert!(report.recovered + report.graceful_errors == report.runs);
        assert!(report.recovered > 0);
    }
}
