//! Fixed-width table printing — the "figures" of `EXPERIMENTS.md`.

/// A printable table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {c:>w$} |", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats an `f64` with two decimals for table cells.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders a schedule snapshot as an ASCII Gantt chart: one row per
/// machine, one column per slot in `[t0, t1)`, job ids shown modulo 10
/// (`.` = idle). Meant for examples and debugging, not big schedules.
pub fn gantt(
    snapshot: &realloc_core::ScheduleSnapshot,
    machines: usize,
    t0: realloc_core::Slot,
    t1: realloc_core::Slot,
) -> String {
    let width = (t1 - t0) as usize;
    let mut rows = vec![vec!['.'; width]; machines];
    for (job, p) in snapshot.iter() {
        if p.machine < machines && (t0..t1).contains(&p.slot) {
            rows[p.machine][(p.slot - t0) as usize] =
                char::from_digit((job.0 % 10) as u32, 10).unwrap();
        }
    }
    let mut out = String::new();
    out.push_str(&format!("slots [{t0}, {t1})\n"));
    for (m, row) in rows.iter().enumerate() {
        out.push_str(&format!("m{m} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_style() {
        let mut t = Table::new("demo", &["n", "cost"]);
        t.row(vec!["10".into(), "1.25".into()]);
        t.row(vec!["100000".into(), "1.50".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("| 100000 |"));
        assert!(r.lines().count() == 5);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn gantt_renders_occupancy() {
        use realloc_core::{cost::Placement, JobId, ScheduleSnapshot};
        let mut s = ScheduleSnapshot::new();
        s.set(
            JobId(7),
            Placement {
                machine: 0,
                slot: 2,
            },
        );
        s.set(
            JobId(13),
            Placement {
                machine: 1,
                slot: 0,
            },
        );
        let g = gantt(&s, 2, 0, 4);
        assert!(g.contains("m0 |..7.|"));
        assert!(g.contains("m1 |3...|"));
    }
}
