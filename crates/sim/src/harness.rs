//! Shared experiment plumbing: scheduler constructors and workload
//! shorthands used by the `exp_*` binaries.

use realloc_baselines::NaivePeckingScheduler;
use realloc_core::RequestSeq;
use realloc_engine::{BackendKind, EngineConfig};
use realloc_multi::{ReallocatingScheduler, TheoremOneScheduler};
use realloc_reservation::{ReservationScheduler, TrimmedScheduler};
use realloc_workloads::{ChurnConfig, ChurnGenerator};

/// The paper's Theorem 1 configuration (reservation + trim on every
/// machine).
pub fn theorem_one(machines: usize, gamma: u64) -> TheoremOneScheduler {
    TheoremOneScheduler::theorem_one(machines, gamma)
}

/// Reservation scheduler without trimming (pure `O(log* Δ)` variant).
pub fn reservation_multi(machines: usize) -> ReallocatingScheduler<ReservationScheduler> {
    ReallocatingScheduler::from_factory(machines, ReservationScheduler::new)
}

/// The Lemma 4 naive baseline lifted to `m` machines through the same
/// §3/§5 pipeline.
pub fn naive_multi(machines: usize) -> ReallocatingScheduler<NaivePeckingScheduler> {
    ReallocatingScheduler::from_factory(machines, NaivePeckingScheduler::new)
}

/// Trimmed single-machine backend (for per-machine experiments).
pub fn trimmed(gamma: u64) -> TrimmedScheduler {
    TrimmedScheduler::new(gamma)
}

/// Engine configuration for the serving-layer experiments
/// (`exp_engine_throughput`, engine benches).
pub fn engine_config(
    shards: usize,
    machines_per_shard: usize,
    backend: BackendKind,
    parallel: bool,
) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard,
        backend,
        parallel,
        journal: false,
        ..EngineConfig::default()
    }
}

/// Churn sequence with `len` requests hovering around `target` active jobs
/// at density `gamma` on `machines` machines, spans up to `max_span`.
pub fn churn_seq(
    machines: usize,
    gamma: u64,
    target: usize,
    max_span: u64,
    unaligned: bool,
    len: usize,
    seed: u64,
) -> RequestSeq {
    let mut spans = vec![];
    let mut s = 1u64;
    while s <= max_span {
        spans.push(s);
        s *= 4;
    }
    let horizon = (max_span * 4)
        .max((target as u64 * gamma * 4).next_power_of_two())
        .next_power_of_two();
    let mut g = ChurnGenerator::new(
        ChurnConfig {
            machines,
            gamma,
            horizon,
            spans,
            target_active: target,
            insert_bias: 0.6,
            unaligned,
        },
        seed,
    );
    g.generate(len)
}
