//! # realloc-sim
//!
//! Simulation harness for the reallocation-scheduling experiments:
//! [`runner`] drives any [`realloc_core::Reallocator`] over a request
//! sequence with per-request cost metering and optional per-step
//! feasibility validation; [`stats`] summarizes cost distributions;
//! [`report`] prints the fixed-width tables recorded in `EXPERIMENTS.md`.
//!
//! One binary per experiment lives in `src/bin/` (`exp_*`); each
//! regenerates one table of `EXPERIMENTS.md`. See `DESIGN.md` §4 for the
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;
pub mod runner;
pub mod stats;

pub use runner::{run, RunOptions, RunReport};
pub use stats::Summary;
