//! `realloc-cli` — replay a request-sequence file against a chosen
//! scheduler and report costs.
//!
//! ```text
//! realloc_cli <file> [--sched reservation|naive|edf|llf] [--machines M]
//!             [--gamma G] [--validate] [--gantt T0 T1]
//! ```
//!
//! The file format is one request per line (`realloc_core::textio`):
//! `+ id arrival deadline` inserts, `- id` deletes, `#` comments.
//! Generate files from the workload generators, e.g. with `--emit`:
//!
//! ```text
//! realloc_cli --emit doctors-office --seed 7 --len 500 > day.req
//! realloc_cli day.req --sched reservation --validate
//! ```

use realloc_baselines::{EdfRescheduler, LlfRescheduler, NaivePeckingScheduler};
use realloc_core::textio;
use realloc_core::{Reallocator, RequestSeq};
use realloc_multi::{ReallocatingScheduler, TheoremOneScheduler};
use realloc_sim::report::gantt;
use realloc_sim::runner::{run, RunOptions, RunReport};
use realloc_sim::stats::Summary;
use std::process::ExitCode;

struct Args {
    file: Option<String>,
    sched: String,
    machines: usize,
    gamma: u64,
    validate: bool,
    gantt: Option<(u64, u64)>,
    emit: Option<String>,
    seed: u64,
    len: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        sched: "reservation".into(),
        machines: 1,
        gamma: 8,
        validate: false,
        gantt: None,
        emit: None,
        seed: 0,
        len: 1000,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sched" => args.sched = next_val(&mut it, "--sched")?,
            "--machines" => {
                args.machines = next_val(&mut it, "--machines")?
                    .parse()
                    .map_err(|e| format!("--machines: {e}"))?
            }
            "--gamma" => {
                args.gamma = next_val(&mut it, "--gamma")?
                    .parse()
                    .map_err(|e| format!("--gamma: {e}"))?
            }
            "--validate" => args.validate = true,
            "--gantt" => {
                let t0 = next_val(&mut it, "--gantt")?
                    .parse()
                    .map_err(|e| format!("--gantt: {e}"))?;
                let t1 = next_val(&mut it, "--gantt")?
                    .parse()
                    .map_err(|e| format!("--gantt: {e}"))?;
                args.gantt = Some((t0, t1));
            }
            "--emit" => args.emit = Some(next_val(&mut it, "--emit")?),
            "--seed" => {
                args.seed = next_val(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--len" => {
                args.len = next_val(&mut it, "--len")?
                    .parse()
                    .map_err(|e| format!("--len: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: realloc_cli <file> [--sched reservation|naive|edf|llf] \
                            [--machines M] [--gamma G] [--validate] [--gantt T0 T1]\n\
                            or:    realloc_cli --emit doctors-office|cloud-cluster|train-station \
                            [--seed S] [--len N] [--machines M]"
                        .into(),
                )
            }
            other if !other.starts_with('-') && args.file.is_none() => {
                args.file = Some(other.to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn report(name: &str, r: &RunReport) {
    let s = Summary::of(r.meter.samples().iter().map(|x| x.reallocations));
    println!("scheduler:            {name}");
    println!("requests executed:    {}", r.executed);
    println!("requests declined:    {}", r.failures.len());
    println!(
        "reallocations:        total {}, mean {:.4}, p99 {}, max {}",
        r.meter.total_reallocations(),
        s.mean,
        s.p99,
        s.max
    );
    println!(
        "migrations:           total {}, max/request {}",
        r.meter.total_migrations(),
        r.meter.max_migrations()
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(kind) = &args.emit {
        let mut gen = match kind.as_str() {
            "doctors-office" => realloc_workloads::scenarios::doctors_office(7, args.seed),
            "cloud-cluster" => {
                realloc_workloads::scenarios::cloud_cluster(args.machines.max(2), args.seed)
            }
            "train-station" => {
                realloc_workloads::scenarios::train_station(args.machines.max(2), args.seed)
            }
            other => {
                eprintln!("unknown workload '{other}'");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", textio::to_text(&gen.generate(args.len)));
        return ExitCode::SUCCESS;
    }

    let Some(file) = &args.file else {
        eprintln!("no input file (try --help)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seq: RequestSeq = match textio::from_text(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = seq.validate() {
        eprintln!("{file}: invalid sequence: {e:?}");
        return ExitCode::FAILURE;
    }
    println!(
        "{}: {} requests, peak {} active, max span {}\n",
        file,
        seq.len(),
        seq.peak_active(),
        seq.max_span()
    );

    let opts = RunOptions {
        validate_each_step: args.validate,
        fail_fast: false,
    };
    let outcome = match args.sched.as_str() {
        "reservation" => {
            let mut s = TheoremOneScheduler::theorem_one(args.machines, args.gamma);
            let r = run(&mut s, &seq, opts).unwrap();
            report("reservation (Theorem 1)", &r);
            args.gantt
                .map(|(t0, t1)| gantt(&s.snapshot(), args.machines, t0, t1))
        }
        "naive" => {
            let mut s =
                ReallocatingScheduler::from_factory(args.machines, NaivePeckingScheduler::new);
            let r = run(&mut s, &seq, opts).unwrap();
            report("naive pecking order (Lemma 4)", &r);
            args.gantt
                .map(|(t0, t1)| gantt(&s.snapshot(), args.machines, t0, t1))
        }
        "edf" => {
            let mut s = EdfRescheduler::new(args.machines);
            let r = run(&mut s, &seq, opts).unwrap();
            report("EDF full recompute", &r);
            args.gantt
                .map(|(t0, t1)| gantt(&s.snapshot(), args.machines, t0, t1))
        }
        "llf" => {
            let mut s = LlfRescheduler::new(args.machines);
            let r = run(&mut s, &seq, opts).unwrap();
            report("LLF full recompute", &r);
            args.gantt
                .map(|(t0, t1)| gantt(&s.snapshot(), args.machines, t0, t1))
        }
        other => {
            eprintln!("unknown scheduler '{other}'");
            return ExitCode::FAILURE;
        }
    };
    if let Some(g) = outcome {
        println!("\n{g}");
    }
    ExitCode::SUCCESS
}
