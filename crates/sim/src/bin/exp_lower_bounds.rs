//! E5 + E6 + E7 — the paper's lower bounds, measured.
//!
//! * Lemma 11: on the adaptive adversary, any scheduler that services the
//!   (non-underallocated) sequence pays `Ω(s)` migrations — we drive EDF
//!   and LLF, and show the Theorem-1 scheduler correctly *declines* (its
//!   underallocation precondition is violated; that is the theory's point:
//!   without slack, bounded migration is impossible).
//! * Lemma 12: the toggle forces `Θ(s²)` total reallocations.
//! * Observation 13: sizes `{1, k}` force `Ω(k)` per slide for any
//!   scheduler, measured against the sized-EDF substrate.

use realloc_baselines::{EdfRescheduler, LlfRescheduler, SizedEdfScheduler};
use realloc_sim::harness::theorem_one;
use realloc_sim::report::{f2, Table};
use realloc_sim::runner::{run, RunOptions};
use realloc_workloads::{lemma12_toggle, obs13_slide, Lemma11Adversary, SizedRequest};

fn main() {
    // --- Lemma 11 -------------------------------------------------------
    let mut t1 = Table::new(
        "E5: Lemma 11 migration adversary (s requests ⇒ ≥ s/12 migrations)",
        &[
            "machines",
            "sched",
            "requests s",
            "migrations",
            "s/12",
            "per-request",
        ],
    );
    for &m in &[2usize, 4, 8, 16] {
        for which in ["edf", "llf"] {
            let mut adv = Lemma11Adversary::new();
            let report = if which == "edf" {
                let mut s = EdfRescheduler::new(m);
                adv.run(&mut s, 40).unwrap()
            } else {
                let mut s = LlfRescheduler::new(m);
                adv.run(&mut s, 40).unwrap()
            };
            t1.row(vec![
                m.to_string(),
                which.to_string(),
                report.requests.to_string(),
                report.migrations.to_string(),
                (report.requests / 12).to_string(),
                f2(report.migrations as f64 / report.requests as f64),
            ]);
        }
        // The Theorem-1 scheduler: its §3 delegation rebalances after each
        // delete, so it either serves the sequence — paying the migrations
        // the lemma proves unavoidable — or, if the slack-free instance
        // defeats its per-machine precondition, declines.
        let mut adv = Lemma11Adversary::new();
        let mut ours = theorem_one(m, 8);
        match adv.run(&mut ours, 40) {
            Ok(report) => t1.row(vec![
                m.to_string(),
                "theorem-1".to_string(),
                report.requests.to_string(),
                report.migrations.to_string(),
                (report.requests / 12).to_string(),
                f2(report.migrations as f64 / report.requests as f64),
            ]),
            Err(_) => t1.row(vec![
                m.to_string(),
                "theorem-1".to_string(),
                "-".to_string(),
                "declines (no slack)".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        };
    }
    t1.print();

    // --- Lemma 12 -------------------------------------------------------
    let mut t2 = Table::new(
        "E6: Lemma 12 toggle — total reallocations grow quadratically in s",
        &[
            "eta",
            "requests s",
            "total reallocs",
            "total/s (≈ s/16 ⇒ Θ(s²))",
        ],
    );
    for &eta in &[32u64, 64, 128, 256] {
        // s scales with eta: eta inserts + eta/2 rounds × 4 requests.
        let rounds = (eta / 2) as usize;
        let seq = lemma12_toggle(eta, rounds);
        let mut s = EdfRescheduler::new(1);
        let report = run(&mut s, &seq, RunOptions::default()).unwrap();
        let total = report.meter.total_reallocations();
        let sreq = report.executed as u64;
        t2.row(vec![
            eta.to_string(),
            sreq.to_string(),
            total.to_string(),
            f2(total as f64 / sreq as f64),
        ]);
    }
    t2.print();

    // --- Observation 13 --------------------------------------------------
    let mut t3 = Table::new(
        "E7: Observation 13 slide — aggregate cost Ω(k) per slide (γ = 2)",
        &["k", "slides", "total reallocs", "reallocs per slide (≈ k)"],
    );
    for &k in &[4u64, 8, 16, 32, 64] {
        let reqs = obs13_slide(2, k, 8);
        let mut s = SizedEdfScheduler::new(1);
        let mut total = 0u64;
        let mut slides = 0u64;
        for r in &reqs {
            let out = match r {
                SizedRequest::Insert(job) => s.insert_job(*job).unwrap(),
                SizedRequest::Delete(id) => {
                    slides += 1;
                    s.delete_job(*id).unwrap()
                }
            };
            total += out.netted().reallocation_cost();
        }
        t3.row(vec![
            k.to_string(),
            slides.to_string(),
            total.to_string(),
            f2(total as f64 / slides as f64),
        ]);
    }
    t3.print();
}
