//! E2 + E3 — Theorem 1 cost scaling.
//!
//! Sweeps the active-set size `n` and the window-span bound `Δ`, measuring
//! per-request reallocations for the reservation scheduler (flat, the
//! `O(min{log* n, log* Δ})` claim) against the Lemma 4 naive baseline
//! (grows with `log Δ`), and confirming migrations never exceed 1 per
//! request (Theorem 1's second bullet).

use realloc_sim::harness::{churn_seq, naive_multi, reservation_multi, theorem_one};
use realloc_sim::report::{f2, Table};
use realloc_sim::runner::{run, RunOptions};
use realloc_sim::stats::Summary;

fn main() {
    // --- cost vs n (Δ fixed) -------------------------------------------
    let mut t1 = Table::new(
        "E2a: per-request reallocations vs n (Δ = 4096, m = 1, γ = 8)",
        &["n target", "sched", "mean", "p99", "max"],
    );
    for &n in &[100usize, 400, 1600, 6400] {
        let seq = churn_seq(1, 8, n, 1 << 12, false, 8 * n, 7);
        for which in ["reservation", "resv+trim", "naive"] {
            let meter = match which {
                "reservation" => {
                    let mut s = reservation_multi(1);
                    run(&mut s, &seq, RunOptions::default()).unwrap().meter
                }
                "resv+trim" => {
                    // Trimming adds the amortized-rebuild spikes (the max
                    // column); the deamortized variant removes them (E11).
                    let mut s = theorem_one(1, 8);
                    run(&mut s, &seq, RunOptions::default()).unwrap().meter
                }
                _ => {
                    let mut s = naive_multi(1);
                    run(&mut s, &seq, RunOptions::default()).unwrap().meter
                }
            };
            let sum = Summary::of(meter.samples().iter().map(|s| s.reallocations));
            t1.row(vec![
                n.to_string(),
                which.to_string(),
                f2(sum.mean),
                sum.p99.to_string(),
                sum.max.to_string(),
            ]);
        }
    }
    t1.print();

    // --- cost vs Δ (n fixed) -------------------------------------------
    let mut t2 = Table::new(
        "E2b: per-request reallocations vs Δ (n ≈ 800, m = 1, γ = 8)",
        &["max span", "levels", "sched", "mean", "p99", "max"],
    );
    for &(span, levels) in &[(1u64 << 5, 1usize), (1 << 8, 2), (1 << 14, 3), (1 << 22, 3)] {
        let seq = churn_seq(1, 8, 800, span, false, 6000, 11);
        for which in ["reservation", "naive"] {
            let meter = if which == "reservation" {
                let mut s = reservation_multi(1);
                run(&mut s, &seq, RunOptions::default()).unwrap().meter
            } else {
                let mut s = naive_multi(1);
                run(&mut s, &seq, RunOptions::default()).unwrap().meter
            };
            let sum = Summary::of(meter.samples().iter().map(|s| s.reallocations));
            t2.row(vec![
                format!("2^{}", span.trailing_zeros()),
                levels.to_string(),
                which.to_string(),
                f2(sum.mean),
                sum.p99.to_string(),
                sum.max.to_string(),
            ]);
        }
    }
    t2.print();

    // --- migrations (m > 1) --------------------------------------------
    let mut t3 = Table::new(
        "E3: migrations per request (γ = 16, unaligned windows)",
        &[
            "machines",
            "requests",
            "total migrations",
            "max per request",
        ],
    );
    for &m in &[2usize, 4, 8, 16] {
        let seq = churn_seq(m, 16, 200 * m, 1 << 10, true, 5000, 13);
        let mut s = theorem_one(m, 16);
        let report = run(&mut s, &seq, RunOptions::default()).unwrap();
        t3.row(vec![
            m.to_string(),
            report.executed.to_string(),
            report.meter.total_migrations().to_string(),
            report.meter.max_migrations().to_string(),
        ]);
    }
    t3.print();
}
