//! E1 — Figure 1 / Lemma 9 correctness.
//!
//! Runs the full Theorem-1 pipeline over random churn (aligned and
//! unaligned, several machine counts and densities), validating the
//! produced schedule against the **original** windows after every request
//! and checking the reservation scheduler's structural invariants on every
//! machine at the end. A row with `failures = 0` and `valid = yes` is the
//! reproduction of "the algorithm maintains a feasible schedule".

use realloc_sim::harness::{churn_seq, theorem_one};
use realloc_sim::report::{f2, Table};
use realloc_sim::runner::{run, RunOptions};

fn main() {
    let mut table = Table::new(
        "E1: correctness of the Theorem-1 pipeline (validated every request)",
        &[
            "machines",
            "gamma",
            "windows",
            "requests",
            "failures",
            "mean realloc",
            "max realloc",
            "max migr",
            "valid",
        ],
    );
    for &(m, gamma, unaligned) in &[
        (1usize, 8u64, false),
        (1, 8, true),
        (4, 8, false),
        (4, 16, true),
        (16, 16, true),
    ] {
        let seq = churn_seq(m, gamma, 300 * m, 1 << 12, unaligned, 6000, 42 + m as u64);
        let mut sched = theorem_one(m, gamma);
        let report = run(
            &mut sched,
            &seq,
            RunOptions {
                validate_each_step: true,
                fail_fast: false,
            },
        )
        .expect("run completes");
        let mut valid = true;
        for machine in 0..m {
            if let Err(e) = sched.backend(machine).inner().check_invariants() {
                eprintln!("machine {machine}: {e}");
                valid = false;
            }
        }
        table.row(vec![
            m.to_string(),
            gamma.to_string(),
            if unaligned { "arbitrary" } else { "aligned" }.to_string(),
            report.executed.to_string(),
            report.failures.len().to_string(),
            f2(report.meter.mean_reallocations()),
            report.meter.max_reallocations().to_string(),
            report.meter.max_migrations().to_string(),
            if valid { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.print();
}
