//! E11 — trimming: amortized rebuilds vs the deamortized even/odd scheme
//! (paper §4, "Trimming Windows to n and Deamortization").
//!
//! A growth phase (insert-heavy) followed by a shrink phase (delete-heavy)
//! forces repeated `n*` changes. The amortized scheduler pays `Θ(n)`
//! rebuild spikes (large max); the deamortized scheduler moves two extra
//! jobs per request instead (bounded max) at a slightly higher mean.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_core::{JobId, SingleMachineReallocator, Window};
use realloc_reservation::{DeamortizedScheduler, TrimmedScheduler};
use realloc_sim::report::{f2, Table};
use realloc_sim::stats::Summary;

/// Nets a move list per job (a drain's delete+reinsert pair is one
/// reallocation of that job) and counts the reallocations.
fn netted_reallocations(moves: &[realloc_core::SlotMove]) -> u64 {
    let outcome = realloc_core::RequestOutcome {
        moves: moves.iter().map(|m| m.on_machine(0)).collect(),
    };
    outcome.netted().reallocation_cost()
}

/// Growth-then-shrink request pattern over aligned span-≥2 windows, kept
/// 4-dense by a laminar budget (like the churn generator's).
fn drive<S: SingleMachineReallocator>(sched: &mut S, seed: u64) -> (Vec<u64>, usize) {
    const GAMMA: u64 = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut costs = Vec::new();
    let mut active: Vec<(JobId, Window)> = Vec::new();
    let mut counts: std::collections::HashMap<Window, u64> = std::collections::HashMap::new();
    let mut next = 0u64;
    let horizon = 1u64 << 14;
    let ancestors = |mut w: Window| {
        let mut out = vec![w];
        while w.span() < horizon {
            w = w.aligned_parent().unwrap();
            out.push(w);
        }
        out
    };
    let op = |sched: &mut S,
              grow: bool,
              active: &mut Vec<(JobId, Window)>,
              counts: &mut std::collections::HashMap<Window, u64>,
              rng: &mut StdRng,
              next: &mut u64|
     -> Option<u64> {
        if grow || active.is_empty() {
            for _ in 0..32 {
                let span = [8u64, 32, 128, 512][rng.gen_range(0..4usize)];
                let start = rng.gen_range(0..(horizon / span)) * span;
                let w = Window::with_span(start, span);
                if ancestors(w)
                    .iter()
                    .any(|a| counts.get(a).copied().unwrap_or(0) >= a.span() / GAMMA)
                {
                    continue;
                }
                for a in ancestors(w) {
                    *counts.entry(a).or_insert(0) += 1;
                }
                let id = JobId(*next);
                *next += 1;
                let moves = sched.insert(id, w).unwrap();
                active.push((id, w));
                return Some(netted_reallocations(&moves));
            }
            None
        } else {
            let idx = rng.gen_range(0..active.len());
            let (id, w) = active.swap_remove(idx);
            for a in ancestors(w) {
                *counts.get_mut(&a).unwrap() -= 1;
            }
            let moves = sched.delete(id).unwrap();
            Some(netted_reallocations(&moves))
        }
    };
    // Grow to ~2000 jobs (many n* doublings), then shrink back (halvings).
    for _ in 0..2000 {
        if let Some(c) = op(sched, true, &mut active, &mut counts, &mut rng, &mut next) {
            costs.push(c);
        }
    }
    let shrink_to = 50;
    while active.len() > shrink_to {
        if let Some(c) = op(sched, false, &mut active, &mut counts, &mut rng, &mut next) {
            costs.push(c);
        }
    }
    (costs, active.len())
}

fn main() {
    let mut t = Table::new(
        "E11: amortized rebuilds vs deamortized even/odd drains (γ = 4)",
        &[
            "scheduler",
            "requests",
            "mean realloc",
            "p99",
            "max",
            "events",
        ],
    );
    let mut amortized = TrimmedScheduler::new(4);
    let (costs, _) = drive(&mut amortized, 3);
    let s = Summary::of(costs.iter().copied());
    t.row(vec![
        "amortized (rebuild)".into(),
        s.count.to_string(),
        f2(s.mean),
        s.p99.to_string(),
        s.max.to_string(),
        format!("{} rebuilds", amortized.rebuilds()),
    ]);

    let mut deamortized = DeamortizedScheduler::new(4);
    let (costs, _) = drive(&mut deamortized, 3);
    let s = Summary::of(costs.iter().copied());
    t.row(vec![
        "deamortized (even/odd)".into(),
        s.count.to_string(),
        f2(s.mean),
        s.p99.to_string(),
        s.max.to_string(),
        format!("{} flips", deamortized.flips()),
    ]);
    t.print();
    println!("(the paper's point: same asymptotic total, but the deamortized");
    println!(" scheme caps the worst single request — no Θ(n) rebuild spikes)");
}
