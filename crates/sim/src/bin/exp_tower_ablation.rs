//! E13 — tower ablation (design-choice experiment).
//!
//! The paper fixes the level thresholds at `L₁ = 2⁵`, `L_{ℓ+1} = 2^{L_ℓ/4}`
//! "preferring clarity of exposition" (§7). This ablation runs the same
//! churn under different ladders:
//!
//! * a single giant base level (pure Lemma 4 cascading, no reservations),
//! * the paper tower,
//! * finer custom ladders (more levels → more reservation machinery, more
//!   cross-level displacement chances, less per-level slack),
//!
//! reporting cost and the state footprint. The paper-tower sweet spot —
//! few levels, tiny costs — is visible directly.

use realloc_core::Tower;
use realloc_multi::ReallocatingScheduler;
use realloc_reservation::ReservationScheduler;
use realloc_sim::harness::churn_seq;
use realloc_sim::report::{f2, Table};
use realloc_sim::runner::{run, RunOptions};
use realloc_sim::stats::Summary;

fn main() {
    let seq = churn_seq(1, 8, 400, 1 << 10, false, 6000, 71);
    let mut t = Table::new(
        "E13: tower ablation (same churn, Δ = 1024, n ≈ 400, γ = 8)",
        &[
            "tower L1,L2,…",
            "levels used",
            "mean",
            "p99",
            "max",
            "window states",
        ],
    );
    let towers: Vec<(String, Tower)> = vec![
        ("1024 (all base)".into(), Tower::custom(vec![1024])),
        ("32,256 (paper)".into(), Tower::paper()),
        ("16,256".into(), Tower::custom(vec![16, 256])),
        ("8,64,1024".into(), Tower::custom(vec![8, 64, 1024])),
        ("4,16,64,256".into(), Tower::custom(vec![4, 16, 64, 256])),
    ];
    for (name, tower) in towers {
        let levels_used = tower.levels_for(1 << 10);
        let mut sched = ReallocatingScheduler::from_factory(1, || {
            ReservationScheduler::with_tower(tower.clone())
        });
        let report = run(
            &mut sched,
            &seq,
            RunOptions {
                validate_each_step: false,
                fail_fast: false,
            },
        )
        .unwrap();
        let sum = Summary::of(report.meter.samples().iter().map(|s| s.reallocations));
        t.row(vec![
            name,
            levels_used.to_string(),
            f2(sum.mean),
            sum.p99.to_string(),
            sum.max.to_string(),
            sched.backend(0).window_states().to_string(),
        ]);
    }
    t.print();
    println!("(single-level = Lemma 4 economics: zero reservation overhead but");
    println!(" log-depth worst cases; deep ladders pay state and cascade overhead;");
    println!(" the paper tower keeps both tiny)");
}
