//! E9 — crash-durability matrix over the on-disk store.
//!
//! Runs `realloc_store::run_crash_matrix`: a reference workload (batch
//! flushes, an online resize, periodic checkpoints) executed against the
//! fault-injecting I/O layer, killed at **every** mutating I/O operation
//! in each of three power-loss models, then recovered from the surviving
//! bytes. The acceptance bar, per crash point:
//!
//! * recovery never panics — it yields a valid engine or a located error
//!   (the latter only before the store's first durable write);
//! * the recovered state is byte-identical (journal text, state digest,
//!   placements) to some acknowledged-or-later point of the reference
//!   run — **no acknowledged flush is ever lost**;
//! * the recovered engine passes `validate()` and accepts new durable
//!   writes (the reopened store resumes the segment sequence).
//!
//! `--quick` caps the sampled crash points for the CI smoke lane; the
//! default sweeps every point.

use realloc_sim::report::Table;
use realloc_store::{run_crash_matrix, CrashMatrixConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut config = CrashMatrixConfig::default();
    if quick {
        config.ops = 6;
        config.checkpoint_every = 2;
        config.resize_after = Some(3);
        config.max_points = 24;
    }
    let report = match run_crash_matrix(&config) {
        Ok(report) => report,
        Err(violation) => {
            eprintln!("CRASH MATRIX VIOLATION: {violation}");
            std::process::exit(1);
        }
    };
    let mut table = Table::new(
        "E9: kill-at-any-point recovery (3 power-loss models x every mutating I/O op)",
        &["metric", "value"],
    );
    table
        .row(vec!["crash points".into(), report.crash_points.to_string()])
        .row(vec![
            "runs (points x modes)".into(),
            report.runs.to_string(),
        ])
        .row(vec![
            "recovered to an acked state".into(),
            report.recovered.to_string(),
        ])
        .row(vec![
            "graceful pre-durability errors".into(),
            report.graceful_errors.to_string(),
        ])
        .row(vec![
            "torn tails truncated".into(),
            report.torn_tails_truncated.to_string(),
        ])
        .row(vec![
            "orphan-checkpoint segments materialized".into(),
            report.segments_materialized.to_string(),
        ])
        .row(vec![
            "reference states (ack ladder)".into(),
            report.baselines.to_string(),
        ]);
    table.print();
    println!();
    println!(
        "PASS: all {} crash/recovery runs preserved every acknowledged flush.",
        report.runs
    );
}
