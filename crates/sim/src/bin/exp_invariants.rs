//! E9 — Lemma 8 headroom.
//!
//! Over density-certified churn at several `γ`, probes after every request
//! the minimum Lemma 8 slack: (sum of fulfilled quotas of a populated
//! window) − (its job count). The paper proves this stays ≥ 1 at `γ ≥ 8`;
//! the experiment records the minimum observed.

use realloc_core::{Request, SingleMachineReallocator};
use realloc_reservation::ReservationScheduler;
use realloc_sim::report::Table;
use realloc_workloads::{ChurnConfig, ChurnGenerator};

fn main() {
    let mut t = Table::new(
        "E9: Lemma 8 headroom (min over all populated windows, all requests)",
        &["gamma", "requests", "min headroom", "invariants"],
    );
    for &gamma in &[4u64, 8, 16, 32] {
        let mut g = ChurnGenerator::new(
            ChurnConfig {
                machines: 1,
                gamma,
                horizon: 1 << 12,
                spans: vec![2, 8, 64, 256, 1024],
                target_active: 96,
                insert_bias: 0.6,
                unaligned: false,
            },
            5 + gamma,
        );
        let mut sched = ReservationScheduler::new();
        let mut min_headroom: Option<i64> = None;
        let mut requests = 0u64;
        let mut ok = true;
        for _ in 0..3000 {
            let Some(r) = g.next_request() else { break };
            let res = match r {
                Request::Insert { id, window } => sched.insert(id, window).map(|_| ()),
                Request::Delete { id } => sched.delete(id).map(|_| ()),
            };
            if res.is_err() {
                ok = false;
                break;
            }
            requests += 1;
            if let Some(h) = sched.min_lemma8_headroom() {
                min_headroom = Some(min_headroom.map_or(h, |m| m.min(h)));
            }
        }
        if sched.check_invariants().is_err() {
            ok = false;
        }
        t.row(vec![
            gamma.to_string(),
            requests.to_string(),
            min_headroom.map_or("-".into(), |h| h.to_string()),
            if ok { "hold" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t.print();
    println!("(paper: headroom ≥ 1 guaranteed at γ ≥ 8 for aligned instances)");
}
