//! E8 — Observation 7: fulfillment is history independent.
//!
//! Builds the same active job multiset through many different request
//! orders (including transient decoy jobs that are inserted and deleted
//! along the way) and asserts that the fulfillment profile — which
//! reservations are fulfilled, per window per interval — is identical in
//! every run, even though the physical job placements differ.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use realloc_core::{JobId, SingleMachineReallocator, Window};
use realloc_reservation::ReservationScheduler;
use realloc_sim::report::Table;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // Target multiset: jobs across three levels of the paper tower.
    let jobs: Vec<(u64, Window)> = vec![
        (1, Window::new(0, 64)),
        (2, Window::new(0, 64)),
        (3, Window::new(64, 128)),
        (4, Window::new(0, 256)),
        (5, Window::new(0, 8)),
        (6, Window::new(8, 16)),
        (7, Window::new(0, 512)),
        (8, Window::new(512, 1024)),
        (9, Window::new(0, 2048)),
    ];

    let mut profiles = Vec::new();
    let mut placements = Vec::new();
    let orders = 24;
    for _ in 0..orders {
        let mut order = jobs.clone();
        order.shuffle(&mut rng);
        let mut sched = ReservationScheduler::new();
        let mut decoy = 1_000u64;
        for &(id, w) in &order {
            // Random transient decoys exercise different code paths
            // between the "real" inserts.
            if rng.gen_bool(0.5) {
                let span = [4u64, 32, 128][rng.gen_range(0..3usize)];
                let start = rng.gen_range(0..(2048 / span)) * span;
                if sched
                    .insert(JobId(decoy), Window::with_span(start, span))
                    .is_ok()
                {
                    sched.delete(JobId(decoy)).unwrap();
                }
                decoy += 1;
            }
            sched.insert(JobId(id), w).unwrap();
        }
        sched.check_invariants().unwrap();
        profiles.push(sched.fulfillment_profile());
        let mut assign = sched.assignments();
        assign.sort();
        placements.push(assign);
    }

    let all_profiles_equal = profiles.windows(2).all(|p| p[0] == p[1]);
    let placements_vary = placements.windows(2).any(|p| p[0] != p[1]);

    let mut t = Table::new(
        "E8: Observation 7 — history independence of fulfillment",
        &[
            "orders tested",
            "profile entries",
            "profiles identical",
            "placements vary",
        ],
    );
    t.row(vec![
        orders.to_string(),
        profiles[0].len().to_string(),
        if all_profiles_equal { "yes" } else { "NO" }.to_string(),
        if placements_vary {
            "yes (as the paper says)"
        } else {
            "no"
        }
        .to_string(),
    ]);
    t.print();
    assert!(all_profiles_equal, "Observation 7 violated");
}
