//! E10 — γ-sensitivity ablation (paper §7 open question: "In this paper,
//! γ is very large … How much can this constant be improved?").
//!
//! Sweeps the workload density γ and measures how often the Theorem-1
//! scheduler hits its underallocation precondition (CapacityExhausted) and
//! what the costs look like when it survives. The paper's proof needs a
//! very large constant; the experiment shows where the implementation
//! actually starts failing.

use realloc_sim::harness::{churn_seq, theorem_one};
use realloc_sim::report::{f2, Table};
use realloc_sim::runner::{run, RunOptions};

fn main() {
    let mut t = Table::new(
        "E10: empirical γ threshold (m = 1, unaligned windows, n ≈ 300)",
        &[
            "gamma",
            "requests",
            "declined",
            "decline %",
            "mean realloc",
            "max realloc",
        ],
    );
    for &gamma in &[1u64, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
        let seq = churn_seq(1, gamma, 300, 1 << 12, true, 6000, 17 + gamma);
        let mut sched = theorem_one(1, gamma.max(2));
        let report = run(
            &mut sched,
            &seq,
            RunOptions {
                validate_each_step: false,
                fail_fast: false,
            },
        )
        .unwrap();
        let declined = report.failures.len();
        let total = report.executed + declined;
        t.row(vec![
            gamma.to_string(),
            total.to_string(),
            declined.to_string(),
            f2(100.0 * declined as f64 / total.max(1) as f64),
            f2(report.meter.mean_reallocations()),
            report.meter.max_reallocations().to_string(),
        ]);
    }
    t.print();
    println!("(the paper's analysis needs γ in the hundreds; random churn at");
    println!(" γ = 1 density almost never builds the tight packings that");
    println!(" defeat the scheduler — the adversarial fill test below does)\n");

    // Adversarial fill: pack one window until the scheduler first declines.
    // The achieved fill fraction f corresponds to an empirical γ ≈ 1/f.
    let mut t2 = Table::new(
        "E10b: single-window fill until first decline (empirical γ threshold)",
        &[
            "window span",
            "level",
            "jobs placed",
            "fill",
            "empirical gamma",
        ],
    );
    for &span in &[32u64, 64, 256, 1024, 4096] {
        use realloc_core::{JobId, SingleMachineReallocator, Window};
        let mut s = realloc_reservation::ReservationScheduler::new();
        let mut placed = 0u64;
        for i in 0..span {
            match s.insert(JobId(i), Window::with_span(0, span)) {
                Ok(_) => placed += 1,
                Err(_) => break,
            }
        }
        let level = s.tower().level_of(span);
        t2.row(vec![
            span.to_string(),
            level.to_string(),
            placed.to_string(),
            f2(placed as f64 / span as f64),
            f2(span as f64 / placed.max(1) as f64),
        ]);
    }
    t2.print();
}
