//! E13 — engine throughput: replays a churn workload through the sharded
//! batching service (`realloc-engine`) and reports requests/sec plus
//! per-shard cost telemetry.
//!
//! ```text
//! exp_engine_throughput [--shards N] [--requests N] [--batch N]
//!                       [--machines N] [--backend KIND] [--gamma G]
//!                       [--parallel] [--sweep] [--seed S]
//! ```
//!
//! Defaults replay a 100 000-request churn stream (γ = 8, unaligned
//! windows) across 4 shards of 1 machine each, batched 256 requests per
//! flush, on the Theorem-1 backend. `--sweep` additionally scans shard
//! counts 1–16 to show the scaling curve.

use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_sim::harness::{churn_seq, engine_config};
use realloc_sim::report::{f2, Table};
use std::time::Instant;

struct Args {
    shards: usize,
    requests: usize,
    batch: usize,
    machines: usize,
    backend: Option<String>,
    gamma: u64,
    parallel: bool,
    sweep: bool,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: 4,
        requests: 100_000,
        batch: 256,
        machines: 1,
        backend: None,
        gamma: 8,
        parallel: false,
        sweep: false,
        seed: 13,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--shards" => args.shards = num("--shards")? as usize,
            "--requests" => args.requests = num("--requests")? as usize,
            "--batch" => args.batch = num("--batch")? as usize,
            "--machines" => args.machines = num("--machines")? as usize,
            "--gamma" => args.gamma = num("--gamma")?,
            "--backend" => args.backend = Some(it.next().ok_or("--backend needs a value")?),
            "--parallel" => args.parallel = true,
            "--sweep" => args.sweep = true,
            "--seed" => args.seed = num("--seed")?,
            "--help" | "-h" => {
                println!(
                    "usage: exp_engine_throughput [--shards N] [--requests N] \
                     [--batch N] [--machines N] [--backend KIND] [--gamma G] \
                     [--parallel] [--sweep] [--seed S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.shards == 0 || args.batch == 0 || args.machines == 0 {
        return Err("--shards/--batch/--machines must be >= 1".into());
    }
    Ok(args)
}

fn replay(cfg: EngineConfig, seq: &realloc_core::RequestSeq, batch: usize) -> (Engine, f64) {
    let mut engine = Engine::new(cfg);
    let start = Instant::now();
    engine.ingest(seq, batch);
    let secs = start.elapsed().as_secs_f64();
    (engine, secs)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_engine_throughput: {e}");
            std::process::exit(2);
        }
    };
    let backend = match &args.backend {
        Some(raw) => match BackendKind::parse(raw) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("exp_engine_throughput: {e}");
                std::process::exit(2);
            }
        },
        None => BackendKind::TheoremOne { gamma: args.gamma },
    };

    // One shared workload: the engine's router partitions it by job id,
    // so the same stream is comparable across shard counts. Machine
    // budget scales with the shard count × machines per shard.
    let seq = churn_seq(
        args.shards * args.machines,
        args.gamma,
        64 * args.shards * args.machines,
        1 << 12,
        true,
        args.requests,
        args.seed,
    );
    println!(
        "workload: {} requests (peak {} active, max span {}), backend {}, \
         {} shard(s) x {} machine(s), batch {}{}\n",
        seq.len(),
        seq.peak_active(),
        seq.max_span(),
        backend,
        args.shards,
        args.machines,
        args.batch,
        if args.parallel {
            ", parallel flush"
        } else {
            ""
        },
    );

    let cfg = engine_config(args.shards, args.machines, backend, args.parallel);
    let (engine, secs) = replay(cfg, &seq, args.batch);
    let m = engine.metrics();

    let mut t = Table::new(
        "E13: per-shard telemetry",
        &[
            "shard",
            "requests",
            "failed",
            "active",
            "realloc",
            "migrations",
            "mean",
            "p50",
            "p95",
            "p99",
            "max",
        ],
    );
    for s in &m.shards {
        t.row(vec![
            s.shard.to_string(),
            s.requests.to_string(),
            s.failed.to_string(),
            s.active_jobs.to_string(),
            s.reallocations.to_string(),
            s.migrations.to_string(),
            f2(s.cost.mean),
            s.cost.p50.to_string(),
            s.cost.p95.to_string(),
            s.cost.p99.to_string(),
            s.cost.max.to_string(),
        ]);
    }
    t.row(vec![
        "all".to_string(),
        m.requests.to_string(),
        m.failed.to_string(),
        m.active_jobs.to_string(),
        m.reallocations.to_string(),
        m.migrations.to_string(),
        f2(m.cost.mean),
        m.cost.p50.to_string(),
        m.cost.p95.to_string(),
        m.cost.p99.to_string(),
        m.cost.max.to_string(),
    ]);
    t.print();
    println!(
        "throughput: {:.0} requests/sec ({} requests in {:.3}s, {} batches, \
         shard imbalance {:.2})\n",
        m.requests as f64 / secs.max(1e-9),
        m.requests,
        secs,
        engine.batches(),
        m.imbalance(),
    );

    if args.sweep {
        let mut t = Table::new(
            "E13b: shard-count sweep (same workload, same batch size)",
            &[
                "shards",
                "requests/sec",
                "failed",
                "mean realloc",
                "p99 realloc",
                "imbalance",
            ],
        );
        for shards in [1usize, 2, 4, 8, 16] {
            let cfg = engine_config(shards, args.machines, backend, args.parallel);
            let (engine, secs) = replay(cfg, &seq, args.batch);
            let m = engine.metrics();
            t.row(vec![
                shards.to_string(),
                format!("{:.0}", m.requests as f64 / secs.max(1e-9)),
                m.failed.to_string(),
                f2(m.cost.mean),
                m.cost.p99.to_string(),
                f2(m.imbalance()),
            ]);
        }
        t.print();
    }
}
