//! E13 — engine throughput: replays a churn workload through the sharded
//! batching service (`realloc-engine`) and reports requests/sec plus
//! per-shard cost telemetry.
//!
//! ```text
//! exp_engine_throughput [--shards N] [--requests N] [--batch N]
//!                       [--machines N] [--backend KIND] [--gamma G]
//!                       [--parallel] [--sweep] [--seed S]
//!                       [--no-telemetry] [--overhead-check]
//!                       [--tolerance-pct F] [--trials N]
//! ```
//!
//! Defaults replay a 100 000-request churn stream (γ = 8, unaligned
//! windows) across 4 shards of 1 machine each, batched 256 requests per
//! flush, on the Theorem-1 backend, with a telemetry registry attached
//! (disable with `--no-telemetry`). `--sweep` additionally scans shard
//! counts 1–16, emitting one **JSON line per configuration** — machine-
//! readable, with registry-derived flush/route latency percentiles
//! alongside the throughput numbers.
//!
//! `--overhead-check` is the CI guard for the ingest hot path: it runs
//! `--trials` interleaved instrumented/uninstrumented pairs (mode order
//! alternating, on-CPU time from `/proc/self/schedstat`), takes the
//! cleanest (minimum) per-pair ratio — host noise only ever inflates a
//! pair, while a real regression inflates every pair — and exits
//! non-zero when that ratio exceeds `--tolerance-pct` (default 2.0).

use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_sim::harness::{churn_seq, engine_config};
use realloc_sim::report::{f2, Table};
use realloc_telemetry::Telemetry;
use std::time::Instant;

struct Args {
    shards: usize,
    requests: usize,
    batch: usize,
    machines: usize,
    backend: Option<String>,
    gamma: u64,
    parallel: bool,
    sweep: bool,
    seed: u64,
    telemetry: bool,
    overhead_check: bool,
    tolerance_pct: f64,
    trials: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shards: 4,
        requests: 100_000,
        batch: 256,
        machines: 1,
        backend: None,
        gamma: 8,
        parallel: false,
        sweep: false,
        seed: 13,
        telemetry: true,
        overhead_check: false,
        tolerance_pct: 2.0,
        trials: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match flag.as_str() {
            "--shards" => args.shards = num("--shards")? as usize,
            "--requests" => args.requests = num("--requests")? as usize,
            "--batch" => args.batch = num("--batch")? as usize,
            "--machines" => args.machines = num("--machines")? as usize,
            "--gamma" => args.gamma = num("--gamma")?,
            "--backend" => args.backend = Some(it.next().ok_or("--backend needs a value")?),
            "--parallel" => args.parallel = true,
            "--sweep" => args.sweep = true,
            "--seed" => args.seed = num("--seed")?,
            "--no-telemetry" => args.telemetry = false,
            "--overhead-check" => args.overhead_check = true,
            "--tolerance-pct" => {
                args.tolerance_pct = it
                    .next()
                    .ok_or("--tolerance-pct needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance-pct: {e}"))?;
            }
            "--trials" => args.trials = num("--trials")? as usize,
            "--help" | "-h" => {
                println!(
                    "usage: exp_engine_throughput [--shards N] [--requests N] \
                     [--batch N] [--machines N] [--backend KIND] [--gamma G] \
                     [--parallel] [--sweep] [--seed S] [--no-telemetry] \
                     [--overhead-check] [--tolerance-pct F] [--trials N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.shards == 0 || args.batch == 0 || args.machines == 0 || args.trials == 0 {
        return Err("--shards/--batch/--machines/--trials must be >= 1".into());
    }
    Ok(args)
}

/// Replays `seq` through a fresh engine; `telemetry` (when enabled) is
/// attached *before* ingest so the registry sees the whole run.
fn replay(
    cfg: EngineConfig,
    seq: &realloc_core::RequestSeq,
    batch: usize,
    telemetry: &Telemetry,
) -> (Engine, f64) {
    let mut engine = Engine::new(cfg);
    engine.attach_telemetry(telemetry);
    let start = Instant::now();
    engine.ingest(seq, batch);
    let secs = start.elapsed().as_secs_f64();
    (engine, secs)
}

/// One `--sweep` configuration as a JSON line: throughput plus the
/// flush-phase and routing latency percentiles the registry observed.
fn json_line(shards: usize, secs: f64, engine: &Engine, tel: &Telemetry) -> String {
    let m = engine.metrics();
    let q = |name: &str, q: f64| tel.quantile(name, q).unwrap_or(0);
    format!(
        concat!(
            "{{\"shards\":{},\"requests\":{},\"failed\":{},\"secs\":{:.6},",
            "\"requests_per_sec\":{:.0},\"batches\":{},\"realloc_mean\":{:.4},",
            "\"realloc_p99\":{},\"imbalance\":{:.4},",
            "\"flush_p50_nanos\":{},\"flush_p95_nanos\":{},\"flush_p99_nanos\":{},",
            "\"route_p50_nanos\":{},\"route_p99_nanos\":{},",
            "\"barrier_p99_nanos\":{},\"journal_p99_nanos\":{}}}"
        ),
        shards,
        m.requests,
        m.failed,
        secs,
        m.requests as f64 / secs.max(1e-9),
        engine.batches(),
        m.cost.mean,
        m.cost.p99,
        m.imbalance(),
        q("engine_flush_total_nanos", 0.5),
        q("engine_flush_total_nanos", 0.95),
        q("engine_flush_total_nanos", 0.99),
        q("engine_route_nanos", 0.5),
        q("engine_route_nanos", 0.99),
        q("engine_flush_barrier_nanos", 0.99),
        q("engine_flush_journal_nanos", 0.99),
    )
}

/// Nanoseconds this thread has actually spent **on-CPU**, from
/// `/proc/self/schedstat` (first field); `None` off-Linux. Unlike wall
/// time this does not advance while the process is preempted, and unlike
/// `/proc/self/stat`'s utime it has nanosecond (not 10 ms tick)
/// resolution — exactly what a sub-second A/B timing needs on a shared
/// host. Thread-scoped, which is what we want: the overhead check runs
/// the non-`--parallel` ingest path on this thread.
fn cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    stat.split_whitespace().next()?.parse().ok()
}

/// Measured telemetry overhead, as `(best, median)` percentages over
/// `--trials` interleaved pairs (one untimed warmup first). Each pair
/// runs the workload in both modes back-to-back — alternating which
/// mode goes first so monotone drift (thermal throttling, a co-tenant
/// ramping up) cancels — and its ratio uses on-CPU nanoseconds when
/// `/proc` offers them, wall time otherwise.
///
/// The *gate* uses **best** (the minimum pair ratio): on a shared host,
/// contention noise of several percent is routine and strictly
/// additive-ish per run, so the cleanest pair is the most faithful
/// estimate of the true overhead — and a real hot-path regression
/// inflates every pair, so the minimum still catches it. The median is
/// reported alongside for context.
fn overhead_pct(args: &Args, cfg: &EngineConfig, seq: &realloc_core::RequestSeq) -> (f64, f64) {
    let _ = replay(cfg.clone(), seq, args.batch, &realloc_telemetry::disabled());
    let mut ratios = Vec::with_capacity(args.trials);
    for trial in 0..args.trials {
        let run = |enabled: bool| -> (f64, f64) {
            let c0 = cpu_ticks();
            let tel = if enabled {
                Telemetry::new()
            } else {
                realloc_telemetry::disabled()
            };
            let (_, wall) = replay(cfg.clone(), seq, args.batch, &tel);
            let cpu = cpu_ticks().zip(c0).map(|(c1, c0)| (c1 - c0) as f64);
            (wall, cpu.unwrap_or(wall))
        };
        let instrumented_first = trial % 2 == 1;
        let first = run(instrumented_first);
        let second = run(!instrumented_first);
        let (plain, instrumented) = if instrumented_first {
            (second, first)
        } else {
            (first, second)
        };
        ratios.push(instrumented.1 / plain.1.max(1e-9));
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let best = (ratios[0] - 1.0) * 100.0;
    let mid = ratios.len() / 2;
    let median = if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    };
    (best, (median - 1.0) * 100.0)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("exp_engine_throughput: {e}");
            std::process::exit(2);
        }
    };
    let backend = match &args.backend {
        Some(raw) => match BackendKind::parse(raw) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("exp_engine_throughput: {e}");
                std::process::exit(2);
            }
        },
        None => BackendKind::TheoremOne { gamma: args.gamma },
    };

    // One shared workload: the engine's router partitions it by job id,
    // so the same stream is comparable across shard counts. Machine
    // budget scales with the shard count × machines per shard.
    let seq = churn_seq(
        args.shards * args.machines,
        args.gamma,
        64 * args.shards * args.machines,
        1 << 12,
        true,
        args.requests,
        args.seed,
    );
    println!(
        "workload: {} requests (peak {} active, max span {}), backend {}, \
         {} shard(s) x {} machine(s), batch {}{}\n",
        seq.len(),
        seq.peak_active(),
        seq.max_span(),
        backend,
        args.shards,
        args.machines,
        args.batch,
        if args.parallel {
            ", parallel flush"
        } else {
            ""
        },
    );

    let cfg = engine_config(args.shards, args.machines, backend, args.parallel);

    if args.overhead_check {
        let (best, median) = overhead_pct(&args, &cfg, &seq);
        println!(
            "overhead check: instrumented vs uninstrumented ingest {best:+.2}% \
             (cleanest of {} interleaved pairs; median {median:+.2}%, \
             tolerance {:.2}%)",
            args.trials, args.tolerance_pct
        );
        if best > args.tolerance_pct {
            eprintln!("exp_engine_throughput: telemetry overhead exceeds tolerance");
            std::process::exit(1);
        }
        return;
    }

    let tel = if args.telemetry {
        Telemetry::new()
    } else {
        realloc_telemetry::disabled()
    };
    let (engine, secs) = replay(cfg, &seq, args.batch, &tel);
    let m = engine.metrics();

    let mut t = Table::new(
        "E13: per-shard telemetry",
        &[
            "shard",
            "requests",
            "failed",
            "active",
            "realloc",
            "migrations",
            "mean",
            "p50",
            "p95",
            "p99",
            "max",
        ],
    );
    for s in &m.shards {
        t.row(vec![
            s.shard.to_string(),
            s.requests.to_string(),
            s.failed.to_string(),
            s.active_jobs.to_string(),
            s.reallocations.to_string(),
            s.migrations.to_string(),
            f2(s.cost.mean),
            s.cost.p50.to_string(),
            s.cost.p95.to_string(),
            s.cost.p99.to_string(),
            s.cost.max.to_string(),
        ]);
    }
    t.row(vec![
        "all".to_string(),
        m.requests.to_string(),
        m.failed.to_string(),
        m.active_jobs.to_string(),
        m.reallocations.to_string(),
        m.migrations.to_string(),
        f2(m.cost.mean),
        m.cost.p50.to_string(),
        m.cost.p95.to_string(),
        m.cost.p99.to_string(),
        m.cost.max.to_string(),
    ]);
    t.print();
    println!(
        "throughput: {:.0} requests/sec ({} requests in {:.3}s, {} batches, \
         shard imbalance {:.2})\n",
        m.requests as f64 / secs.max(1e-9),
        m.requests,
        secs,
        engine.batches(),
        m.imbalance(),
    );
    if args.telemetry {
        println!(
            "flush p50/p95/p99: {}/{}/{} ns (queue-wait p99 {} ns, route p99 {} ns)\n",
            tel.quantile("engine_flush_total_nanos", 0.5).unwrap_or(0),
            tel.quantile("engine_flush_total_nanos", 0.95).unwrap_or(0),
            tel.quantile("engine_flush_total_nanos", 0.99).unwrap_or(0),
            tel.quantile("engine_flush_queue_wait_nanos", 0.99)
                .unwrap_or(0),
            tel.quantile("engine_route_nanos", 0.99).unwrap_or(0),
        );
    }

    if args.sweep {
        // One JSON object per configuration, one per line: pipe into a
        // file and every line parses independently.
        println!("E13b: shard-count sweep (same workload, same batch size), JSON lines:");
        for shards in [1usize, 2, 4, 8, 16] {
            let cfg = engine_config(shards, args.machines, backend, args.parallel);
            let tel = if args.telemetry {
                Telemetry::new()
            } else {
                realloc_telemetry::disabled()
            };
            let (engine, secs) = replay(cfg, &seq, args.batch, &tel);
            println!("{}", json_line(shards, secs, &engine, &tel));
        }
    }
}
