//! E4 — brittleness of the classical policies.
//!
//! (a) Naive pecking order (Lemma 4) pays `Θ(log Δ)` per request while the
//!     reservation scheduler stays flat — measured as the worst cascade
//!     over a span sweep.
//! (b) EDF and LLF full-recompute pay `Θ(n)` on the Lemma 12 staircase
//!     toggle even though the instance stays feasible throughout.

use realloc_baselines::{EdfRescheduler, LlfRescheduler};
use realloc_sim::harness::{naive_multi, reservation_multi};
use realloc_sim::report::{f2, Table};
use realloc_sim::runner::{run, RunOptions};
use realloc_sim::stats::{slope, Summary};
use realloc_workloads::lemma12_toggle;

fn main() {
    // --- (a) naive grows with log Δ ------------------------------------
    let mut t1 = Table::new(
        "E4a: worst-case cascade vs n = Δ − 1 (saturated nest; naive = Θ(log n), reservation = O(log* n))",
        &["Δ = 2^k", "n", "naive max", "reservation max"],
    );
    let mut naive_pts = Vec::new();
    for exp in [4u32, 6, 8, 10, 12] {
        let span = 1u64 << exp;
        // Saturated nest: 2^{i−1} jobs with window [0, 2^i) for every
        // i ≤ k, inserted smallest-first so they pack leftward. Every
        // prefix window [0, 2^i) is then exactly full, and a span-1 probe
        // at slot 0 forces the naive scheduler through a full-depth
        // cascade — one reallocation per distinct span, meeting the
        // Lemma 4 bound tightly.
        let mut seq = realloc_core::RequestSeq::new();
        let mut id = 0u64;
        let mut s = 2u64;
        while s <= span {
            for _ in 0..s / 2 {
                seq.insert(id, realloc_core::Window::with_span(0, s));
                id += 1;
            }
            s *= 2;
        }
        seq.insert(1_000_000, realloc_core::Window::new(0, 1));
        let mut naive = naive_multi(1);
        let naive_max = run(&mut naive, &seq, RunOptions::default())
            .unwrap()
            .meter
            .max_reallocations();
        // The reservation scheduler needs underallocation; the saturated
        // nest has none (γ = 1), so it is expected to decline — exactly
        // the trade-off the paper states: Lemma 4 tolerates any feasible
        // aligned sequence at Θ(log) cost, Theorem 1 buys O(log*) by
        // assuming slack (and Lemma 12 shows some slack is necessary).
        let mut resv = reservation_multi(1);
        let resv_report = run(
            &mut resv,
            &seq,
            RunOptions {
                validate_each_step: false,
                fail_fast: false,
            },
        )
        .unwrap();
        let resv_cell = if resv_report.failures.is_empty() {
            resv_report.meter.max_reallocations().to_string()
        } else {
            "declines (γ=1, needs slack)".to_string()
        };
        naive_pts.push((exp as f64, naive_max as f64));
        t1.row(vec![
            format!("2^{exp}"),
            (span - 1).to_string(),
            naive_max.to_string(),
            resv_cell,
        ]);
    }
    t1.print();
    println!(
        "naive max-cascade slope vs log2(Δ): {} (≈ 1 means Θ(log n) = Θ(log Δ))",
        f2(slope(&naive_pts))
    );
    println!("(reservation flat-cost behaviour under slack is measured in E2a/E2b)\n");

    // --- (b) EDF/LLF pay Θ(n) on the toggle ----------------------------
    let mut t2 = Table::new(
        "E4b: EDF/LLF per-toggle reallocations on the Lemma 12 staircase",
        &["eta (n)", "sched", "mean per request", "p99", "max"],
    );
    for &eta in &[64u64, 256, 1024] {
        let seq = lemma12_toggle(eta, 20);
        for which in ["edf", "llf"] {
            let meter = if which == "edf" {
                let mut s = EdfRescheduler::new(1);
                run(&mut s, &seq, RunOptions::default()).unwrap().meter
            } else {
                let mut s = LlfRescheduler::new(1);
                run(&mut s, &seq, RunOptions::default()).unwrap().meter
            };
            // Skip the staircase build-up; measure the toggle phase.
            let toggles: Vec<u64> = meter
                .samples()
                .iter()
                .skip(eta as usize)
                .map(|s| s.reallocations)
                .collect();
            let sum = Summary::of(toggles);
            t2.row(vec![
                eta.to_string(),
                which.to_string(),
                f2(sum.mean),
                sum.p99.to_string(),
                sum.max.to_string(),
            ]);
        }
    }
    t2.print();
    println!("(mean per request ≈ η/2 confirms the Θ(n)-per-toggle cascade)");
}
