//! Small statistics helpers for cost distributions.

/// Five-number-ish summary of a cost distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarizes a sample set (empty input gives zeros).
    pub fn of(samples: impl IntoIterator<Item = u64>) -> Summary {
        let mut v: Vec<u64> = samples.into_iter().collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_unstable();
        let count = v.len();
        let pct = |p: f64| v[((count as f64 - 1.0) * p).round() as usize];
        Summary {
            count,
            mean: v.iter().sum::<u64>() as f64 / count as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: v[count - 1],
        }
    }
}

/// Least-squares slope of `y` against `x` — used to classify growth
/// curves (e.g. cost vs `log n`: a bounded slope on the log axis while the
/// linear-axis slope collapses toward zero is the `O(log* n)`-vs-`O(n)`
/// shape the experiments check).
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let s = Summary::of(1..=100u64);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        // Index (99 × 0.5).round() = 50 → the upper median.
        assert_eq!(s.p50, 51);
        assert_eq!(s.p95, 95);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(Summary::of(std::iter::empty()), Summary::default());
    }

    #[test]
    fn slope_of_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&pts) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn slope_degenerate() {
        assert_eq!(slope(&[]), 0.0);
        assert_eq!(slope(&[(1.0, 5.0)]), 0.0);
        assert_eq!(slope(&[(2.0, 1.0), (2.0, 9.0)]), 0.0);
    }
}
