//! Drives a scheduler over a request sequence, metering costs and
//! validating feasibility.

use realloc_core::schedule::validate;
use realloc_core::{CostMeter, Error, JobId, Reallocator, Request, RequestSeq, Window};
use std::collections::BTreeMap;

/// Options for [`run`].
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Validate the full schedule against the active set after every
    /// request (`O(n)` per request — for correctness experiments).
    pub validate_each_step: bool,
    /// Stop at the first scheduler error (otherwise skip the request and
    /// count the failure).
    pub fail_fast: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            validate_each_step: false,
            fail_fast: true,
        }
    }
}

/// Result of a [`run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-request costs (reallocations, migrations, `nᵢ`, `Δᵢ`).
    pub meter: CostMeter,
    /// Requests the scheduler failed to service (only populated when
    /// `fail_fast` is off).
    pub failures: Vec<(usize, Error)>,
    /// Requests executed.
    pub executed: usize,
}

/// Replays `seq` on `sched`. The meter records the paper's `nᵢ` (active
/// jobs) and `Δᵢ` (largest active window span) next to each request's
/// netted costs; validation (if enabled) checks the produced schedule
/// against the **original** windows after every request.
pub fn run<R: Reallocator>(
    sched: &mut R,
    seq: &RequestSeq,
    opts: RunOptions,
) -> Result<RunReport, Error> {
    let mut meter = CostMeter::new();
    let mut failures = Vec::new();
    let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
    let mut spans: BTreeMap<u64, usize> = BTreeMap::new();
    let mut executed = 0usize;

    for (i, &req) in seq.requests().iter().enumerate() {
        let result = sched.request(req);
        let outcome = match result {
            Ok(out) => out,
            Err(e) => {
                if opts.fail_fast {
                    return Err(e);
                }
                failures.push((i, e));
                continue;
            }
        };
        executed += 1;
        match req {
            Request::Insert { id, window } => {
                active.insert(id, window);
                *spans.entry(window.span()).or_insert(0) += 1;
            }
            Request::Delete { id } => {
                if let Some(w) = active.remove(&id) {
                    let c = spans.get_mut(&w.span()).expect("span tracked");
                    *c -= 1;
                    if *c == 0 {
                        spans.remove(&w.span());
                    }
                }
            }
        }
        let max_span = spans.keys().next_back().copied().unwrap_or(0);
        meter.record(&outcome, active.len() as u64, max_span);

        if opts.validate_each_step {
            validate(&sched.snapshot(), &active, sched.machines())
                .unwrap_or_else(|e| panic!("request {i}: invalid schedule: {e}"));
        }
    }
    Ok(RunReport {
        meter,
        failures,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_baselines::EdfRescheduler;
    use realloc_core::RequestSeq;

    #[test]
    fn runner_meters_and_validates() {
        let mut seq = RequestSeq::new();
        for i in 0..10u64 {
            seq.insert(i, realloc_core::Window::new(0, 16));
        }
        for i in 0..5u64 {
            seq.delete(i);
        }
        let mut sched = EdfRescheduler::new(2);
        let report = run(
            &mut sched,
            &seq,
            RunOptions {
                validate_each_step: true,
                fail_fast: true,
            },
        )
        .unwrap();
        assert_eq!(report.executed, 15);
        assert_eq!(report.meter.requests(), 15);
        let last = report.meter.samples().last().unwrap();
        assert_eq!(last.active_jobs, 5);
        assert_eq!(last.max_span, 16);
    }

    #[test]
    fn fail_fast_off_collects_failures() {
        let mut seq = RequestSeq::new();
        seq.insert(1, realloc_core::Window::new(0, 1));
        seq.insert(2, realloc_core::Window::new(0, 1)); // infeasible on 1 machine
        seq.insert(3, realloc_core::Window::new(4, 8));
        let mut sched = EdfRescheduler::new(1);
        let report = run(
            &mut sched,
            &seq,
            RunOptions {
                validate_each_step: true,
                fail_fast: false,
            },
        )
        .unwrap();
        assert_eq!(report.executed, 2);
        assert_eq!(report.failures.len(), 1);
    }
}
