//! Property-based tests for the §3/§5 wrapper: migrations are bounded by
//! one per request, per-window balance holds (Lemma 3's precondition), and
//! schedules stay feasible against the original (unaligned) windows, for
//! any density-bounded op sequence and any machine count.

use proptest::prelude::*;
use realloc_core::schedule::validate;
use realloc_core::{JobId, Reallocator, SingleMachineReallocator, Window};
use realloc_multi::ReallocatingScheduler;
use realloc_reservation::ReservationScheduler;
use std::collections::{BTreeMap, HashMap};

#[derive(Clone, Debug)]
enum Op {
    Insert { start: u64, span: u64 },
    Delete { idx: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..2000, 1u64..200).prop_map(|(start, span)| Op::Insert { start, span }),
        2 => (0usize..64).prop_map(|idx| Op::Delete { idx }),
    ]
}

const HORIZON: u64 = 1 << 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wrapper_invariants_under_churn(
        ops in prop::collection::vec(op_strategy(), 1..100),
        machines in 1usize..5,
    ) {
        let mut sched =
            ReallocatingScheduler::from_factory(machines, ReservationScheduler::new);
        let mut counts: HashMap<Window, u64> = HashMap::new();
        let mut active: Vec<(JobId, Window)> = Vec::new();
        let mut next = 0u64;
        let m = machines as u64;

        let ancestors = |mut w: Window| {
            let mut out = vec![w];
            while w.span() < HORIZON {
                w = w.aligned_parent().unwrap();
                out.push(w);
            }
            out
        };

        for op in &ops {
            let outcome = match *op {
                Op::Insert { start, span } => {
                    let w = Window::with_span(start % (HORIZON / 2), span);
                    let eff = w.aligned_subwindow();
                    // Density guard at γ = 8 on the aligned effective set.
                    if ancestors(eff).iter().any(|a| {
                        counts.get(a).copied().unwrap_or(0) >= m * a.span() / 8
                    }) {
                        continue;
                    }
                    for a in ancestors(eff) {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                    let id = JobId(next);
                    next += 1;
                    let out = sched.insert(id, w).expect("density-bounded insert");
                    active.push((id, w));
                    // Inserts never migrate (paper §3).
                    prop_assert_eq!(out.netted().migration_cost(), 0);
                    out
                }
                Op::Delete { idx } => {
                    if active.is_empty() {
                        continue;
                    }
                    let (id, w) = active.swap_remove(idx % active.len());
                    for a in ancestors(w.aligned_subwindow()) {
                        *counts.get_mut(&a).unwrap() -= 1;
                    }
                    sched.delete(id).expect("delete of active job")
                }
            };
            // Theorem 1: at most one migration per request.
            prop_assert!(outcome.netted().migration_cost() <= 1);

            // Feasibility against ORIGINAL windows.
            let active_map: BTreeMap<JobId, Window> =
                active.iter().copied().collect();
            validate(&sched.snapshot(), &active_map, machines).unwrap();
        }

        // Per-machine backends hold internally consistent state.
        for machine in 0..machines {
            sched.backend(machine).check_invariants().unwrap();
        }
    }

    #[test]
    fn per_window_balance_within_one(
        n_jobs in 1usize..40,
        machines in 2usize..6,
        deletes in prop::collection::vec(0usize..40, 0..20),
    ) {
        // All jobs share one window: after any delete pattern, machine
        // shares differ by at most one (the Lemma 3 invariant).
        let w = Window::new(0, 4096);
        let mut sched =
            ReallocatingScheduler::from_factory(machines, ReservationScheduler::new);
        let mut live: Vec<JobId> = Vec::new();
        for i in 0..n_jobs as u64 {
            sched.insert(JobId(i), w).unwrap();
            live.push(JobId(i));
        }
        for &d in &deletes {
            if live.is_empty() {
                break;
            }
            let id = live.swap_remove(d % live.len());
            sched.delete(id).unwrap();
        }
        let counts: Vec<usize> =
            (0..machines).map(|m| sched.backend(m).active_count()).collect();
        let lo = *counts.iter().min().unwrap();
        let hi = *counts.iter().max().unwrap();
        prop_assert!(hi - lo <= 1, "unbalanced shares: {:?}", counts);
        prop_assert_eq!(counts.iter().sum::<usize>(), live.len());
    }
}
