//! Direct coverage for `AdaptiveScheduler`: feasibility invariants under
//! churn through full degrade/recover cycles, and snapshot round-trip
//! equivalence (identical subsequent moves) in both serving modes.

use proptest::prelude::*;
use realloc_baselines::NaivePeckingScheduler;
use realloc_core::{JobId, Request, SingleMachineReallocator, Window};
use realloc_multi::{AdaptiveScheduler, Mode};
use realloc_reservation::ReservationScheduler;
use realloc_workloads::{ChurnConfig, ChurnGenerator};
use std::collections::{BTreeMap, HashSet};

type Adaptive = AdaptiveScheduler<
    ReservationScheduler,
    NaivePeckingScheduler,
    fn() -> ReservationScheduler,
    fn() -> NaivePeckingScheduler,
>;

fn adaptive() -> Adaptive {
    AdaptiveScheduler::new(ReservationScheduler::new, NaivePeckingScheduler::new)
}

/// Feasibility invariants: every assignment inside its job's original
/// window, no slot collisions, assignment count == active count.
fn assert_feasible(s: &Adaptive, active: &BTreeMap<JobId, Window>) {
    let mut seen = HashSet::new();
    let assignments = s.assignments();
    assert_eq!(assignments.len(), active.len());
    assert_eq!(s.active_count(), active.len());
    for (id, slot) in assignments {
        let w = active[&id];
        assert!(w.contains_slot(slot), "{id} at {slot} outside {w}");
        assert!(seen.insert(slot), "slot collision at {slot}");
    }
}

/// A stream that drives the scheduler through a full lifecycle: churn in
/// fast mode, an E4a-style saturated nest that forces degradation, churn
/// while degraded, then deletions until recovery.
fn lifecycle_stream(seed: u64) -> Vec<Request> {
    let mut out = Vec::new();
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 10,
            spans: vec![1, 4, 16, 64],
            target_active: 24,
            insert_bias: 0.7,
            unaligned: false,
        },
        seed,
    );
    out.extend(gen.generate(120).requests().iter().copied());
    // Saturate: span-s jobs at density s/2 per level overflow the
    // reservation scheduler's slack requirement.
    let mut id = 1_000_000u64;
    let mut span = 2u64;
    while span <= 256 {
        for k in 0..span / 2 {
            out.push(Request::Insert {
                id: JobId(id),
                window: Window::with_span((k % 2) * span, span),
            });
            id += 1;
        }
        span *= 2;
    }
    // Churn on top of the degraded instance.
    out.extend(gen.generate(80).requests().iter().copied());
    // Drain the nest (and most churn jobs): slack returns.
    for drain in 1_000_000..id {
        out.push(Request::Delete { id: JobId(drain) });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Invariants hold after every single request across degrade and
    /// recover, and the lifecycle really exercises both transitions.
    #[test]
    fn invariants_hold_through_degrade_and_recover(seed in 0u64..200) {
        let mut s = adaptive();
        let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
        let mut modes_seen = HashSet::new();
        for r in lifecycle_stream(seed) {
            match r {
                Request::Insert { id, window } => {
                    if s.insert(id, window).is_ok() {
                        active.insert(id, window);
                    }
                }
                Request::Delete { id } => {
                    if s.delete(id).is_ok() {
                        active.remove(&id);
                    }
                }
            }
            modes_seen.insert(s.mode());
            assert_feasible(&s, &active);
        }
        prop_assert!(modes_seen.contains(&Mode::Fast));
        prop_assert!(modes_seen.contains(&Mode::Degraded), "nest never degraded");
        prop_assert!(s.degradations() >= 1);
        prop_assert!(s.recoveries() >= 1, "drain never recovered");
        prop_assert_eq!(s.mode(), Mode::Fast, "ended degraded after the drain");
    }

    /// Snapshot round-trip at an arbitrary cut point: the restored
    /// scheduler replays the remaining stream with **identical moves**
    /// (not just identical final assignments), in whichever mode the cut
    /// lands.
    #[test]
    fn snapshot_round_trips_mid_churn(seed in 0u64..200, cut_permille in 0usize..1000) {
        let stream = lifecycle_stream(seed);
        let cut = stream.len() * cut_permille / 1000;
        let (prefix, suffix) = stream.split_at(cut);

        let mut original = adaptive();
        for &r in prefix {
            let _ = apply(&mut original, r);
        }
        let text = original.snapshot_text();
        let mut restored =
            Adaptive::restore_with(&text, ReservationScheduler::new, NaivePeckingScheduler::new)
                .expect("own snapshot must restore");

        prop_assert_eq!(restored.mode(), original.mode());
        prop_assert_eq!(restored.degradations(), original.degradations());
        prop_assert_eq!(restored.recoveries(), original.recoveries());
        prop_assert_eq!(sorted(restored.assignments()), sorted(original.assignments()));

        for &r in suffix {
            let a = apply(&mut original, r);
            let b = apply(&mut restored, r);
            prop_assert_eq!(a, b, "restored scheduler diverged");
        }
        prop_assert_eq!(restored.mode(), original.mode());
        prop_assert_eq!(sorted(restored.assignments()), sorted(original.assignments()));
        // Round-trip of the final state too.
        prop_assert_eq!(restored.snapshot_text(), original.snapshot_text());
    }
}

/// Applies one request, canonicalizing the returned moves by job id so
/// two instances are compared on *what moved where*, not on backend hash
/// map iteration order.
fn apply(s: &mut Adaptive, r: Request) -> Result<Vec<realloc_core::SlotMove>, String> {
    let moves = match r {
        Request::Insert { id, window } => s.insert(id, window).map_err(|e| e.to_string()),
        Request::Delete { id } => s.delete(id).map_err(|e| e.to_string()),
    };
    moves.map(|mut m| {
        m.sort_by_key(|mv| (mv.job, mv.from, mv.to));
        m
    })
}

fn sorted(mut v: Vec<(JobId, u64)>) -> Vec<(JobId, u64)> {
    v.sort();
    v
}

#[test]
fn malformed_adaptive_snapshots_error_gracefully() {
    let mut s = adaptive();
    for i in 0..12u64 {
        s.insert(JobId(i), Window::with_span((i % 4) * 64, 16))
            .unwrap();
    }
    let text = s.snapshot_text();
    assert!(
        Adaptive::restore_with(&text, ReservationScheduler::new, NaivePeckingScheduler::new)
            .is_ok()
    );
    for (what, from, to) in [
        ("bad mode", "m f ", "m x "),
        ("duplicate mode line", "m f 0 0 0", "m f 0 0 0\nm f 0 0 0"),
        ("duplicate job", "j 0 0 16", "j 0 0 16\nj 0 0 16"),
        ("inverted window", "j 0 0 16", "j 0 16 16"),
        ("unknown op", "j 0 0 16", "q 0 0 16"),
        ("unrecorded scheduled job", "j 0 0 16", "j 99 0 16"),
        (
            "wrong backend section",
            "!begin reservation",
            "!begin naive",
        ),
    ] {
        let bad = text.replacen(from, to, 1);
        assert_ne!(bad, text, "{what}: pattern missed");
        assert!(
            Adaptive::restore_with(&bad, ReservationScheduler::new, NaivePeckingScheduler::new)
                .is_err(),
            "{what}: accepted"
        );
    }
    // Truncation anywhere never panics.
    for cutoff in (0..text.len()).step_by(53) {
        let _ = Adaptive::restore_with(
            &text[..cutoff],
            ReservationScheduler::new,
            NaivePeckingScheduler::new,
        );
    }
}
