//! Adaptive degradation: `O(log*)` when there is slack, `O(log)` when
//! there is not.
//!
//! Theorem 1 needs `γ`-underallocated inputs; when the instance over-packs,
//! the reservation scheduler refuses (its Lemma 8 guarantee is gone) even
//! though the instance may still be feasible — and Lemma 4's naive
//! pecking-order scheduler would happily serve it at `Θ(log)` cost, since
//! it tolerates *any* feasible sequence of aligned requests.
//!
//! [`AdaptiveScheduler`] combines the two: it runs a fast primary backend
//! and, when the primary refuses an insert, rebuilds the whole schedule
//! into a degraded backend (one `Θ(n)` rebuild — unavoidable by Lemma 12
//! in that regime) and continues there. Once enough jobs have departed
//! (active count dropping below [`RECOVER_FRACTION`] of the load at
//! degradation time), it attempts to rebuild back into a fresh primary;
//! acceptance by the reservation scheduler is history independent
//! (Observation 7), so the span-sorted re-insertion attempt is a reliable
//! probe of whether the *current multiset* fits the primary again. A
//! failed probe lowers the threshold so probes stay amortized-cheap.
//!
//! This addresses the practical gap the paper leaves open between
//! Theorem 1 (needs slack) and Lemmas 11/12 (no algorithm does well
//! without slack): degrade gracefully, recover automatically.

use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, SingleMachineReallocator, Slot, SlotMove, Window};
use std::collections::HashMap;

/// Fraction of the degradation-time load below which recovery is probed.
pub const RECOVER_FRACTION: f64 = 0.75;

/// Which backend is serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The fast (reservation) backend.
    Fast,
    /// The degraded (naive) backend.
    Degraded,
}

/// A single-machine scheduler switching between a fast primary `P` and a
/// slack-tolerant degraded backend `D`.
#[derive(Clone, Debug)]
pub struct AdaptiveScheduler<P, D, FP, FD> {
    primary: Option<P>,
    degraded: Option<D>,
    make_primary: FP,
    make_degraded: FD,
    windows: HashMap<JobId, Window>,
    /// Probe threshold: attempt recovery when `active < threshold`.
    recover_below: usize,
    degradations: u64,
    recoveries: u64,
}

impl<P, D, FP, FD> AdaptiveScheduler<P, D, FP, FD>
where
    P: SingleMachineReallocator,
    D: SingleMachineReallocator,
    FP: Fn() -> P,
    FD: Fn() -> D,
{
    /// New adaptive scheduler starting in fast mode.
    pub fn new(make_primary: FP, make_degraded: FD) -> Self {
        let primary = make_primary();
        AdaptiveScheduler {
            primary: Some(primary),
            degraded: None,
            make_primary,
            make_degraded,
            windows: HashMap::new(),
            recover_below: 0,
            degradations: 0,
            recoveries: 0,
        }
    }

    /// Current serving mode.
    pub fn mode(&self) -> Mode {
        if self.primary.is_some() {
            Mode::Fast
        } else {
            Mode::Degraded
        }
    }

    /// Number of fast→degraded switches.
    pub fn degradations(&self) -> u64 {
        self.degradations
    }

    /// Number of degraded→fast switches.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Span-sorted rebuild of the active set (plus `extra`) into a fresh
    /// scheduler; `None` if the target refuses any job.
    fn rebuild_into<T: SingleMachineReallocator>(
        &self,
        target: &mut T,
        extra: Option<(JobId, Window)>,
    ) -> Option<()> {
        let mut jobs: Vec<(JobId, Window)> = self.windows.iter().map(|(&id, &w)| (id, w)).collect();
        jobs.extend(extra);
        jobs.sort_by_key(|&(id, w)| (w.span(), w.start(), id));
        for &(id, w) in &jobs {
            if target.insert(id, w).is_err() {
                return None;
            }
        }
        Some(())
    }

    /// Diff of the current assignments against `fresh`'s, as slot moves
    /// in job-id order. The sort makes the rebuild diff a pure function
    /// of the two *states* — `assignments()` iterates hash maps whose
    /// order varies per instance, and a snapshot-restored scheduler must
    /// report byte-identical rebuild moves to the original.
    fn diff_moves<T: SingleMachineReallocator>(
        old: &HashMap<JobId, Slot>,
        fresh: &T,
    ) -> Vec<SlotMove> {
        let mut moves: Vec<SlotMove> = fresh
            .assignments()
            .into_iter()
            .filter_map(|(id, slot)| match old.get(&id) {
                Some(&s) if s == slot => None,
                other => Some(SlotMove {
                    job: id,
                    from: other.copied(),
                    to: Some(slot),
                }),
            })
            .collect();
        moves.sort_by_key(|m| m.job);
        moves
    }

    fn current_assignments(&self) -> HashMap<JobId, Slot> {
        match (&self.primary, &self.degraded) {
            (Some(p), _) => p.assignments().into_iter().collect(),
            (_, Some(d)) => d.assignments().into_iter().collect(),
            _ => unreachable!("one backend is always live"),
        }
    }

    /// Section kind of an adaptive snapshot (see
    /// [`AdaptiveScheduler::snapshot_text`]).
    pub const SNAPSHOT_KIND: &'static str = "adaptive";

    fn try_recover(&mut self, moves: &mut Vec<SlotMove>) {
        if self.primary.is_some() || self.windows.len() >= self.recover_below {
            return;
        }
        let mut fresh = (self.make_primary)();
        if self.rebuild_into(&mut fresh, None).is_some() {
            let old = self.current_assignments();
            moves.extend(Self::diff_moves(&old, &fresh));
            self.primary = Some(fresh);
            self.degraded = None;
            self.recoveries += 1;
        } else {
            // Back off: require a further drop before the next probe.
            self.recover_below = self.windows.len();
        }
    }
}

/// Snapshot / restore. The [`Restorable`] trait itself cannot be
/// implemented here — restoring needs the two backend *factories*, which
/// no text format can carry — so the adaptive scheduler exposes the same
/// contract through factory-taking inherent methods:
/// `restore_with(snapshot_text(s), fp, fd)` is behaviorally
/// indistinguishable from `s` (identical moves, costs, errors on any
/// subsequent stream), and malformed input yields graceful
/// [`ParseError`]s, never panics.
impl<P, D, FP, FD> AdaptiveScheduler<P, D, FP, FD>
where
    P: SingleMachineReallocator + Restorable,
    D: SingleMachineReallocator + Restorable,
    FP: Fn() -> P,
    FD: Fn() -> D,
{
    /// Writes the full mutable state: mode header (serving mode, probe
    /// threshold, switch counters), every active job's original window,
    /// and the live backend's own snapshot as a child section.
    pub fn write_state(&self, w: &mut SnapshotWriter) {
        let mode = match self.mode() {
            Mode::Fast => "f",
            Mode::Degraded => "d",
        };
        w.line(format_args!(
            "m {mode} {} {} {}",
            self.recover_below, self.degradations, self.recoveries
        ));
        let mut jobs: Vec<(JobId, Window)> = self.windows.iter().map(|(&id, &w)| (id, w)).collect();
        jobs.sort_by_key(|&(id, _)| id);
        for (id, win) in jobs {
            w.line(format_args!("j {} {} {}", id.0, win.start(), win.end()));
        }
        match (&self.primary, &self.degraded) {
            (Some(p), _) => w.child(p),
            (_, Some(d)) => w.child(d),
            _ => unreachable!("one backend is always live"),
        }
    }

    /// Serializes to a self-contained snapshot document (an `adaptive`
    /// section in `realloc_core::snapshot` v1 framing).
    pub fn snapshot_text(&self) -> String {
        let mut w = SnapshotWriter::new();
        w.begin(Self::SNAPSHOT_KIND);
        self.write_state(&mut w);
        w.end();
        w.finish()
    }

    /// Rebuilds a scheduler from an `adaptive` section, cross-validating
    /// the recorded window set against the restored backend's schedule.
    pub fn read_state_with(
        node: &SnapshotNode,
        make_primary: FP,
        make_degraded: FD,
    ) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut header: Option<(Mode, usize, u64, u64)> = None;
        let mut windows: HashMap<JobId, Window> = HashMap::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "m" => {
                    if header.is_some() {
                        return Err(f.err("duplicate 'm' mode line"));
                    }
                    let mode = match f.token("mode")? {
                        "f" => Mode::Fast,
                        "d" => Mode::Degraded,
                        other => return Err(f.err(format!("bad mode '{other}'"))),
                    };
                    let recover_below = f.usize("recover threshold")?;
                    let degradations = f.u64("degradation count")?;
                    let recoveries = f.u64("recovery count")?;
                    f.finish()?;
                    header = Some((mode, recover_below, degradations, recoveries));
                }
                "j" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    f.finish()?;
                    if end <= start {
                        return Err(f.err(format!("window end {end} must exceed start {start}")));
                    }
                    if windows.insert(id, Window::new(start, end)).is_some() {
                        return Err(f.err(format!("duplicate job {id}")));
                    }
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown adaptive snapshot op '{other}'"),
                    })
                }
            }
        }
        let (mode, recover_below, degradations, recoveries) = header.ok_or(ParseError {
            line: 0,
            message: "adaptive snapshot has no 'm' mode line".to_string(),
        })?;
        let (primary, degraded) = match mode {
            Mode::Fast => {
                let p = P::read_state(node.only_child(P::SNAPSHOT_KIND)?)?;
                (Some(p), None)
            }
            Mode::Degraded => {
                let d = D::read_state(node.only_child(D::SNAPSHOT_KIND)?)?;
                (None, Some(d))
            }
        };
        let restored = AdaptiveScheduler {
            primary,
            degraded,
            make_primary,
            make_degraded,
            windows,
            recover_below,
            degradations,
            recoveries,
        };
        // The backend must schedule exactly the recorded job set, inside
        // the recorded windows.
        let assignments = restored.assignments();
        if assignments.len() != restored.windows.len() {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "backend schedules {} jobs but {} windows are recorded",
                    assignments.len(),
                    restored.windows.len()
                ),
            });
        }
        for (id, slot) in assignments {
            match restored.windows.get(&id) {
                None => {
                    return Err(ParseError {
                        line: 0,
                        message: format!("backend schedules unrecorded job {id}"),
                    })
                }
                Some(win) if !win.contains_slot(slot) => {
                    return Err(ParseError {
                        line: 0,
                        message: format!("job {id} restored to slot {slot} outside {win}"),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(restored)
    }

    /// Parses a document produced by [`AdaptiveScheduler::snapshot_text`].
    pub fn restore_with(
        text: &str,
        make_primary: FP,
        make_degraded: FD,
    ) -> Result<Self, ParseError> {
        let root = SnapshotNode::parse(text)?;
        Self::read_state_with(
            root.only_child(Self::SNAPSHOT_KIND)?,
            make_primary,
            make_degraded,
        )
    }
}

impl<P, D, FP, FD> SingleMachineReallocator for AdaptiveScheduler<P, D, FP, FD>
where
    P: SingleMachineReallocator,
    D: SingleMachineReallocator,
    FP: Fn() -> P,
    FD: Fn() -> D,
{
    fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error> {
        if self.windows.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        if let Some(p) = self.primary.as_mut() {
            match p.insert(id, window) {
                Ok(moves) => {
                    self.windows.insert(id, window);
                    return Ok(moves);
                }
                Err(Error::CapacityExhausted { .. }) => {
                    // Degrade: rebuild everything (incl. the new job) into
                    // the slack-tolerant backend.
                    let mut fresh = (self.make_degraded)();
                    let Some(()) = self.rebuild_into(&mut fresh, Some((id, window))) else {
                        return Err(Error::CapacityExhausted {
                            job: id,
                            detail: "infeasible even for the degraded backend".into(),
                        });
                    };
                    let old = self.current_assignments();
                    let moves = Self::diff_moves(&old, &fresh);
                    self.primary = None;
                    self.degraded = Some(fresh);
                    self.windows.insert(id, window);
                    self.degradations += 1;
                    self.recover_below = (self.windows.len() as f64 * RECOVER_FRACTION) as usize;
                    return Ok(moves);
                }
                Err(e) => return Err(e),
            }
        }
        let d = self.degraded.as_mut().expect("degraded mode");
        let moves = d.insert(id, window)?;
        self.windows.insert(id, window);
        Ok(moves)
    }

    fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error> {
        let mut moves = match (self.primary.as_mut(), self.degraded.as_mut()) {
            (Some(p), _) => p.delete(id)?,
            (_, Some(d)) => d.delete(id)?,
            _ => unreachable!(),
        };
        self.windows.remove(&id);
        self.try_recover(&mut moves);
        Ok(moves)
    }

    fn slot_of(&self, id: JobId) -> Option<Slot> {
        match (&self.primary, &self.degraded) {
            (Some(p), _) => p.slot_of(id),
            (_, Some(d)) => d.slot_of(id),
            _ => unreachable!(),
        }
    }

    fn assignments(&self) -> Vec<(JobId, Slot)> {
        match (&self.primary, &self.degraded) {
            (Some(p), _) => p.assignments(),
            (_, Some(d)) => d.assignments(),
            _ => unreachable!(),
        }
    }

    fn active_count(&self) -> usize {
        self.windows.len()
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_baselines::NaivePeckingScheduler;
    use realloc_reservation::ReservationScheduler;

    type Adaptive = AdaptiveScheduler<
        ReservationScheduler,
        NaivePeckingScheduler,
        fn() -> ReservationScheduler,
        fn() -> NaivePeckingScheduler,
    >;

    fn adaptive() -> Adaptive {
        AdaptiveScheduler::new(ReservationScheduler::new, NaivePeckingScheduler::new)
    }

    fn assert_feasible(s: &Adaptive) {
        let mut seen = std::collections::HashSet::new();
        for (id, slot) in s.assignments() {
            let w = s.windows[&id];
            assert!(w.contains_slot(slot), "{id} at {slot} outside {w}");
            assert!(seen.insert(slot), "slot collision at {slot}");
        }
        assert_eq!(s.assignments().len(), s.active_count());
    }

    /// Saturated nest (the E4a construction) up to span `top`.
    fn saturate(s: &mut Adaptive, top: u64) -> u64 {
        let mut id = 0u64;
        let mut span = 2u64;
        while span <= top {
            for _ in 0..span / 2 {
                s.insert(JobId(id), Window::with_span(0, span)).unwrap();
                id += 1;
            }
            span *= 2;
        }
        id
    }

    #[test]
    fn degrades_on_overpacking_and_serves() {
        let mut s = adaptive();
        let n = saturate(&mut s, 512);
        assert_eq!(s.mode(), Mode::Degraded, "saturated nest must degrade");
        assert!(s.degradations() >= 1);
        assert_eq!(s.active_count() as u64, n);
        // Still serving: the probe insert that defeats the fast backend.
        s.insert(JobId(9999), Window::new(0, 1)).unwrap();
        assert_feasible(&s);
    }

    #[test]
    fn recovers_when_slack_returns() {
        let mut s = adaptive();
        let n = saturate(&mut s, 256);
        assert_eq!(s.mode(), Mode::Degraded);
        // Delete most jobs; recovery probes fire as the count drops.
        for id in 0..n {
            s.delete(JobId(id)).unwrap();
            if s.mode() == Mode::Fast {
                break;
            }
        }
        assert_eq!(s.mode(), Mode::Fast, "slack returned but no recovery");
        assert!(s.recoveries() >= 1);
        assert_feasible(&s);
        // And the fast path works again.
        s.insert(JobId(77777), Window::new(0, 64)).unwrap();
        assert_feasible(&s);
    }

    #[test]
    fn fast_mode_untouched_under_slack() {
        let mut s = adaptive();
        for i in 0..32u64 {
            s.insert(JobId(i), Window::with_span((i % 8) * 256, 256))
                .unwrap();
        }
        assert_eq!(s.mode(), Mode::Fast);
        assert_eq!(s.degradations(), 0);
        assert_feasible(&s);
    }

    #[test]
    fn truly_infeasible_rejected_in_both_modes() {
        let mut s = adaptive();
        s.insert(JobId(1), Window::new(0, 1)).unwrap();
        assert!(matches!(
            s.insert(JobId(2), Window::new(0, 1)),
            Err(Error::CapacityExhausted { .. })
        ));
        assert_eq!(s.active_count(), 1);
        assert_feasible(&s);
    }
}
