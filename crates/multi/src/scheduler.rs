//! The full Theorem-1 pipeline: align → delegate → per-machine backend.

use fxhash::FxHashMap;
use realloc_core::cost::Placement;
use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{
    Error, JobId, Move, Reallocator, RequestOutcome, ScheduleSnapshot, SingleMachineReallocator,
    Window,
};
use realloc_reservation::TrimmedScheduler;
use std::collections::BTreeSet;

/// Per-effective-window delegation bookkeeping (paper §3).
#[derive(Clone, Debug)]
struct WindowGroup {
    /// Total jobs with this effective window across machines (`n_W`).
    count: u64,
    /// First machine of this window's rotation. The paper starts every
    /// window at machine 0; hashing the start preserves Lemma 3 (each
    /// machine still holds `⌊n_W/m⌋` or `⌈n_W/m⌉` jobs of the window)
    /// while balancing *aggregate* load across windows.
    start: usize,
    /// Which jobs of this window live on each machine. Ordered sets so
    /// the §3 migration-victim choice on delete (the smallest id on the
    /// rotation's tail machine) is a pure function of the *content* —
    /// not of hash-map insertion history. Journal replay, the
    /// parallel-vs-sequential equivalence guarantee, and snapshot/restore
    /// equivalence all depend on that purity.
    per_machine: Vec<BTreeSet<JobId>>,
}

impl WindowGroup {
    fn new(machines: usize, window: Window) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        window.hash(&mut h);
        WindowGroup {
            count: 0,
            start: (h.finish() % machines as u64) as usize,
            per_machine: vec![BTreeSet::new(); machines],
        }
    }

    /// Machine for this window's job number `i` (0-based).
    fn machine_of(&self, i: u64, machines: usize) -> usize {
        ((self.start as u64 + i) % machines as u64) as usize
    }
}

#[derive(Clone, Copy, Debug)]
struct JobInfo {
    original: Window,
    effective: Window,
    machine: usize,
}

/// An `m`-machine reallocating scheduler for arbitrary windows, generic
/// over the single-machine backend `B` (paper Theorem 1 when `B` is the
/// reservation scheduler; the same wrapper also lifts the Lemma 4 naive
/// baseline to `m` machines for comparisons).
#[derive(Clone, Debug)]
pub struct ReallocatingScheduler<B> {
    machines: Vec<B>,
    windows: FxHashMap<Window, WindowGroup>,
    jobs: FxHashMap<JobId, JobInfo>,
}

/// The paper's headline configuration: reservation scheduler with `n*`
/// trimming on every machine.
pub type TheoremOneScheduler = ReallocatingScheduler<TrimmedScheduler>;

impl TheoremOneScheduler {
    /// Theorem-1 scheduler on `machines` machines with trim factor `gamma`.
    pub fn theorem_one(machines: usize, gamma: u64) -> Self {
        Self::with_backends(
            (0..machines)
                .map(|_| TrimmedScheduler::new(gamma))
                .collect(),
        )
    }
}

impl<B: SingleMachineReallocator> ReallocatingScheduler<B> {
    /// Builds the wrapper from per-machine backends (one per machine).
    pub fn with_backends(machines: Vec<B>) -> Self {
        assert!(!machines.is_empty(), "need at least one machine");
        ReallocatingScheduler {
            machines,
            windows: FxHashMap::default(),
            jobs: FxHashMap::default(),
        }
    }

    /// Builds `m` machines from a backend factory.
    pub fn from_factory(m: usize, factory: impl Fn() -> B) -> Self {
        Self::with_backends((0..m).map(|_| factory()).collect())
    }

    /// The effective (aligned) window a job would be scheduled under.
    pub fn effective_window(window: Window) -> Window {
        window.aligned_subwindow()
    }

    /// Read-only access to a machine's backend (tests, invariant checks).
    pub fn backend(&self, machine: usize) -> &B {
        &self.machines[machine]
    }

    /// The original (pre-alignment) window of an active job.
    pub fn original_window(&self, id: JobId) -> Option<Window> {
        self.jobs.get(&id).map(|i| i.original)
    }
}

impl<B: SingleMachineReallocator> Reallocator for ReallocatingScheduler<B> {
    fn machines(&self) -> usize {
        self.machines.len()
    }

    fn insert(&mut self, id: JobId, window: Window) -> Result<RequestOutcome, Error> {
        if self.jobs.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        let m = self.machines.len();
        let effective = Self::effective_window(window);
        let group = self
            .windows
            .entry(effective)
            .or_insert_with(|| WindowGroup::new(m, effective));
        // §3: job number n_W goes to machine (start + n_W) mod m.
        let machine = group.machine_of(group.count, m);
        let slot_moves = self.machines[machine].insert(id, effective)?;
        let group = self.windows.get_mut(&effective).expect("just inserted");
        group.count += 1;
        group.per_machine[machine].insert(id);
        self.jobs.insert(
            id,
            JobInfo {
                original: window,
                effective,
                machine,
            },
        );
        Ok(RequestOutcome {
            moves: slot_moves
                .into_iter()
                .map(|sm| sm.on_machine(machine))
                .collect(),
        })
    }

    fn delete(&mut self, id: JobId) -> Result<RequestOutcome, Error> {
        let info = *self.jobs.get(&id).ok_or(Error::UnknownJob(id))?;
        let m = self.machines.len();
        let effective = info.effective;
        let mi = info.machine;

        let mut outcome = RequestOutcome::empty();
        let slot_moves = self.machines[mi].delete(id)?;
        outcome
            .moves
            .extend(slot_moves.into_iter().map(|sm| sm.on_machine(mi)));
        self.jobs.remove(&id);

        let group = self.windows.get_mut(&effective).expect("job had a group");
        group.per_machine[mi].remove(&id);
        group.count -= 1;
        // §3 rebalance: the machine that must shrink is the round-robin
        // tail — position count (0-based) after the decrement.
        let tail = group.machine_of(group.count, m);
        if tail != mi && group.count > 0 {
            debug_assert!(
                !group.per_machine[tail].is_empty(),
                "round-robin invariant: tail machine must hold a job of {effective}"
            );
            // The victim is the smallest id on the tail machine —
            // deterministic from content alone (see `per_machine`).
            if let Some(&mover) = group.per_machine[tail].first() {
                // Migrate `mover` from `tail` to `mi` (≤ 1 migration).
                let del = self.machines[tail].delete(mover)?;
                outcome
                    .moves
                    .extend(del.into_iter().map(|sm| sm.on_machine(tail)));
                match self.machines[mi].insert(mover, effective) {
                    Ok(ins) => {
                        outcome
                            .moves
                            .extend(ins.into_iter().map(|sm| sm.on_machine(mi)));
                        let group = self.windows.get_mut(&effective).unwrap();
                        group.per_machine[tail].remove(&mover);
                        group.per_machine[mi].insert(mover);
                        self.jobs.get_mut(&mover).unwrap().machine = mi;
                    }
                    Err(e) => {
                        // Put the mover back where it was; the delete itself
                        // remains serviced.
                        let back = self.machines[tail].insert(mover, effective)?;
                        outcome
                            .moves
                            .extend(back.into_iter().map(|sm| sm.on_machine(tail)));
                        debug_assert!(false, "migration re-insert failed: {e}");
                    }
                }
            }
        }
        if self.windows[&effective].count == 0 {
            self.windows.remove(&effective);
        }
        Ok(outcome)
    }

    fn snapshot(&self) -> ScheduleSnapshot {
        let mut snap = ScheduleSnapshot::new();
        for (&id, info) in &self.jobs {
            let slot = self.machines[info.machine]
                .slot_of(id)
                .expect("active job must be scheduled on its machine");
            snap.set(
                id,
                Placement {
                    machine: info.machine,
                    slot,
                },
            );
        }
        snap
    }

    fn active_count(&self) -> usize {
        self.jobs.len()
    }

    fn name(&self) -> &'static str {
        "realloc-multi"
    }
}

impl<B: SingleMachineReallocator + Restorable> Restorable for ReallocatingScheduler<B> {
    const SNAPSHOT_KIND: &'static str = "multi";

    fn write_state(&self, w: &mut SnapshotWriter) {
        // Recorded: machine count, every job's (id, original window,
        // machine), and each machine's full backend state as a child
        // section. Re-derived on restore: effective windows (the
        // alignment reduction is deterministic), window groups, rotation
        // starts (a pure hash of the window), and per-machine membership.
        w.line(format_args!("m {}", self.machines.len()));
        let mut jobs: Vec<(JobId, JobInfo)> = self.jobs.iter().map(|(&id, &i)| (id, i)).collect();
        jobs.sort_by_key(|&(id, _)| id);
        for (id, info) in jobs {
            w.line(format_args!(
                "j {} {} {} {}",
                id.0,
                info.original.start(),
                info.original.end(),
                info.machine
            ));
        }
        for b in &self.machines {
            w.child(b);
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut machine_count: Option<usize> = None;
        let mut jobs: Vec<(usize, JobId, Window, usize)> = Vec::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "m" => {
                    if machine_count.is_some() {
                        return Err(f.err("duplicate 'm' line"));
                    }
                    let m = f.usize("machine count")?;
                    f.finish()?;
                    if m == 0 {
                        return Err(f.err("machine count must be >= 1"));
                    }
                    machine_count = Some(m);
                }
                "j" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    let machine = f.usize("machine")?;
                    f.finish()?;
                    if end <= start {
                        return Err(f.err(format!("window end {end} must exceed start {start}")));
                    }
                    jobs.push((*line, id, Window::new(start, end), machine));
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown multi snapshot op '{other}'"),
                    })
                }
            }
        }
        let m = machine_count.ok_or(ParseError {
            line: 0,
            message: "multi snapshot has no 'm' machine-count line".to_string(),
        })?;
        let backends: Vec<B> = node
            .children_of(B::SNAPSHOT_KIND)
            .map(B::read_state)
            .collect::<Result<_, _>>()?;
        if backends.len() != m {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "multi snapshot declares {m} machines but embeds {} '{}' sections",
                    backends.len(),
                    B::SNAPSHOT_KIND
                ),
            });
        }
        let mut s = ReallocatingScheduler::with_backends(backends);
        for &(line, id, original, machine) in &jobs {
            let err = |message: String| ParseError { line, message };
            if machine >= m {
                return Err(err(format!("job {id} on machine {machine} of {m}")));
            }
            let effective = Self::effective_window(original);
            if s.machines[machine].slot_of(id).is_none() {
                return Err(err(format!(
                    "job {id} is recorded on machine {machine} but its backend does not hold it"
                )));
            }
            let group = s
                .windows
                .entry(effective)
                .or_insert_with(|| WindowGroup::new(m, effective));
            group.count += 1;
            if !group.per_machine[machine].insert(id) {
                return Err(err(format!("duplicate job {id}")));
            }
            s.jobs.insert(
                id,
                JobInfo {
                    original,
                    effective,
                    machine,
                },
            );
        }
        // Cross-validate: backends hold exactly the recorded jobs, and
        // every group satisfies the §3 rotation profile (machine i holds
        // precisely the jobs the round-robin from `start` would place
        // there — future delegation and migration depend on it).
        let backend_active: usize = s.machines.iter().map(|b| b.active_count()).sum();
        if backend_active != s.jobs.len() {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "backends hold {backend_active} jobs but {} are recorded",
                    s.jobs.len()
                ),
            });
        }
        for (win, group) in &s.windows {
            let mut expect = vec![0u64; m];
            for i in 0..group.count {
                expect[group.machine_of(i, m)] += 1;
            }
            for (mi, want) in expect.iter().enumerate() {
                let have = group.per_machine[mi].len() as u64;
                if have != *want {
                    return Err(ParseError {
                        line: 0,
                        message: format!(
                            "window {win}: machine {mi} holds {have} jobs, rotation expects {want}"
                        ),
                    });
                }
            }
        }
        Ok(s)
    }
}

/// Lifts one slot-level move to a machine; re-exported for harnesses that
/// track single-machine schedulers directly.
pub fn lift(sm: realloc_core::SlotMove, machine: usize) -> Move {
    sm.on_machine(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::schedule::validate;
    use realloc_reservation::ReservationScheduler;
    use std::collections::BTreeMap;

    fn validate_now<B: SingleMachineReallocator>(s: &ReallocatingScheduler<B>) {
        let active: BTreeMap<JobId, Window> = s
            .jobs
            .iter()
            .map(|(&id, info)| (id, info.original))
            .collect();
        validate(&s.snapshot(), &active, s.machines()).expect("feasible vs original windows");
    }

    #[test]
    fn round_robin_delegation() {
        let mut s = ReallocatingScheduler::from_factory(3, ReservationScheduler::new);
        for i in 0..9u64 {
            s.insert(JobId(i), Window::new(0, 64)).unwrap();
        }
        // 9 jobs over 3 machines: 3 each.
        for m in 0..3 {
            assert_eq!(s.backend(m).active_count(), 3, "machine {m}");
        }
        validate_now(&s);
    }

    #[test]
    fn unaligned_windows_are_aligned_first() {
        let mut s = ReallocatingScheduler::from_factory(2, ReservationScheduler::new);
        let w = Window::new(3, 17); // span 14, unaligned
        s.insert(JobId(1), w).unwrap();
        let eff = ReallocatingScheduler::<ReservationScheduler>::effective_window(w);
        assert!(eff.is_aligned());
        assert!(w.contains(&eff));
        assert!(eff.span() * 4 >= w.span());
        // The job is scheduled within the original window.
        validate_now(&s);
    }

    #[test]
    fn delete_migrates_at_most_one_job() {
        let mut s = ReallocatingScheduler::from_factory(4, ReservationScheduler::new);
        for i in 0..16u64 {
            s.insert(JobId(i), Window::new(0, 128)).unwrap();
        }
        for i in 0..16u64 {
            let out = s.delete(JobId(i)).unwrap();
            assert!(
                out.netted().migration_cost() <= 1,
                "delete of j{i} migrated {} jobs",
                out.netted().migration_cost()
            );
            validate_now(&s);
        }
    }

    #[test]
    fn inserts_never_migrate() {
        let mut s = ReallocatingScheduler::from_factory(3, ReservationScheduler::new);
        for i in 0..24u64 {
            let out = s.insert(JobId(i), Window::new(0, 256)).unwrap();
            assert_eq!(out.netted().migration_cost(), 0);
        }
    }

    #[test]
    fn balance_invariant_held_under_churn() {
        let mut s = ReallocatingScheduler::from_factory(3, ReservationScheduler::new);
        let w = Window::new(0, 512);
        for i in 0..12u64 {
            s.insert(JobId(i), w).unwrap();
        }
        s.delete(JobId(0)).unwrap();
        s.delete(JobId(5)).unwrap();
        s.delete(JobId(10)).unwrap();
        // 9 jobs left: 3 per machine (±0 since 9 = 3·3).
        let counts: Vec<usize> = (0..3).map(|m| s.backend(m).active_count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 9);
        assert!(counts.iter().all(|&c| c == 3), "unbalanced: {counts:?}");
        validate_now(&s);
    }

    #[test]
    fn theorem_one_constructor() {
        let mut s = TheoremOneScheduler::theorem_one(2, 4);
        for i in 0..10u64 {
            s.insert(JobId(i), Window::new(i * 8 + 1, i * 8 + 8))
                .unwrap();
        }
        assert_eq!(s.active_count(), 10);
        validate_now(&s);
    }

    #[test]
    fn mixed_windows_spread_by_group() {
        let mut s = ReallocatingScheduler::from_factory(2, ReservationScheduler::new);
        // Two distinct windows delegate independently.
        for i in 0..4u64 {
            s.insert(JobId(i), Window::new(0, 64)).unwrap();
        }
        for i in 4..8u64 {
            s.insert(JobId(i), Window::new(64, 128)).unwrap();
        }
        for m in 0..2 {
            assert_eq!(s.backend(m).active_count(), 4);
        }
        validate_now(&s);
    }
}
