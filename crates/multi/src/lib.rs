//! # realloc-multi
//!
//! The outer layers of Theorem 1 of **"Reallocation Problems in
//! Scheduling"** (Bender et al., SPAA 2013):
//!
//! * **§5 alignment**: every incoming window `W` is replaced by
//!   `ALIGNED(W)` — the leftmost largest aligned subwindow, of span
//!   `≥ |W|/4` — so the per-machine scheduler only ever sees recursively
//!   aligned instances (Lemma 10: a `4γ`-underallocated arbitrary instance
//!   stays `γ`-underallocated after alignment).
//!
//! * **§3 delegation**: per aligned window `W`, jobs are spread round-robin
//!   over the `m` machines, keeping every machine's share of `W`-jobs
//!   within one of `n_W / m` (Lemma 3: each machine's sub-instance stays
//!   underallocated). Inserts never migrate; a delete migrates **at most
//!   one** job — from the round-robin tail machine to the machine that
//!   lost a job — which is Theorem 1's migration bound.
//!
//! [`ReallocatingScheduler`] is generic over the per-machine backend, so
//! the same wrapper drives the paper's reservation scheduler
//! ([`TheoremOneScheduler`]) and the Lemma 4 naive baseline, making the
//! experiment comparisons apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod scheduler;

pub use adaptive::{AdaptiveScheduler, Mode};
pub use scheduler::{ReallocatingScheduler, TheoremOneScheduler};
