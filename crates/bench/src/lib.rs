//! Criterion benches live under `benches/`; this crate has no library code.
