//! Micro-benchmarks of the building blocks: alignment math, quota
//! computation, and the offline EDF feasibility oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use realloc_core::feasibility::edf_schedule;
use realloc_core::{Job, Window};
use realloc_reservation::quota::{fulfilled_quotas, reservation_count, Demand};
use std::hint::black_box;

fn bench_alignment(c: &mut Criterion) {
    c.bench_function("aligned_subwindow", |b| {
        let windows: Vec<Window> = (0..1024u64)
            .map(|i| Window::new(i * 7 + 3, i * 7 + 3 + (i % 113) + 1))
            .collect();
        b.iter(|| {
            for w in &windows {
                black_box(w.aligned_subwindow());
            }
        })
    });
}

fn bench_quota(c: &mut Criterion) {
    c.bench_function("fulfilled_quotas_chain8", |b| {
        let demands: Vec<Demand> = (1..=8u32)
            .map(|i| Demand {
                span: 64 << i,
                reservations: reservation_count(10 + i as u64, 1 << i, 0),
            })
            .collect();
        b.iter(|| black_box(fulfilled_quotas(black_box(&demands), 256)))
    });
}

fn bench_offline_edf(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_edf");
    for &n in &[1_000u64, 10_000] {
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job::unit(i, Window::new(i / 2, i / 2 + 64)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| black_box(edf_schedule(jobs, 4)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_alignment, bench_quota, bench_offline_edf
}
criterion_main!(benches);
