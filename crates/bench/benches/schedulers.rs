//! E12 — scheduler throughput (per-request latency) across policies,
//! active-set sizes, and machine counts.
//!
//! Regenerates the throughput comparison of EXPERIMENTS.md: the
//! reservation scheduler's per-request work stays flat as `n` grows, the
//! naive baseline is comparable on slack-heavy churn, and EDF re-planning
//! degrades linearly (it recomputes the whole schedule every request).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_baselines::{EdfRescheduler, NaivePeckingScheduler};
use realloc_core::{Reallocator, RequestSeq};
use realloc_multi::{ReallocatingScheduler, TheoremOneScheduler};
use realloc_reservation::ReservationScheduler;
use realloc_sim::harness::churn_seq;

fn replay<R: Reallocator>(sched: &mut R, seq: &RequestSeq) {
    for &r in seq.requests() {
        sched.request(r).expect("bench stream is serviceable");
    }
}

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_vs_n");
    for &n in &[100usize, 400, 1600] {
        let seq = churn_seq(1, 8, n, 1 << 12, false, 4 * n, 9);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(BenchmarkId::new("reservation", n), &seq, |b, seq| {
            b.iter(|| {
                let mut s = ReallocatingScheduler::from_factory(1, ReservationScheduler::new);
                replay(&mut s, seq);
            })
        });
        group.bench_with_input(BenchmarkId::new("reservation_trim", n), &seq, |b, seq| {
            b.iter(|| {
                let mut s = TheoremOneScheduler::theorem_one(1, 8);
                replay(&mut s, seq);
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &seq, |b, seq| {
            b.iter(|| {
                let mut s = ReallocatingScheduler::from_factory(1, NaivePeckingScheduler::new);
                replay(&mut s, seq);
            })
        });
        // EDF recomputes everything per request: only bench small n.
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("edf", n), &seq, |b, seq| {
                b.iter(|| {
                    let mut s = EdfRescheduler::new(1);
                    replay(&mut s, seq);
                })
            });
        }
    }
    group.finish();
}

fn bench_vs_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_vs_machines");
    for &m in &[1usize, 4, 16] {
        let seq = churn_seq(m, 16, 100 * m, 1 << 10, true, 3000, 14);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(BenchmarkId::new("theorem_one", m), &seq, |b, seq| {
            b.iter(|| {
                let mut s = TheoremOneScheduler::theorem_one(m, 16);
                replay(&mut s, seq);
            })
        });
    }
    group.finish();
}

fn bench_vs_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_vs_span");
    for &exp in &[8u32, 14, 20] {
        let seq = churn_seq(1, 8, 400, 1 << exp, false, 3000, 27);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("reservation", format!("2^{exp}")),
            &seq,
            |b, seq| {
                b.iter(|| {
                    let mut s = ReallocatingScheduler::from_factory(1, ReservationScheduler::new);
                    replay(&mut s, seq);
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vs_n, bench_vs_machines, bench_vs_span
}
criterion_main!(benches);
