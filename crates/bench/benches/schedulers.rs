//! E12 — scheduler throughput (per-request latency) across policies,
//! active-set sizes, and machine counts.
//!
//! Regenerates the throughput comparison of EXPERIMENTS.md: the
//! reservation scheduler's per-request work stays flat as `n` grows, the
//! naive baseline is comparable on slack-heavy churn, and EDF re-planning
//! degrades linearly (it recomputes the whole schedule every request).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_baselines::{EdfRescheduler, NaivePeckingScheduler};
use realloc_core::{Reallocator, Request, RequestSeq, SingleMachineReallocator};
use realloc_multi::{ReallocatingScheduler, TheoremOneScheduler};
use realloc_reservation::ReservationScheduler;
use realloc_sim::harness::churn_seq;
use realloc_workloads::{ChurnConfig, ChurnGenerator};

fn replay<R: Reallocator>(sched: &mut R, seq: &RequestSeq) {
    for &r in seq.requests() {
        sched.request(r).expect("bench stream is serviceable");
    }
}

/// E14 — the **bare** §4 `ReservationScheduler`, no trimming and no
/// machine/alignment wrappers, so `BENCH_reservation_churn.json` tracks
/// the rebalance/PLACE hot path itself (scratch buffers, occupancy
/// index, FxHash maps) without serving-layer overhead diluting it.
fn bench_reservation_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservation_churn");
    // Aligned single-machine churn, accepted verbatim by the bare
    // scheduler. Spans cover levels 0–2 of the paper tower.
    let aligned = |target: usize, len: usize, seed: u64| -> RequestSeq {
        let mut gen = ChurnGenerator::new(
            ChurnConfig {
                machines: 1,
                gamma: 8,
                horizon: 1 << 14,
                spans: vec![1, 4, 16, 64, 256, 1024],
                target_active: target,
                insert_bias: 0.6,
                unaligned: false,
            },
            seed,
        );
        gen.generate(len)
    };
    for &n in &[100usize, 400, 1600] {
        let seq = aligned(n, 6 * n, 17);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("insert_delete", n),
            &seq,
            |b, seq: &RequestSeq| {
                b.iter(|| {
                    let mut s = ReservationScheduler::new();
                    for &r in seq.requests() {
                        match r {
                            Request::Insert { id, window } => {
                                s.insert(id, window).expect("aligned γ=8 churn")
                            }
                            Request::Delete { id } => s.delete(id).expect("active job"),
                        };
                    }
                    s.active_count()
                })
            },
        );
    }
    // Delete-heavy phase: deletes trigger the eager rebalance path (quota
    // drops, sheds, MOVEs) that the scratch/occupancy work targets most.
    let build = aligned(800, 2400, 23);
    group.throughput(Throughput::Elements(build.len() as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("churn_drain"),
        &build,
        |b, seq: &RequestSeq| {
            b.iter(|| {
                let mut s = ReservationScheduler::new();
                let mut live: Vec<realloc_core::JobId> = Vec::new();
                for &r in seq.requests() {
                    match r {
                        Request::Insert { id, window } => {
                            s.insert(id, window).expect("aligned γ=8 churn");
                            live.push(id);
                        }
                        Request::Delete { id } => {
                            s.delete(id).expect("active job");
                            live.retain(|&j| j != id);
                        }
                    }
                }
                for id in live.drain(..) {
                    s.delete(id).expect("active job");
                }
                s.occupied_slots()
            })
        },
    );
    group.finish();
}

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_vs_n");
    for &n in &[100usize, 400, 1600] {
        let seq = churn_seq(1, 8, n, 1 << 12, false, 4 * n, 9);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(BenchmarkId::new("reservation", n), &seq, |b, seq| {
            b.iter(|| {
                let mut s = ReallocatingScheduler::from_factory(1, ReservationScheduler::new);
                replay(&mut s, seq);
            })
        });
        group.bench_with_input(BenchmarkId::new("reservation_trim", n), &seq, |b, seq| {
            b.iter(|| {
                let mut s = TheoremOneScheduler::theorem_one(1, 8);
                replay(&mut s, seq);
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &seq, |b, seq| {
            b.iter(|| {
                let mut s = ReallocatingScheduler::from_factory(1, NaivePeckingScheduler::new);
                replay(&mut s, seq);
            })
        });
        // EDF recomputes everything per request: only bench small n.
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("edf", n), &seq, |b, seq| {
                b.iter(|| {
                    let mut s = EdfRescheduler::new(1);
                    replay(&mut s, seq);
                })
            });
        }
    }
    group.finish();
}

fn bench_vs_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_vs_machines");
    for &m in &[1usize, 4, 16] {
        let seq = churn_seq(m, 16, 100 * m, 1 << 10, true, 3000, 14);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(BenchmarkId::new("theorem_one", m), &seq, |b, seq| {
            b.iter(|| {
                let mut s = TheoremOneScheduler::theorem_one(m, 16);
                replay(&mut s, seq);
            })
        });
    }
    group.finish();
}

fn bench_vs_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_vs_span");
    for &exp in &[8u32, 14, 20] {
        let seq = churn_seq(1, 8, 400, 1 << exp, false, 3000, 27);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("reservation", format!("2^{exp}")),
            &seq,
            |b, seq| {
                b.iter(|| {
                    let mut s = ReallocatingScheduler::from_factory(1, ReservationScheduler::new);
                    replay(&mut s, seq);
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reservation_churn, bench_vs_n, bench_vs_machines, bench_vs_span
}
criterion_main!(benches);
