//! `engine_replication` — what replication costs and buys:
//!
//! * **overhead** — the same journaled churn ingest, bare vs. wrapped in
//!   a [`Primary`] streaming every flush to one synchronously-applying
//!   in-process replica (the replica re-services and verifies every
//!   event, so this is the full price of one strongly-consistent
//!   follower, transport excluded);
//! * **catch-up** — replica bootstrap latency as a function of the tail
//!   length behind the latest checkpoint (the O(tail) claim, measured);
//! * **pipelining** — the same ingest through a loopback **TCP** replica
//!   at window sizes 1/8/32/128: window 1 is the stop-and-wait protocol
//!   (one ack round-trip per frame), a window ≥ 32 overlaps the
//!   replica's apply thread with the primary's next batch, with the
//!   end-of-run [`FrameSink::drain`] as the commit barrier;
//! * **transport isolation** — the same pipelined link against an
//!   ack-only peer that applies nothing, pricing the wire protocol
//!   separately from the replica's engine-sized apply cost;
//! * **quorum** — a [`ReplicationGroup`] of two TCP replicas at quorum
//!   2, driven with the pipelined group-commit pattern (ship batch *i*,
//!   commit through batch *i − 1*).
//!
//! Both sides run **with live telemetry registries attached** (engine,
//! streaming, and applying instruments) — the recorded numbers are the
//! observable configuration, as deployed.
//!
//! Results land in `BENCH_engine_replication.json` (see the criterion
//! shim's `BENCH_OUT_DIR`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_cluster::tcp::{LinkConfig, PrimaryLink, ReplicaServer};
use realloc_cluster::transport::FrameSink as _;
use realloc_cluster::{Frame, Primary, Replica, ReplicationGroup};
use realloc_engine::{BackendKind, Engine};
use realloc_sim::harness::{churn_seq, engine_config};
use realloc_telemetry::Telemetry;
use std::time::Duration;

const REQUESTS: usize = 10_000;
const BATCH: usize = 256;
const SHARDS: usize = 4;

fn journaled() -> Engine {
    let mut cfg = engine_config(SHARDS, 1, BackendKind::TheoremOne { gamma: 8 }, false);
    cfg.journal = true;
    cfg.retained_segments = usize::MAX;
    Engine::new(cfg)
}

/// A peer that speaks the link's wire protocol but applies nothing:
/// reads each length-prefixed frame, parses the `R <term> <seq> …`
/// header, and immediately acks `ok <seq>`. Exists to price the
/// transport separately from the replica's (inherently engine-sized)
/// apply cost.
fn ack_only_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    use realloc_core::textio::{read_frame, write_frame};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        stream.set_nodelay(true).ok();
        let mut write_half = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        while let Ok(Some(payload)) = read_frame(&mut reader, 1 << 24) {
            let header = payload.split(|&b| b == b'\n').next().unwrap_or(&payload);
            let Some(seq) = std::str::from_utf8(header)
                .ok()
                .and_then(|h| h.split_whitespace().nth(2))
            else {
                break;
            };
            if write_frame(&mut write_half, format!("ok {seq}").as_bytes()).is_err() {
                break;
            }
        }
    });
    (addr, handle)
}

fn bench_replication(c: &mut Criterion) {
    let seq = churn_seq(1, 8, 256, 1 << 12, false, REQUESTS, 31);
    let tel = Telemetry::new();
    let replica_tel = Telemetry::new();
    // One group for both phases: the shim writes one
    // `BENCH_engine_replication.json` per `finish()`.
    let mut group = c.benchmark_group("engine_replication");
    group.throughput(Throughput::Elements(seq.len() as u64));
    group.bench_with_input(BenchmarkId::new("bare_ingest", SHARDS), &seq, |b, seq| {
        b.iter(|| {
            let mut e = journaled();
            e.attach_telemetry(&tel);
            e.ingest(seq, BATCH)
        })
    });
    group.bench_with_input(
        BenchmarkId::new("replicated_ingest", SHARDS),
        &seq,
        |b, seq| {
            b.iter(|| {
                let mut primary = Primary::new(journaled(), 1).unwrap();
                primary.attach_telemetry(&tel);
                let mut replica = Replica::new();
                replica.attach_telemetry(&replica_tel);
                let (_, boot) = primary.bootstrap();
                for f in &boot {
                    replica.apply(f).unwrap();
                }
                for chunk in seq.requests().chunks(BATCH) {
                    for &r in chunk {
                        primary.submit(r);
                    }
                    let (_, frames) = primary.flush();
                    for f in &frames {
                        replica.apply(f).unwrap();
                    }
                }
                replica.events_applied()
            })
        },
    );

    // Pipelined TCP: the transport-included ingest at several window
    // sizes. Per-link telemetry is skipped (each iteration binds an
    // ephemeral port, which would mint fresh labeled instruments);
    // engine/primary/replica registries stay attached as above.
    for &window in &[1usize, 8, 32, 128] {
        let link_config = LinkConfig {
            window,
            drain_timeout: Duration::from_secs(30),
            ..LinkConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("tcp_ingest_window", window),
            &seq,
            |b, seq| {
                b.iter(|| {
                    let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
                    server
                        .replica()
                        .lock()
                        .unwrap()
                        .attach_telemetry(&replica_tel);
                    let mut link =
                        PrimaryLink::connect_with(server.addr(), link_config.clone()).unwrap();
                    let mut primary = Primary::new(journaled(), 1).unwrap();
                    primary.attach_telemetry(&tel);
                    let (_, boot) = primary.bootstrap();
                    for f in &boot {
                        link.send(f).unwrap();
                    }
                    for chunk in seq.requests().chunks(BATCH) {
                        for &r in chunk {
                            primary.submit(r);
                        }
                        let (_, frames) = primary.flush();
                        for f in &frames {
                            link.send(f).unwrap();
                        }
                    }
                    // Commit barrier: every frame acknowledged.
                    link.drain().unwrap().unwrap()
                })
            },
        );
    }

    // Transport isolation: the same pipelined link against an ack-only
    // peer (reads every frame, acks its sequence, applies nothing). A
    // real replica re-runs the full scheduler per batch, so on
    // few-core hosts `tcp_ingest_window` is CPU-bound near bare/2
    // regardless of transport; this row prices the *link itself* —
    // framing, window bookkeeping, syscalls, ack round-trips. Window 1
    // pays a stop-and-wait round-trip per frame; window ≥ 32 should
    // sit within a few percent of bare ingest.
    for &window in &[1usize, 32] {
        let link_config = LinkConfig {
            window,
            drain_timeout: Duration::from_secs(30),
            ..LinkConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("tcp_ship_window", window),
            &seq,
            |b, seq| {
                b.iter(|| {
                    let (addr, acker) = ack_only_server();
                    let mut link = PrimaryLink::connect_with(addr, link_config.clone()).unwrap();
                    let mut primary = Primary::new(journaled(), 1).unwrap();
                    primary.attach_telemetry(&tel);
                    let (_, boot) = primary.bootstrap();
                    for f in &boot {
                        link.send(f).unwrap();
                    }
                    for chunk in seq.requests().chunks(BATCH) {
                        for &r in chunk {
                            primary.submit(r);
                        }
                        let (_, frames) = primary.flush();
                        for f in &frames {
                            link.send(f).unwrap();
                        }
                    }
                    let acked = link.drain().unwrap().unwrap();
                    drop(link);
                    acker.join().unwrap();
                    acked
                })
            },
        );
    }

    // Quorum-of-2 over two TCP replicas, pipelined group commit: the
    // client-visible ack for batch i − 1 overlaps shipping batch i.
    group.bench_with_input(
        BenchmarkId::new("tcp_quorum2_ingest", 32),
        &seq,
        |b, seq| {
            let link_config = LinkConfig {
                window: 32,
                drain_timeout: Duration::from_secs(30),
                ..LinkConfig::default()
            };
            b.iter(|| {
                let servers = [
                    ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap(),
                    ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap(),
                ];
                let mut rg =
                    ReplicationGroup::new(Primary::new(journaled(), 1).unwrap(), 2).unwrap();
                for server in &servers {
                    let link =
                        PrimaryLink::connect_with(server.addr(), link_config.clone()).unwrap();
                    rg.add_replica(Box::new(link)).unwrap();
                }
                rg.primary_mut().attach_telemetry(&tel);
                let mut previous = 0u64;
                for chunk in seq.requests().chunks(BATCH) {
                    for &r in chunk {
                        rg.submit(r);
                    }
                    let (_, shipped) = rg.flush_now();
                    rg.commit_through(previous).unwrap();
                    previous = shipped;
                }
                rg.commit().unwrap()
            })
        },
    );

    // Catch-up: one primary per tail length — checkpoint, then leave
    // `tail` un-checkpointed events behind it. A joiner bootstraps from
    // the checkpoint snapshot + tail frames; time that bootstrap.
    for &tail in &[512usize, 2048, 8192] {
        let seq = churn_seq(1, 8, 256, 1 << 12, false, 4096 + tail, 67);
        let checkpoint_at = seq.len() - tail;
        let mut primary = Primary::new(journaled(), 1).unwrap();
        primary.attach_telemetry(&tel);
        let mut checkpointed = false;
        for chunk in seq.requests().chunks(BATCH) {
            for &r in chunk {
                primary.submit(r);
            }
            primary.flush();
            if !checkpointed
                && primary.engine().journal().unwrap().total_events() as usize >= checkpoint_at
            {
                primary.checkpoint();
                checkpointed = true;
            }
        }
        let (_, boot): (Vec<Frame>, Vec<Frame>) = primary.bootstrap();
        let tail_events = primary.engine().journal().unwrap().tail_events().len();
        assert!(checkpointed && tail_events > 0, "tail must be non-empty");
        group.throughput(Throughput::Elements(tail_events as u64));
        group.bench_function(BenchmarkId::new("catch_up_tail", tail_events), |b| {
            b.iter(|| {
                let mut joiner = Replica::new();
                joiner.attach_telemetry(&replica_tel);
                for f in &boot {
                    joiner.apply(f).unwrap();
                }
                joiner.events_applied()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replication
}
criterion_main!(benches);
