//! `engine_replication` — what replication costs and buys:
//!
//! * **overhead** — the same journaled churn ingest, bare vs. wrapped in
//!   a [`Primary`] streaming every flush to one synchronously-applying
//!   in-process replica (the replica re-services and verifies every
//!   event, so this is the full price of one strongly-consistent
//!   follower, transport excluded);
//! * **catch-up** — replica bootstrap latency as a function of the tail
//!   length behind the latest checkpoint (the O(tail) claim, measured).
//!
//! Both sides run **with live telemetry registries attached** (engine,
//! streaming, and applying instruments) — the recorded numbers are the
//! observable configuration, as deployed.
//!
//! Results land in `BENCH_engine_replication.json` (see the criterion
//! shim's `BENCH_OUT_DIR`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_cluster::{Frame, Primary, Replica};
use realloc_engine::{BackendKind, Engine};
use realloc_sim::harness::{churn_seq, engine_config};
use realloc_telemetry::Telemetry;

const REQUESTS: usize = 10_000;
const BATCH: usize = 256;
const SHARDS: usize = 4;

fn journaled() -> Engine {
    let mut cfg = engine_config(SHARDS, 1, BackendKind::TheoremOne { gamma: 8 }, false);
    cfg.journal = true;
    cfg.retained_segments = usize::MAX;
    Engine::new(cfg)
}

fn bench_replication(c: &mut Criterion) {
    let seq = churn_seq(1, 8, 256, 1 << 12, false, REQUESTS, 31);
    let tel = Telemetry::new();
    let replica_tel = Telemetry::new();
    // One group for both phases: the shim writes one
    // `BENCH_engine_replication.json` per `finish()`.
    let mut group = c.benchmark_group("engine_replication");
    group.throughput(Throughput::Elements(seq.len() as u64));
    group.bench_with_input(BenchmarkId::new("bare_ingest", SHARDS), &seq, |b, seq| {
        b.iter(|| {
            let mut e = journaled();
            e.attach_telemetry(&tel);
            e.ingest(seq, BATCH)
        })
    });
    group.bench_with_input(
        BenchmarkId::new("replicated_ingest", SHARDS),
        &seq,
        |b, seq| {
            b.iter(|| {
                let mut primary = Primary::new(journaled(), 1).unwrap();
                primary.attach_telemetry(&tel);
                let mut replica = Replica::new();
                replica.attach_telemetry(&replica_tel);
                let (_, boot) = primary.bootstrap();
                for f in &boot {
                    replica.apply(f).unwrap();
                }
                for chunk in seq.requests().chunks(BATCH) {
                    for &r in chunk {
                        primary.submit(r);
                    }
                    let (_, frames) = primary.flush();
                    for f in &frames {
                        replica.apply(f).unwrap();
                    }
                }
                replica.events_applied()
            })
        },
    );

    // Catch-up: one primary per tail length — checkpoint, then leave
    // `tail` un-checkpointed events behind it. A joiner bootstraps from
    // the checkpoint snapshot + tail frames; time that bootstrap.
    for &tail in &[512usize, 2048, 8192] {
        let seq = churn_seq(1, 8, 256, 1 << 12, false, 4096 + tail, 67);
        let checkpoint_at = seq.len() - tail;
        let mut primary = Primary::new(journaled(), 1).unwrap();
        primary.attach_telemetry(&tel);
        let mut checkpointed = false;
        for chunk in seq.requests().chunks(BATCH) {
            for &r in chunk {
                primary.submit(r);
            }
            primary.flush();
            if !checkpointed
                && primary.engine().journal().unwrap().total_events() as usize >= checkpoint_at
            {
                primary.checkpoint();
                checkpointed = true;
            }
        }
        let (_, boot): (Vec<Frame>, Vec<Frame>) = primary.bootstrap();
        let tail_events = primary.engine().journal().unwrap().tail_events().len();
        assert!(checkpointed && tail_events > 0, "tail must be non-empty");
        group.throughput(Throughput::Elements(tail_events as u64));
        group.bench_function(BenchmarkId::new("catch_up_tail", tail_events), |b| {
            b.iter(|| {
                let mut joiner = Replica::new();
                joiner.attach_telemetry(&replica_tel);
                for f in &boot {
                    joiner.apply(f).unwrap();
                }
                joiner.events_applied()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replication
}
criterion_main!(benches);
