//! E13 bench — batched engine ingestion across shard counts.
//!
//! One fixed churn workload (unaligned windows, γ = 8) is replayed
//! through the engine at 1–16 shards, sequential and parallel flush, to
//! seed the serving-layer perf trajectory. Results land in
//! `BENCH_engine_ingest.json` (see the criterion shim's `BENCH_OUT_DIR`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_engine::Engine;
use realloc_sim::harness::{churn_seq, engine_config};

const REQUESTS: usize = 20_000;
const BATCH: usize = 256;

fn bench_engine_ingest(c: &mut Criterion) {
    let backend = realloc_engine::BackendKind::TheoremOne { gamma: 8 };
    let seq = churn_seq(16, 8, 1024, 1 << 12, true, REQUESTS, 13);
    let mut group = c.benchmark_group("engine_ingest");
    group.throughput(Throughput::Elements(seq.len() as u64));
    for &shards in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("sequential", shards), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(shards, 1, backend, false));
                e.ingest(seq, BATCH)
            })
        });
    }
    for &shards in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("parallel", shards), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(shards, 1, backend, true));
                e.ingest(seq, BATCH)
            })
        });
    }
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let backend = realloc_engine::BackendKind::TheoremOne { gamma: 8 };
    let seq = churn_seq(4, 8, 256, 1 << 12, true, REQUESTS, 29);
    let mut group = c.benchmark_group("engine_batch_size");
    group.throughput(Throughput::Elements(seq.len() as u64));
    for &batch in &[16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(4, 1, backend, false));
                e.ingest(seq, batch)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_ingest, bench_batch_size
}
criterion_main!(benches);
