//! E13 bench — batched engine ingestion across shard counts, plus the
//! durability story's headline number: cold genesis replay vs.
//! checkpoint + tail recovery.
//!
//! One fixed churn workload (unaligned windows, γ = 8) is replayed
//! through the engine at 1–16 shards, sequential and parallel flush, to
//! seed the serving-layer perf trajectory. Ingest runs **with a live
//! telemetry registry attached** — the recorded numbers are the
//! instrumented serving configuration, as deployed (the uninstrumented
//! delta is measured separately by the `telemetry_overhead` group).
//! Results land in `BENCH_engine_ingest.json`; the recovery comparison
//! in `BENCH_engine_recovery.json` (see the criterion shim's
//! `BENCH_OUT_DIR`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_engine::{BackendKind, Engine, EngineConfig, Journal};
use realloc_sim::harness::{churn_seq, engine_config};
use realloc_store::{DurableStore, MemIo, RecoverFromDir, StoreIo};
use realloc_telemetry::Telemetry;
use std::path::Path;
use std::sync::Arc;

const REQUESTS: usize = 20_000;
const BATCH: usize = 256;

/// A fresh engine with a [`DurableStore`] over `MemIo` attached. The
/// in-memory backing isolates the store's own cost (framing, CRC,
/// group-commit bookkeeping, checkpoint/retention churn) from device
/// fsync latency, which varies by orders of magnitude across hardware —
/// the device-bound number is what `examples/crash_recovery.rs` shows
/// against the real filesystem.
fn durable_engine(mut cfg: EngineConfig) -> Engine {
    cfg.journal = true;
    let mut engine = Engine::new(cfg);
    let io = Arc::new(MemIo::new()) as Arc<dyn StoreIo>;
    let store = DurableStore::create(io, Path::new("/bench"), engine.journal().unwrap().config())
        .expect("create store");
    engine.attach_durability(Box::new(store)).expect("attach");
    engine
}

fn bench_engine_ingest(c: &mut Criterion) {
    let backend = realloc_engine::BackendKind::TheoremOne { gamma: 8 };
    let seq = churn_seq(16, 8, 1024, 1 << 12, true, REQUESTS, 13);
    let tel = Telemetry::new();
    let mut group = c.benchmark_group("engine_ingest");
    group.throughput(Throughput::Elements(seq.len() as u64));
    for &shards in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("sequential", shards), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(shards, 1, backend, false));
                e.attach_telemetry(&tel);
                e.ingest(seq, BATCH)
            })
        });
    }
    for &shards in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("parallel", shards), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(shards, 1, backend, true));
                e.attach_telemetry(&tel);
                e.ingest(seq, BATCH)
            })
        });
    }
    // Durability on vs. off at the 4-shard reference point: `journaled`
    // pays in-memory journaling only; `durable` adds the on-disk store
    // tee with one group commit per batch.
    group.bench_with_input(BenchmarkId::new("journaled", 4), &seq, |b, seq| {
        b.iter(|| {
            let mut cfg = engine_config(4, 1, backend, false);
            cfg.journal = true;
            let mut e = Engine::new(cfg);
            e.attach_telemetry(&tel);
            e.ingest(seq, BATCH)
        })
    });
    group.bench_with_input(BenchmarkId::new("durable", 4), &seq, |b, seq| {
        b.iter(|| {
            let mut e = durable_engine(engine_config(4, 1, backend, false));
            e.attach_telemetry(&tel);
            for chunk in seq.requests().chunks(BATCH) {
                for &r in chunk {
                    e.submit(r);
                }
                e.flush_durable().expect("group commit");
            }
            e
        })
    });
    group.finish();
}

fn bench_batch_size(c: &mut Criterion) {
    let backend = realloc_engine::BackendKind::TheoremOne { gamma: 8 };
    let seq = churn_seq(4, 8, 256, 1 << 12, true, REQUESTS, 29);
    let mut group = c.benchmark_group("engine_batch_size");
    group.throughput(Throughput::Elements(seq.len() as u64));
    for &batch in &[16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(4, 1, backend, false));
                e.ingest(seq, batch)
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // One journaled 100k-request run with periodic checkpoints, genesis
    // retained so the same serialized journal supports both paths:
    // `Journal::replay` re-services all 100k events from genesis;
    // `Engine::recover` restores the latest checkpoint and replays only
    // the tail. The acceptance bar — byte-identical placements and
    // metrics between the two — is asserted before timing anything.
    const REQUESTS: usize = 100_000;
    const BATCH: usize = 256;
    const CHECKPOINT_EVERY: usize = 50; // batches
    let seq = churn_seq(8, 8, 512, 1 << 12, true, REQUESTS, 97);
    let mut cfg = engine_config(8, 1, BackendKind::TheoremOne { gamma: 8 }, false);
    cfg.journal = true;
    cfg.retained_segments = usize::MAX;
    let mut engine = Engine::new(cfg);
    for (i, chunk) in seq.requests().chunks(BATCH).enumerate() {
        for &r in chunk {
            engine.submit(r);
        }
        engine.flush();
        if (i + 1) % CHECKPOINT_EVERY == 0 {
            engine.checkpoint();
        }
    }
    let text = engine.journal().unwrap().to_text();

    let cold = Journal::from_text(&text).unwrap().replay().unwrap();
    let fast = Engine::recover(text.as_bytes()).unwrap();
    assert_eq!(cold.placements(), engine.placements());
    assert_eq!(fast.placements(), engine.placements());
    assert_eq!(fast.metrics(), engine.metrics());
    let tail = engine.journal().unwrap().tail_events().len();

    let mut group = c.benchmark_group("engine_recovery");
    group.throughput(Throughput::Elements(seq.len() as u64));
    group.bench_function(BenchmarkId::new("cold_replay_events", REQUESTS), |b| {
        b.iter(|| Journal::from_text(&text).unwrap().replay().unwrap())
    });
    group.bench_function(BenchmarkId::new("checkpoint_recover_tail", tail), |b| {
        b.iter(|| Engine::recover(text.as_bytes()).unwrap())
    });

    // Recover-from-disk: the same workload written through the durable
    // store (realistic retention, so the directory holds the latest
    // checkpoint plus the tail segments), then recovered by the full
    // on-disk path — directory scan, CRC verification of every record,
    // journal reassembly, checkpoint restore, tail replay.
    let io = Arc::new(MemIo::new());
    let mut cfg = engine_config(8, 1, BackendKind::TheoremOne { gamma: 8 }, false);
    cfg.journal = true;
    cfg.retained_segments = 4;
    let mut durable = Engine::new(cfg);
    let store = DurableStore::create(
        Arc::clone(&io) as Arc<dyn StoreIo>,
        Path::new("/bench"),
        durable.journal().unwrap().config(),
    )
    .expect("create store");
    durable.attach_durability(Box::new(store)).expect("attach");
    for (i, chunk) in seq.requests().chunks(BATCH).enumerate() {
        for &r in chunk {
            durable.submit(r);
        }
        durable.flush_durable().expect("group commit");
        if (i + 1) % CHECKPOINT_EVERY == 0 {
            durable.checkpoint();
            assert!(durable.durability_error().is_none());
        }
    }
    let from_disk = Engine::recover_from_store(&*io, Path::new("/bench")).unwrap();
    assert_eq!(from_disk.state_digest(), durable.state_digest());
    let disk_tail = durable.journal().unwrap().tail_events().len();
    group.bench_function(BenchmarkId::new("recover_from_disk", disk_tail), |b| {
        b.iter(|| Engine::recover_from_store(&*io, Path::new("/bench")).unwrap())
    });
    group.finish();
}

fn bench_resize(c: &mut Criterion) {
    // Elastic resharding latency as a function of jobs per shard: build
    // a loaded 4-shard engine, then measure *online* resizes — each
    // iteration flips the live engine between 4 and 8 shards, i.e. one
    // full snapshot-ship of every active job onto the rerouted shard
    // set (alternating grow and shrink, so the reported time is the
    // mean of the two). The stream is one-machine dense, so any split
    // of it fits any shard count and every resize succeeds. Results
    // land in `BENCH_engine_resize.json`; the parameter is active jobs
    // per shard at the 4-shard end.
    let backend = BackendKind::TheoremOne { gamma: 8 };
    let mut group = c.benchmark_group("engine_resize");
    for &target_active in &[256usize, 1024, 4096] {
        let seq = churn_seq(1, 8, target_active, 1 << 14, false, target_active * 3, 71);
        let mut cfg = engine_config(4, 1, backend, false);
        cfg.journal = false;
        let mut engine = Engine::new(cfg);
        engine.ingest(&seq, 512);
        let jobs = engine.active_count();
        assert!(jobs > target_active / 2, "workload too shallow: {jobs}");
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_function(BenchmarkId::new("flip_4_8", jobs / 4), |b| {
            b.iter(|| {
                let to = if engine.config().shards == 4 { 8 } else { 4 };
                engine.resize(to).expect("dense stream resize")
            })
        });
        assert!(engine.validate().is_ok(), "bench left an invalid engine");
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_ingest, bench_batch_size, bench_recovery, bench_resize
}
criterion_main!(benches);
