//! `telemetry_overhead` — what observing the engine costs:
//!
//! * **ingest A/B** — the same churn ingest with a live registry
//!   attached vs. a disabled handle (the number the CI overhead guard
//!   polices: the instrumented run must stay within 2%);
//! * **trace-propagation A/B** — the same batched flush loop with a
//!   [`realloc_telemetry::TraceCtx`] armed on every batch vs. none
//!   (what causal request tracing costs the flush path when every
//!   single batch is sampled — production samples far fewer);
//! * **raw instrument ops** — batched costs of the individual hot-path
//!   primitives (counter add, histogram record, trace point, span
//!   begin/end), per 1024 operations so the shim's timer resolution
//!   doesn't swamp them;
//! * **exposition** — `render_text` over a populated registry (the
//!   per-scrape cost an [`realloc_telemetry::ObsServer`] pays).
//!
//! Results land in `BENCH_telemetry_overhead.json` (see the criterion
//! shim's `BENCH_OUT_DIR`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_engine::{BackendKind, Engine};
use realloc_sim::harness::{churn_seq, engine_config};
use realloc_telemetry::{Severity, Telemetry, TraceCtx};

const REQUESTS: usize = 20_000;
const BATCH: usize = 256;
const OPS: u64 = 1024;

fn bench_telemetry(c: &mut Criterion) {
    let backend = BackendKind::TheoremOne { gamma: 8 };
    let seq = churn_seq(4, 8, 256, 1 << 12, true, REQUESTS, 13);
    let mut group = c.benchmark_group("telemetry_overhead");

    group.throughput(Throughput::Elements(seq.len() as u64));
    let tel = Telemetry::new();
    group.bench_with_input(
        BenchmarkId::new("ingest", "instrumented"),
        &seq,
        |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(4, 1, backend, false));
                e.attach_telemetry(&tel);
                e.ingest(seq, BATCH)
            })
        },
    );
    let off = realloc_telemetry::disabled();
    group.bench_with_input(BenchmarkId::new("ingest", "disabled"), &seq, |b, seq| {
        b.iter(|| {
            let mut e = Engine::new(engine_config(4, 1, backend, false));
            e.attach_telemetry(&off);
            e.ingest(seq, BATCH)
        })
    });

    // Trace propagation A/B: the identical submit/flush loop, with a
    // trace context armed on every batch vs. never. Worst-case
    // sampling — the gap is the full per-batch tracing bill.
    for (label, traced) in [("on", true), ("off", false)] {
        group.bench_with_input(BenchmarkId::new("trace", label), &seq, |b, seq| {
            b.iter(|| {
                let mut e = Engine::new(engine_config(4, 1, backend, false));
                e.attach_telemetry(&tel);
                let mut processed = 0usize;
                for (i, chunk) in seq.requests().chunks(BATCH).enumerate() {
                    for &r in chunk {
                        e.submit(r);
                    }
                    let trace = traced.then(|| TraceCtx::mint(i as u64, i as u64));
                    let report = e
                        .flush_batch_traced(realloc_engine::FlushMode::Immediate, trace)
                        .expect("flush");
                    processed += report.map_or(0, |r| r.processed());
                }
                processed
            })
        });
    }

    // Raw primitives, batched: per-iteration time is OPS operations.
    group.throughput(Throughput::Elements(OPS));
    let counter = tel.counter("bench_counter_total");
    group.bench_function(BenchmarkId::new("ops", "counter_add"), |b| {
        b.iter(|| {
            for i in 0..OPS {
                counter.add(i & 1);
            }
            counter.get()
        })
    });
    let hist = tel.histogram("bench_hist_nanos");
    group.bench_function(BenchmarkId::new("ops", "histogram_record"), |b| {
        b.iter(|| {
            for i in 0..OPS {
                hist.record(i * 97);
            }
        })
    });
    group.bench_function(BenchmarkId::new("ops", "trace_point"), |b| {
        b.iter(|| {
            for i in 0..OPS {
                tel.point(Severity::Info, "bench", i, i * 2);
            }
        })
    });
    group.bench_function(BenchmarkId::new("ops", "span"), |b| {
        b.iter(|| {
            for i in 0..OPS {
                drop(tel.span("bench_span", i));
            }
        })
    });

    // Exposition: one full scrape of the registry the ingest runs built.
    group.throughput(Throughput::Elements(1));
    group.bench_function(BenchmarkId::new("scrape", "render_text"), |b| {
        b.iter(|| tel.render_text().len())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_telemetry
}
criterion_main!(benches);
