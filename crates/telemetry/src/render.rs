//! Prometheus-style text exposition for the registry, plus the tiny
//! sample parser observers use to read values back out of a dump.
//!
//! Counters and gauges render as `name value` lines under a `# TYPE`
//! comment. Histograms render as summaries: `name{quantile="0.5"}`,
//! `{quantile="0.95"}`, `{quantile="0.99"}` plus `_sum`, `_count` and
//! `_max` companions. Metric names may carry a label set inline (e.g.
//! `cluster_link_acked_seq{replica="127.0.0.1:9001"}`); the renderer
//! splices extra labels (like `quantile`) into an existing set and moves
//! suffixes (`_sum`) onto the base name, so output is always legal
//! Prometheus text format.

use crate::hist::Histogram;
use std::fmt::Write as _;

/// Splits `name` into its base and its (brace-enclosed) label set.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// `name` with one more `key="value"` label spliced in.
pub(crate) fn with_label(name: &str, key: &str, value: &str) -> String {
    let (base, labels) = split_labels(name);
    if labels.is_empty() {
        format!("{base}{{{key}=\"{value}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{base}{{{inner},{key}=\"{value}\"}}")
    }
}

/// `name` with `suffix` appended to the base, labels preserved.
fn with_suffix(name: &str, suffix: &str) -> String {
    let (base, labels) = split_labels(name);
    format!("{base}{suffix}{labels}")
}

fn type_line(out: &mut String, last_base: &mut String, name: &str, kind: &str) {
    let (base, _) = split_labels(name);
    if base != last_base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        *last_base = base.to_string();
    }
}

/// Renders the full registry contents (already sorted by name) as
/// Prometheus text format.
pub(crate) fn render_registry(
    counters: &[(String, u64)],
    gauges: &[(String, u64)],
    hists: &[(String, Histogram)],
) -> String {
    let mut out = String::with_capacity(1024);
    let mut last_base = String::new();
    for (name, value) in counters {
        type_line(&mut out, &mut last_base, name, "counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in gauges {
        type_line(&mut out, &mut last_base, name, "gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in hists {
        type_line(&mut out, &mut last_base, name, "summary");
        let (p50, p95, p99) = h.percentiles();
        for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
            let _ = writeln!(out, "{} {v}", with_label(name, "quantile", q));
        }
        let _ = writeln!(out, "{} {}", with_suffix(name, "_sum"), h.sum());
        let _ = writeln!(out, "{} {}", with_suffix(name, "_count"), h.count());
        let _ = writeln!(out, "{} {}", with_suffix(name, "_max"), h.max());
    }
    out
}

/// Reads one sample back out of a rendered dump: the value on the line
/// whose metric name (labels included) is exactly `name`. This is how
/// pollers consume [`crate::Telemetry::render_text`] output — e.g.
/// `parse_sample(&text, "cluster_next_seq")` or
/// `parse_sample(&text, r#"engine_flush_total_nanos{quantile="0.95"}"#)`.
pub fn parse_sample(text: &str, name: &str) -> Option<u64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((n, v)) = line.rsplit_once(' ') {
            if n == name {
                return v.parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_splicing() {
        assert_eq!(with_label("x", "q", "0.5"), "x{q=\"0.5\"}");
        assert_eq!(with_label("x{a=\"1\"}", "q", "0.5"), "x{a=\"1\",q=\"0.5\"}");
        assert_eq!(with_suffix("x{a=\"1\"}", "_sum"), "x_sum{a=\"1\"}");
        assert_eq!(with_suffix("x", "_sum"), "x_sum");
    }

    #[test]
    fn render_and_parse_round_trip() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let text = render_registry(
            &[("reqs_total".into(), 7)],
            &[("jobs{shard=\"2\"}".into(), 42)],
            &[("lat_nanos".into(), h)],
        );
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("# TYPE jobs gauge"));
        assert!(text.contains("# TYPE lat_nanos summary"));
        assert_eq!(parse_sample(&text, "reqs_total"), Some(7));
        assert_eq!(parse_sample(&text, "jobs{shard=\"2\"}"), Some(42));
        assert_eq!(parse_sample(&text, "lat_nanos_count"), Some(4));
        assert_eq!(parse_sample(&text, "lat_nanos_sum"), Some(100));
        assert_eq!(parse_sample(&text, "lat_nanos_max"), Some(40));
        assert!(parse_sample(&text, "lat_nanos{quantile=\"0.5\"}").is_some());
        assert_eq!(parse_sample(&text, "missing"), None);
    }
}
