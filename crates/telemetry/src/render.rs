//! Prometheus-style text exposition for the registry, plus the tiny
//! sample parser observers use to read values back out of a dump.
//!
//! Counters and gauges render as `name value` lines under a `# TYPE`
//! comment. Histograms render as summaries: `name{quantile="0.5"}`,
//! `{quantile="0.95"}`, `{quantile="0.99"}` plus `_sum`, `_count` and
//! `_max` companions. Metric names may carry a label set inline (e.g.
//! `cluster_link_acked_seq{replica="127.0.0.1:9001"}`); the renderer
//! splices extra labels (like `quantile`) into an existing set and moves
//! suffixes (`_sum`) onto the base name, so output is always legal
//! Prometheus text format.

use crate::hist::Histogram;
use std::fmt::Write as _;

/// Splits `name` into its base and its (brace-enclosed) label set.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// `name` with one more `key="value"` label spliced in.
pub(crate) fn with_label(name: &str, key: &str, value: &str) -> String {
    let (base, labels) = split_labels(name);
    if labels.is_empty() {
        format!("{base}{{{key}=\"{value}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{base}{{{inner},{key}=\"{value}\"}}")
    }
}

/// `name` with `suffix` appended to the base, labels preserved.
fn with_suffix(name: &str, suffix: &str) -> String {
    let (base, labels) = split_labels(name);
    format!("{base}{suffix}{labels}")
}

fn type_line(out: &mut String, last_base: &mut String, name: &str, kind: &str) {
    let (base, _) = split_labels(name);
    if base != last_base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        *last_base = base.to_string();
    }
}

/// One instrument to render, in the globally sorted sequence.
enum Row<'a> {
    Scalar(&'a str, u64, &'a str),
    Summary(&'a str, &'a Histogram),
}

/// Renders the full registry contents as Prometheus text format in ONE
/// globally name-sorted sequence (counters, gauges and histograms
/// interleaved by name, ties broken by kind). The ordering is pinned by
/// a test: fleet aggregators diff successive scrapes and snapshot tests
/// compare dumps byte-for-byte, so it must be deterministic and stable
/// across runs and instrument-registration orders.
pub(crate) fn render_registry(
    counters: &[(String, u64)],
    gauges: &[(String, u64)],
    hists: &[(String, Histogram)],
) -> String {
    let mut rows: Vec<(&str, Row<'_>)> =
        Vec::with_capacity(counters.len() + gauges.len() + hists.len());
    for (name, value) in counters {
        rows.push((name, Row::Scalar(name, *value, "counter")));
    }
    for (name, value) in gauges {
        rows.push((name, Row::Scalar(name, *value, "gauge")));
    }
    for (name, h) in hists {
        rows.push((name, Row::Summary(name, h)));
    }
    rows.sort_by(|(a, ra), (b, rb)| a.cmp(b).then_with(|| kind_rank(ra).cmp(&kind_rank(rb))));
    let mut out = String::with_capacity(1024);
    let mut last_base = String::new();
    for (_, row) in &rows {
        match row {
            Row::Scalar(name, value, kind) => {
                type_line(&mut out, &mut last_base, name, kind);
                let _ = writeln!(out, "{name} {value}");
            }
            Row::Summary(name, h) => {
                type_line(&mut out, &mut last_base, name, "summary");
                let (p50, p95, p99) = h.percentiles();
                for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
                    let _ = writeln!(out, "{} {v}", with_label(name, "quantile", q));
                }
                let _ = writeln!(out, "{} {}", with_suffix(name, "_sum"), h.sum());
                let _ = writeln!(out, "{} {}", with_suffix(name, "_count"), h.count());
                let _ = writeln!(out, "{} {}", with_suffix(name, "_max"), h.max());
            }
        }
    }
    out
}

fn kind_rank(row: &Row<'_>) -> u8 {
    match row {
        Row::Scalar(_, _, "counter") => 0,
        Row::Scalar(..) => 1,
        Row::Summary(..) => 2,
    }
}

/// Reads one sample back out of a rendered dump: the value on the line
/// whose metric name (labels included) is exactly `name`. This is how
/// pollers consume [`crate::Telemetry::render_text`] output — e.g.
/// `parse_sample(&text, "cluster_next_seq")` or
/// `parse_sample(&text, r#"engine_flush_total_nanos{quantile="0.95"}"#)`.
pub fn parse_sample(text: &str, name: &str) -> Option<u64> {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((n, v)) = line.rsplit_once(' ') {
            if n == name {
                return v.parse().ok();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_splicing() {
        assert_eq!(with_label("x", "q", "0.5"), "x{q=\"0.5\"}");
        assert_eq!(with_label("x{a=\"1\"}", "q", "0.5"), "x{a=\"1\",q=\"0.5\"}");
        assert_eq!(with_suffix("x{a=\"1\"}", "_sum"), "x_sum{a=\"1\"}");
        assert_eq!(with_suffix("x", "_sum"), "x_sum");
    }

    #[test]
    fn render_and_parse_round_trip() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let text = render_registry(
            &[("reqs_total".into(), 7)],
            &[("jobs{shard=\"2\"}".into(), 42)],
            &[("lat_nanos".into(), h)],
        );
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("# TYPE jobs gauge"));
        assert!(text.contains("# TYPE lat_nanos summary"));
        assert_eq!(parse_sample(&text, "reqs_total"), Some(7));
        assert_eq!(parse_sample(&text, "jobs{shard=\"2\"}"), Some(42));
        assert_eq!(parse_sample(&text, "lat_nanos_count"), Some(4));
        assert_eq!(parse_sample(&text, "lat_nanos_sum"), Some(100));
        assert_eq!(parse_sample(&text, "lat_nanos_max"), Some(40));
        assert!(parse_sample(&text, "lat_nanos{quantile=\"0.5\"}").is_some());
        assert_eq!(parse_sample(&text, "missing"), None);
    }

    /// Pins the exposition ordering: one globally name-sorted sequence,
    /// regardless of instrument kind or registration order. Aggregator
    /// diffs and snapshot tests rely on this being byte-stable.
    #[test]
    fn output_is_globally_name_sorted() {
        let mut h = Histogram::new();
        h.record(5);
        let text = render_registry(
            &[("z_total".into(), 1), ("a_total".into(), 2)],
            &[("m_gauge".into(), 3), ("b_gauge".into(), 4)],
            &[("k_nanos".into(), h)],
        );
        assert_eq!(
            text,
            "\
# TYPE a_total counter
a_total 2
# TYPE b_gauge gauge
b_gauge 4
# TYPE k_nanos summary
k_nanos{quantile=\"0.5\"} 5
k_nanos{quantile=\"0.95\"} 5
k_nanos{quantile=\"0.99\"} 5
k_nanos_sum 5
k_nanos_count 1
k_nanos_max 5
# TYPE m_gauge gauge
m_gauge 3
# TYPE z_total counter
z_total 1
"
        );
    }
}
