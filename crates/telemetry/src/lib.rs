//! # realloc-telemetry
//!
//! Unified observability for the realloc serving stack: a **metrics
//! registry** (counters, gauges, log-bucketed latency histograms), a
//! fixed-capacity **trace ring buffer** for hot-path spans and lifecycle
//! events, a Prometheus-style **text exposition** and a tiny TCP
//! **[`ObsServer`]** so every node of a replicated cluster can be polled
//! live. Std-only, like the rest of the workspace.
//!
//! # Design
//!
//! A [`Telemetry`] handle is either *enabled* (it owns a shared
//! registry, trace buffer and [`Clock`]) or *[`disabled()`]* (every
//! operation is a no-op on a `None`). Components take a `&Telemetry` once at attach
//! time, look up their named instruments, and keep the returned
//! [`Counter`]/[`Gauge`]/[`Histo`] handles — the name→instrument map is
//! only locked at registration, never on the hot path. Counters and
//! gauges are plain `AtomicU64`s. Histograms sit behind a mutex, but the
//! intended pattern (and the one the engine uses) is *per-shard local
//! accumulation*: record into a private [`Histogram`] and
//! [`Histo::merge`] it into the shared one once per flush, so the lock
//! is taken O(shards) times per flush rather than per sample.
//!
//! # Naming scheme
//!
//! `<layer>_<what>[_<unit>]`, with `_total` for counters and `_nanos`
//! for durations: `engine_requests_total`, `engine_flush_barrier_nanos`,
//! `cluster_replica_last_seq`. A label set may be embedded in the name
//! via [`labeled`] (e.g. `cluster_link_acked_seq{replica="…"}`); the
//! renderer understands it and splices `quantile` labels in correctly.
//!
//! # Persistence
//!
//! Registry contents serialize to the workspace snapshot text format
//! ([`Telemetry::snapshot_text`] / [`Telemetry::restore_registry`]), so
//! lifetime telemetry survives checkpoint → restore alongside engine
//! state. Deliberately, the registry is **not** part of any engine's
//! digested state: replication digests must depend only on the replayed
//! event stream, never on wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod hist;
pub mod obs;
pub mod render;
pub mod trace;

pub use agg::{Collector, CollectorConfig, FleetSnapshot, NodeRole, NodeSpec, NodeStatus};
pub use hist::{Histogram, HIST_BUCKETS};
pub use obs::{fetch_metrics, fetch_trace, HealthCheck, ObsClient, ObsConfig, ObsServer};
pub use realloc_core::clock::Clock;
pub use render::parse_sample;
pub use trace::{Severity, TraceBuffer, TraceCtx, TraceEvent, TraceKind};

use realloc_core::snapshot::{Fields, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default retained-event capacity of the trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Default cap on events rendered by [`Telemetry::render_trace`]. A full
/// 1024-entry ring renders to tens of kilobytes — more than casual
/// clients budget for one frame — so the bare `trace` verb shows the
/// newest slice and callers page deeper with `trace <n>`.
pub const DEFAULT_TRACE_RENDER_CAP: usize = 512;

/// Callback invoked by [`Telemetry::incident`], after the triggering
/// event is in the ring (the hook may itself render the ring).
pub type IncidentHook = Arc<dyn Fn(&'static str) + Send + Sync>;

/// The hook slot needs a manual `Debug` (closures have none).
#[derive(Default)]
struct HookCell(Mutex<Option<IncidentHook>>);

impl std::fmt::Debug for HookCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.0.lock().map(|g| g.is_some()).unwrap_or(false);
        f.debug_tuple("HookCell").field(&installed).finish()
    }
}

#[derive(Debug)]
struct Shared {
    clock: Clock,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
    trace: TraceBuffer,
    incident_hook: HookCell,
}

/// The no-op telemetry handle: every instrument it hands out does
/// nothing, every query returns nothing. Attaching this to an engine is
/// free — the hot paths test one `Option` and move on.
pub fn disabled() -> Telemetry {
    Telemetry { inner: None }
}

/// A cheaply cloneable handle on one node's observability state; see the
/// crate docs. `Default` is [`disabled()`].
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Shared>>,
}

fn assert_name(name: &str) {
    debug_assert!(
        !name.is_empty() && !name.contains(char::is_whitespace) && !name.contains('#'),
        "metric name {name:?} must be non-empty with no whitespace or '#'"
    );
}

/// Builds `base{key="value"}` — a metric name with one embedded label.
/// The value must not contain whitespace, `"` or `#` (socket addresses,
/// shard indices and tenant ids are all fine).
pub fn labeled(base: &str, key: &str, value: impl std::fmt::Display) -> String {
    let name = format!("{base}{{{key}=\"{value}\"}}");
    assert_name(&name);
    name
}

impl Telemetry {
    /// Enabled telemetry on the production (monotonic) clock with the
    /// default trace capacity.
    pub fn new() -> Telemetry {
        Telemetry::with_clock(Clock::monotonic(), DEFAULT_TRACE_CAPACITY)
    }

    /// Enabled telemetry on an explicit clock (pass [`Clock::manual`]
    /// for deterministic tests) and trace ring capacity.
    pub fn with_clock(clock: Clock, trace_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Shared {
                clock,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                trace: TraceBuffer::new(trace_capacity),
                incident_hook: HookCell::default(),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared clock (`None` when disabled).
    pub fn clock(&self) -> Option<Clock> {
        self.inner.as_ref().map(|s| s.clock.clone())
    }

    /// Current clock nanos; 0 when disabled.
    pub fn now_nanos(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.clock.now_nanos())
    }

    /// The named counter, created at zero on first use.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let name = name.into();
        assert_name(&name);
        Counter(self.inner.as_ref().map(|s| {
            let mut map = s.counters.lock().expect("counter map poisoned");
            Arc::clone(map.entry(name).or_default())
        }))
    }

    /// The named gauge, created at zero on first use.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        let name = name.into();
        assert_name(&name);
        Gauge(self.inner.as_ref().map(|s| {
            let mut map = s.gauges.lock().expect("gauge map poisoned");
            Arc::clone(map.entry(name).or_default())
        }))
    }

    /// The named histogram, created empty on first use.
    pub fn histogram(&self, name: impl Into<String>) -> Histo {
        let name = name.into();
        assert_name(&name);
        Histo(self.inner.as_ref().map(|s| {
            let mut map = s.hists.lock().expect("hist map poisoned");
            Arc::clone(map.entry(name).or_default())
        }))
    }

    /// Current value of a counter that has been registered, else `None`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let s = self.inner.as_ref()?;
        let map = s.counters.lock().expect("counter map poisoned");
        map.get(name).map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of a registered gauge, else `None`.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        let s = self.inner.as_ref()?;
        let map = s.gauges.lock().expect("gauge map poisoned");
        map.get(name).map(|g| g.load(Ordering::Relaxed))
    }

    /// A copy of a registered histogram, else `None`.
    pub fn histogram_snapshot(&self, name: &str) -> Option<Histogram> {
        let s = self.inner.as_ref()?;
        let map = s.hists.lock().expect("hist map poisoned");
        let h = Arc::clone(map.get(name)?);
        drop(map);
        let snap = h.lock().expect("histogram poisoned").clone();
        Some(snap)
    }

    /// Estimated `q`-quantile of a registered histogram.
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        self.histogram_snapshot(name).map(|h| h.quantile(q))
    }

    /// Records an instantaneous trace event.
    pub fn point(&self, severity: Severity, key: &'static str, a: u64, b: u64) {
        self.point_traced(0, severity, key, a, b);
    }

    /// [`Telemetry::point`] correlated to a causal trace id.
    pub fn point_in(&self, trace: TraceCtx, severity: Severity, key: &'static str, a: u64, b: u64) {
        self.point_traced(trace.id, severity, key, a, b);
    }

    fn point_traced(&self, trace: u64, severity: Severity, key: &'static str, a: u64, b: u64) {
        if let Some(s) = &self.inner {
            s.trace.record(TraceEvent {
                at: s.clock.now_nanos(),
                severity,
                kind: TraceKind::Point,
                key,
                a,
                b,
                trace,
            });
        }
    }

    /// Opens a trace span: records a `Begin` event now and an `End`
    /// event (with elapsed nanos in `b`) when the returned guard drops.
    pub fn span(&self, key: &'static str, a: u64) -> Span {
        self.span_traced(0, key, a)
    }

    /// [`Telemetry::span`] correlated to a causal trace id: both the
    /// `Begin` and the `End` event carry the id.
    pub fn span_in(&self, trace: TraceCtx, key: &'static str, a: u64) -> Span {
        self.span_traced(trace.id, key, a)
    }

    fn span_traced(&self, trace: u64, key: &'static str, a: u64) -> Span {
        let start = match &self.inner {
            Some(s) => {
                let at = s.clock.now_nanos();
                s.trace.record(TraceEvent {
                    at,
                    severity: Severity::Debug,
                    kind: TraceKind::Begin,
                    key,
                    a,
                    b: 0,
                    trace,
                });
                at
            }
            None => 0,
        };
        Span {
            shared: self.inner.clone(),
            key,
            a,
            start,
            trace,
        }
    }

    /// Installs the [`Telemetry::incident`] hook (e.g. a flight-recorder
    /// dump). One hook per handle; installing replaces the previous one.
    pub fn set_incident_hook(&self, hook: IncidentHook) {
        if let Some(s) = &self.inner {
            *s.incident_hook.0.lock().expect("incident hook poisoned") = Some(hook);
        }
    }

    /// Records a `Warn` point for an operator-grade anomaly (quorum
    /// loss, drain timeout, durability error) and then fires the
    /// installed incident hook, if any. The event is in the ring
    /// *before* the hook runs, so a hook that snapshots the ring
    /// captures its own trigger; no ring lock is held across the call.
    ///
    /// The hook runs **synchronously on the caller's thread** — and
    /// incidents fire from already-degraded paths (a flush hitting a
    /// sick disk, a replication link failing), so an expensive hook
    /// must bound its own cost. The flight recorder's installed hook
    /// rate-limits dumps per incident key for exactly this reason.
    pub fn incident(&self, key: &'static str, a: u64, b: u64) {
        let Some(s) = &self.inner else { return };
        self.point(Severity::Warn, key, a, b);
        let hook = s
            .incident_hook
            .0
            .lock()
            .expect("incident hook poisoned")
            .clone();
        if let Some(hook) = hook {
            hook(key);
        }
    }

    /// The retained trace events, oldest first (empty when disabled).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |s| s.trace.events())
    }

    /// Sorted copies of the whole registry:
    /// `(counters, gauges, histograms)`.
    #[allow(clippy::type_complexity)]
    pub fn registry_contents(
        &self,
    ) -> (
        Vec<(String, u64)>,
        Vec<(String, u64)>,
        Vec<(String, Histogram)>,
    ) {
        let Some(s) = &self.inner else {
            return (Vec::new(), Vec::new(), Vec::new());
        };
        let counters = s
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = s
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
            .collect();
        let hists = s
            .hists
            .lock()
            .expect("hist map poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.lock().expect("histogram poisoned").clone()))
            .collect();
        (counters, gauges, hists)
    }

    /// Renders the registry in Prometheus text format (the `metrics`
    /// command of [`ObsServer`]); empty when disabled.
    pub fn render_text(&self) -> String {
        let (counters, gauges, hists) = self.registry_contents();
        render::render_registry(&counters, &gauges, &hists)
    }

    /// [`Telemetry::render_text`] restricted to instruments whose name
    /// starts with `prefix` (label suffixes included: `cluster_` matches
    /// `cluster_link_acked_seq{replica="…"}`). Lets a fleet aggregator
    /// poll just its derived-signal inputs instead of the full registry.
    pub fn render_text_filtered(&self, prefix: &str) -> String {
        let (mut counters, mut gauges, mut hists) = self.registry_contents();
        counters.retain(|(n, _)| n.starts_with(prefix));
        gauges.retain(|(n, _)| n.starts_with(prefix));
        hists.retain(|(n, _)| n.starts_with(prefix));
        render::render_registry(&counters, &gauges, &hists)
    }

    /// Renders the newest [`DEFAULT_TRACE_RENDER_CAP`] trace events (the
    /// `trace` command of [`ObsServer`]). Use
    /// [`Telemetry::render_trace_last`] to page deeper.
    pub fn render_trace(&self) -> String {
        self.render_trace_last(DEFAULT_TRACE_RENDER_CAP)
    }

    /// Renders the newest `limit` trace events as text, one event per
    /// line, oldest first (the `trace <n>` command of [`ObsServer`]).
    /// The header says how much of the ring is shown, so a truncated
    /// view is never mistaken for the whole history.
    pub fn render_trace_last(&self, limit: usize) -> String {
        let events = self.trace_events();
        let skip = events.len().saturating_sub(limit);
        let shown = &events[skip..];
        let mut out = format!(
            "# trace: showing {} of {} event(s), oldest first: at severity kind key a b trace\n",
            shown.len(),
            events.len()
        );
        for e in shown {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{} {} {} {} {} {} {}",
                e.at,
                e.severity.as_str(),
                e.kind.as_str(),
                e.key,
                e.a,
                e.b,
                e.trace
            );
        }
        out
    }

    /// Serializes the registry (not the trace ring) to the workspace
    /// snapshot text format. Deterministic: maps iterate sorted.
    pub fn snapshot_text(&self) -> String {
        let (counters, gauges, hists) = self.registry_contents();
        let mut w = SnapshotWriter::new();
        w.begin("telemetry");
        for (name, value) in &counters {
            w.line(format_args!("c {name} {value}"));
        }
        for (name, value) in &gauges {
            w.line(format_args!("g {name} {value}"));
        }
        for (name, h) in &hists {
            w.begin_args("hist", format_args!("{name}"));
            let (count, sum, max) = h.parts();
            w.line(format_args!("h {count} {sum} {max}"));
            for (i, n) in h.nonzero_buckets() {
                w.line(format_args!("b {i} {n}"));
            }
            w.end();
        }
        w.end();
        w.finish()
    }

    /// Loads a [`Telemetry::snapshot_text`] document into this registry,
    /// overwriting same-named instruments (others are left alone). A
    /// no-op on a disabled handle. Validates untrusted input — bad
    /// bucket tables or malformed lines are [`ParseError`]s, not panics.
    pub fn restore_registry(&self, text: &str) -> Result<(), ParseError> {
        let root = SnapshotNode::parse(text)?;
        let node = root.only_child("telemetry")?;
        if self.inner.is_none() {
            return Ok(());
        }
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            let op = f.token("op")?;
            match op {
                "c" => {
                    let name = f.token("counter name")?.to_string();
                    let value = f.u64("counter value")?;
                    f.finish()?;
                    self.counter(name)
                        .0
                        .expect("enabled")
                        .store(value, Ordering::Relaxed);
                }
                "g" => {
                    let name = f.token("gauge name")?.to_string();
                    let value = f.u64("gauge value")?;
                    f.finish()?;
                    self.gauge(name)
                        .0
                        .expect("enabled")
                        .store(value, Ordering::Relaxed);
                }
                other => return Err(f.err(format!("unknown telemetry op '{other}'"))),
            }
        }
        for child in node.children_of("hist") {
            let name = child.args.first().ok_or(ParseError {
                line: 0,
                message: "hist section without a name".to_string(),
            })?;
            let mut header: Option<(u64, u64, u64)> = None;
            let mut nonzero: Vec<(usize, u64)> = Vec::new();
            for (line, content) in &child.lines {
                let mut f = Fields::of(*line, content);
                match f.token("op")? {
                    "h" => {
                        if header.is_some() {
                            return Err(f.err("duplicate 'h' header"));
                        }
                        let count = f.u64("count")?;
                        let sum = f.u64("sum")?;
                        let max = f.u64("max")?;
                        f.finish()?;
                        header = Some((count, sum, max));
                    }
                    "b" => {
                        let i = f.usize("bucket index")?;
                        let n = f.u64("bucket count")?;
                        f.finish()?;
                        nonzero.push((i, n));
                    }
                    other => return Err(f.err(format!("unknown hist op '{other}'"))),
                }
            }
            let (count, sum, max) = header.ok_or(ParseError {
                line: 0,
                message: format!("hist '{name}' missing its 'h' header"),
            })?;
            let h =
                Histogram::from_parts(count, sum, max, &nonzero).map_err(|message| ParseError {
                    line: 0,
                    message: format!("hist '{name}': {message}"),
                })?;
            self.histogram(name.clone()).set(h);
        }
        Ok(())
    }
}

/// A monotonically increasing `u64` instrument. Lock-free; no-op when
/// its [`Telemetry`] is disabled.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins `u64` instrument. Lock-free; no-op when disabled.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A shared handle on a registered [`Histogram`]. Recording takes a
/// mutex — prefer a local `Histogram` plus one [`Histo::merge`] per
/// flush on hot paths (see the crate docs).
#[derive(Clone, Debug, Default)]
pub struct Histo(Option<Arc<Mutex<Histogram>>>);

impl Histo {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.lock().expect("histogram poisoned").record(v);
        }
    }

    /// Folds a locally accumulated histogram in (one lock per call).
    pub fn merge(&self, local: &Histogram) {
        if local.is_empty() {
            return;
        }
        if let Some(h) = &self.0 {
            h.lock().expect("histogram poisoned").merge(local);
        }
    }

    /// Replaces the contents (used by registry restore).
    fn set(&self, new: Histogram) {
        if let Some(h) = &self.0 {
            *h.lock().expect("histogram poisoned") = new;
        }
    }

    /// A copy of the current contents (empty when disabled).
    pub fn snapshot(&self) -> Histogram {
        self.0.as_ref().map_or_else(Histogram::new, |h| {
            h.lock().expect("histogram poisoned").clone()
        })
    }

    /// Whether this handle actually records (its telemetry is enabled).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// Guard returned by [`Telemetry::span`]; records the `End` event (with
/// elapsed nanos) when dropped.
#[derive(Debug)]
pub struct Span {
    shared: Option<Arc<Shared>>,
    key: &'static str,
    a: u64,
    start: u64,
    trace: u64,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = &self.shared {
            let at = s.clock.now_nanos();
            s.trace.record(TraceEvent {
                at,
                severity: Severity::Debug,
                kind: TraceKind::End,
                key: self.key,
                a: self.a,
                b: at.saturating_sub(self.start),
                trace: self.trace,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = disabled();
        assert!(!t.is_enabled());
        let c = t.counter("x_total");
        c.add(5);
        assert_eq!(c.get(), 0);
        t.gauge("g").set(7);
        t.histogram("h_nanos").record(9);
        t.point(Severity::Info, "ev", 1, 2);
        drop(t.span("s", 0));
        assert!(t.trace_events().is_empty());
        assert_eq!(t.render_text(), "");
        assert_eq!(t.counter_value("x_total"), None);
    }

    #[test]
    fn instruments_share_state_by_name() {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        let a = t.counter("reqs_total");
        let b = t.counter("reqs_total");
        a.add(3);
        b.inc();
        assert_eq!(t.counter_value("reqs_total"), Some(4));

        t.gauge("jobs").set(11);
        assert_eq!(t.gauge_value("jobs"), Some(11));

        let h = t.histogram("lat_nanos");
        let mut local = Histogram::new();
        local.record(100);
        local.record(200);
        h.merge(&local);
        h.record(300);
        assert_eq!(t.histogram_snapshot("lat_nanos").unwrap().count(), 3);
        assert_eq!(t.quantile("lat_nanos", 1.0), Some(300));
    }

    #[test]
    fn spans_use_the_shared_clock() {
        let clock = Clock::manual();
        let t = Telemetry::with_clock(clock.clone(), 16);
        {
            let _s = t.span("flush", 42);
            clock.advance(1_000);
        }
        let evs = t.trace_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, TraceKind::Begin);
        assert_eq!(evs[1].kind, TraceKind::End);
        assert_eq!(evs[1].b, 1_000, "elapsed nanos in b");
        assert_eq!(evs[1].a, 42);
        let text = t.render_trace();
        assert!(text.contains("debug end flush 42 1000"), "{text}");
    }

    #[test]
    fn snapshot_restore_is_byte_identical() {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        t.counter("a_total").add(9);
        t.counter(labeled("b_total", "shard", 3)).add(2);
        t.gauge("g").set(1 << 40);
        let h = t.histogram("lat_nanos");
        for v in [0u64, 1, 1, 7, 500, u64::MAX] {
            h.record(v);
        }
        let text = t.snapshot_text();

        let back = Telemetry::with_clock(Clock::manual(), 16);
        back.restore_registry(&text).unwrap();
        assert_eq!(back.snapshot_text(), text);
        assert_eq!(back.render_text(), t.render_text());
    }

    #[test]
    fn restore_rejects_corruption() {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        assert!(t.restore_registry("not a snapshot").is_err());
        let doc = "# realloc snapshot v1\n!begin telemetry\nz what 1\n!end\n";
        assert!(t.restore_registry(doc).is_err());
        // Histogram whose bucket table disagrees with its header.
        let doc =
            "# realloc snapshot v1\n!begin telemetry\n!begin hist h\nh 5 0 0\nb 0 1\n!end\n!end\n";
        assert!(t.restore_registry(doc).is_err());
    }

    #[test]
    fn traced_events_carry_the_context_id() {
        let clock = Clock::manual();
        let t = Telemetry::with_clock(clock.clone(), 16);
        let tc = TraceCtx::mint(7, 3);
        t.point_in(tc, Severity::Info, "receipt", 1, 2);
        {
            let _s = t.span_in(tc, "flush", 5);
            clock.advance(100);
        }
        t.point(Severity::Debug, "untraced", 0, 0);
        let evs = t.trace_events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].trace, tc.id);
        assert_eq!(evs[1].trace, tc.id, "span begin");
        assert_eq!(evs[2].trace, tc.id, "span end");
        assert_eq!(evs[3].trace, 0, "plain events stay untraced");
        let text = t.render_trace();
        assert!(
            text.contains(&format!("info point receipt 1 2 {}", tc.id)),
            "{text}"
        );
    }

    #[test]
    fn render_trace_last_caps_and_reports_truncation() {
        let t = Telemetry::with_clock(Clock::manual(), 32);
        for i in 0..10u64 {
            t.point(Severity::Debug, "tick", i, 0);
        }
        let text = t.render_trace_last(3);
        assert!(
            text.starts_with("# trace: showing 3 of 10 event(s)"),
            "{text}"
        );
        // Newest 3 survive; older ones are paged out.
        assert!(text.contains("tick 9 0"), "{text}");
        assert!(text.contains("tick 7 0"), "{text}");
        assert!(!text.contains("tick 6 0"), "{text}");
        // The default render shows everything when under the cap.
        let full = t.render_trace();
        assert!(
            full.starts_with("# trace: showing 10 of 10 event(s)"),
            "{full}"
        );
    }

    #[test]
    fn filtered_render_keeps_only_the_prefix() {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        t.counter("cluster_frames_total").add(3);
        t.counter(labeled("cluster_link_acked_seq", "replica", "a"))
            .add(9);
        t.gauge("service_inflight").set(2);
        t.histogram("engine_flush_nanos").record(50);
        let text = t.render_text_filtered("cluster_");
        assert_eq!(parse_sample(&text, "cluster_frames_total"), Some(3));
        assert!(text.contains("cluster_link_acked_seq"), "{text}");
        assert!(!text.contains("service_inflight"), "{text}");
        assert!(!text.contains("engine_flush_nanos"), "{text}");
        // The unfiltered render still has everything.
        assert_eq!(parse_sample(&t.render_text(), "service_inflight"), Some(2));
    }

    #[test]
    fn incident_records_then_fires_hook_with_ring_visible() {
        use std::sync::atomic::AtomicUsize;
        let t = Telemetry::with_clock(Clock::manual(), 16);
        let seen = Arc::new(Mutex::new(Vec::<(String, usize)>::new()));
        let hook_seen = Arc::clone(&seen);
        let hook_tel = t.clone();
        let calls = Arc::new(AtomicUsize::new(0));
        let hook_calls = Arc::clone(&calls);
        t.set_incident_hook(Arc::new(move |key: &'static str| {
            hook_calls.fetch_add(1, Ordering::SeqCst);
            // The hook can render the ring (no lock is held) and must
            // see the triggering event already recorded.
            let events = hook_tel.trace_events();
            hook_seen
                .lock()
                .unwrap()
                .push((key.to_string(), events.len()));
        }));
        t.incident("quorum_lost", 2, 1);
        t.incident("drain_timeout", 0, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let seen = seen.lock().unwrap();
        assert_eq!(seen[0], ("quorum_lost".to_string(), 1));
        assert_eq!(seen[1], ("drain_timeout".to_string(), 2));
        let evs = t.trace_events();
        assert_eq!(evs[0].severity, Severity::Warn);
        assert_eq!(evs[0].key, "quorum_lost");
        // Disabled handles stay inert, hook installation included.
        let d = disabled();
        d.set_incident_hook(Arc::new(|_| panic!("never fires")));
        d.incident("quorum_lost", 0, 0);
    }
}
