//! Log-bucketed latency histogram: HDR-style powers-of-two buckets with
//! interpolated quantile estimation.
//!
//! This is the *approximate, wide-range* counterpart to the engine's
//! exact `CostHistogram` (which counts small reallocation costs one
//! bucket per value). Latencies span nanoseconds to seconds — nine
//! decades — so exact buckets are out; instead value `v` lands in bucket
//! `⌊log₂ v⌋ + 1` (bucket 0 is reserved for `v = 0`), giving 65 buckets
//! total with a guaranteed ≤ 2× relative error per sample, and better
//! than that in practice because quantiles interpolate within a bucket
//! and clamp to the observed maximum.
//!
//! The struct is plain data — no locks, no atomics — so hot paths can
//! accumulate into a local instance and [`Histogram::merge`] it into a
//! shared one once per flush (the "lock-free-ish" accumulation pattern
//! the registry builds on).

/// Number of buckets: one for zero plus one per power of two up to 2⁶³.
pub const HIST_BUCKETS: usize = 65;

/// A mergeable log-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a sample: 0 for 0, else `⌊log₂ v⌋ + 1`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value a bucket can hold.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value a bucket can hold.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (the per-shard → shared merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Drops every sample (the local accumulator reset after a merge).
    pub fn clear(&mut self) {
        *self = Histogram::new();
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`): finds the bucket holding
    /// the rank-`q` sample and interpolates linearly inside it, clamped
    /// to the observed maximum. Exact for bucket 0; within the bucket's
    /// 2× width everywhere else.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < seen + n {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i).min(self.max);
                // Upper-edge interpolation: the rank-th sample is the
                // (rank - seen + 1)-th of n in [lo, hi]. Biases to the
                // bucket's upper edge, so q = 1.0 reports the true max
                // and latency quantiles over- rather than under-estimate.
                let frac = (rank - seen + 1) as f64 / n as f64;
                // f64 rounding can push the offset past hi - lo at the
                // top of the range; saturate and clamp instead.
                return lo.saturating_add((frac * (hi - lo) as f64) as u64).min(hi);
            }
            seen += n;
        }
        self.max
    }

    /// Shorthand for the three quantiles every dashboard wants.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Scalar parts for serialization: `(count, sum, max)`.
    pub fn parts(&self) -> (u64, u64, u64) {
        (self.count, self.sum, self.max)
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Rebuilds a histogram from [`Histogram::parts`] and
    /// [`Histogram::nonzero_buckets`] output, validating the untrusted
    /// input: bucket indices in range, bucket counts summing to `count`,
    /// and `max` inside its claimed bucket.
    pub fn from_parts(
        count: u64,
        sum: u64,
        max: u64,
        nonzero: &[(usize, u64)],
    ) -> Result<Histogram, String> {
        let mut h = Histogram {
            buckets: [0; HIST_BUCKETS],
            count,
            sum,
            max,
        };
        let mut total = 0u64;
        for &(i, n) in nonzero {
            if i >= HIST_BUCKETS {
                return Err(format!("bucket index {i} out of range"));
            }
            if h.buckets[i] != 0 {
                return Err(format!("bucket {i} listed twice"));
            }
            h.buckets[i] = n;
            total = total
                .checked_add(n)
                .ok_or_else(|| "bucket counts overflow".to_string())?;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, header says {count}"));
        }
        if count > 0 {
            let top = h
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .expect("count > 0 implies a nonzero bucket");
            if bucket_index(max) != top {
                return Err(format!("max {max} not inside top nonzero bucket {top}"));
            }
        } else if max != 0 || sum != 0 {
            return Err("empty histogram with nonzero sum/max".to_string());
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_hi(64), u64::MAX);
        assert_eq!(bucket_lo(64), 1 << 63);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // Samples 1..=1000: the true median is 500; the log-bucket
        // estimate must land within the 2× bucket (512-wide at worst).
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(1.0) == 1000, "p100 clamps to max");
        assert_eq!(h.quantile(0.0), 1);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0, 1, 7, 12_000, 900_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [3, 3, 500] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn parts_round_trip_and_validation() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 5, 129, 1 << 40] {
            h.record(v);
        }
        let (c, s, m) = h.parts();
        let nz: Vec<_> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(c, s, m, &nz).unwrap();
        assert_eq!(back, h);

        assert!(Histogram::from_parts(1, 0, 0, &[(99, 1)]).is_err());
        assert!(Histogram::from_parts(2, 0, 0, &[(0, 1)]).is_err());
        assert!(Histogram::from_parts(1, 5, 1 << 20, &[(1, 1)]).is_err());
        assert!(Histogram::from_parts(0, 1, 0, &[]).is_err());
        assert!(Histogram::from_parts(2, 0, 0, &[(0, 1), (0, 1)]).is_err());
    }
}
