//! The fleet aggregation plane: a [`Collector`] that polls N
//! [`crate::ObsServer`]s over TCP and folds their per-node registries
//! into one coherent picture — per-replica replication lag, quorum
//! headroom, shed/p99 SLO burn, and stall detection — rendered as a
//! unified text dashboard plus one machine-readable JSON line per poll.
//!
//! # Derived signals
//!
//! * **Replication lag** — the primary's `cluster_next_seq − 1` (the
//!   highest frame it has stamped) minus a replica's
//!   `cluster_replica_last_seq`. Zero means caught up.
//! * **Quorum headroom** — reachable replicas minus the configured
//!   quorum; negative means the group cannot commit right now.
//! * **Commit-floor lag** — the primary's `cluster_next_seq − 1`
//!   (highest frame stamped) minus `cluster_group_committed_seq` (the
//!   quorum commit floor): frames shipped but not yet acknowledged by a
//!   quorum. Growing while replicas look caught up means acks, not
//!   frames, are what's stuck.
//! * **Shed ratio** — `Δservice_shed_total / Δservice_requests_total`
//!   between consecutive polls.
//! * **p99 burn rate** — the worst per-tenant
//!   `service_request_nanos{tenant,quantile="0.99"}` divided by the
//!   configured SLO; above 1.0 the SLO is being burned.
//! * **Stall** — frames are being shipped (the primary's
//!   `cluster_frames_*_total` sum advanced since the previous poll) but
//!   a replica's `cluster_replica_events_applied` did not move. One
//!   comparison against the previous poll, so an induced stall is
//!   flagged within two poll intervals.
//!
//! Each node is scraped with a role-scoped `metrics <prefix>` filter
//! (satellite of the same PR), so a large fleet doesn't ship its full
//! registries every tick. A node whose scrape fails — connect refused,
//! read timeout against a half-dead server — is marked `unreachable`
//! for that poll and the collector keeps polling the rest; the client
//! is dropped so the next poll redials.

use crate::obs::ObsClient;
use crate::parse_sample;
use std::fmt::Write as _;
use std::time::Duration;

/// What a polled node is, which decides the scrape filter and which
/// derived signals it feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// The QoS serving tier (`service_*` metrics).
    Service,
    /// The replication primary (`cluster_*` metrics).
    Primary,
    /// A replication replica (`cluster_replica_*` metrics).
    Replica,
}

impl NodeRole {
    /// Stable lowercase name (dashboard and JSON exposition).
    pub fn as_str(self) -> &'static str {
        match self {
            NodeRole::Service => "service",
            NodeRole::Primary => "primary",
            NodeRole::Replica => "replica",
        }
    }

    /// The `metrics <prefix>` filter used when scraping this role.
    fn scrape_prefix(self) -> &'static str {
        match self {
            NodeRole::Service => "service_",
            NodeRole::Primary => "cluster_",
            NodeRole::Replica => "cluster_replica_",
        }
    }
}

/// One node the collector polls.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Display name (dashboard row / JSON field).
    pub name: String,
    /// The node's [`crate::ObsServer`] address, `host:port`.
    pub addr: String,
    /// Role; decides the scrape filter and derived signals.
    pub role: NodeRole,
}

impl NodeSpec {
    /// A node spec.
    pub fn new(name: impl Into<String>, addr: impl Into<String>, role: NodeRole) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            addr: addr.into(),
            role,
        }
    }
}

/// Collector policy.
#[derive(Clone, Copy, Debug)]
pub struct CollectorConfig {
    /// Per-fetch read timeout; a half-dead server costs one poll this
    /// long, not a hang. `None` trusts every node to answer.
    pub read_timeout: Option<Duration>,
    /// Replica acks needed for a group commit (for quorum headroom).
    pub quorum: usize,
    /// The per-tenant p99 service-time SLO, in nanos (burn-rate
    /// denominator).
    pub slo_p99_nanos: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            read_timeout: Some(Duration::from_secs(2)),
            quorum: 1,
            slo_p99_nanos: 50_000_000,
        }
    }
}

/// The samples one poll extracts from one node's filtered scrape.
#[derive(Clone, Copy, Debug, Default)]
struct Raw {
    next_seq: Option<u64>,
    committed_seq: Option<u64>,
    shipped_frames: Option<u64>,
    replica_last_seq: Option<u64>,
    replica_applied: Option<u64>,
    requests_total: Option<u64>,
    shed_total: Option<u64>,
    p99_worst_nanos: Option<u64>,
}

impl Raw {
    fn parse(role: NodeRole, text: &str) -> Raw {
        let mut raw = Raw::default();
        match role {
            NodeRole::Service => {
                raw.requests_total = parse_sample(text, "service_requests_total");
                raw.shed_total = parse_sample(text, "service_shed_total");
                raw.p99_worst_nanos = worst_labeled_quantile(text, "service_request_nanos", "0.99");
            }
            NodeRole::Primary => {
                raw.next_seq = parse_sample(text, "cluster_next_seq");
                raw.committed_seq = parse_sample(text, "cluster_group_committed_seq");
                let mut shipped = None;
                for kind in ["events", "epoch", "check", "snapshot"] {
                    if let Some(n) = parse_sample(text, &format!("cluster_frames_{kind}_total")) {
                        shipped = Some(shipped.unwrap_or(0) + n);
                    }
                }
                raw.shipped_frames = shipped;
            }
            NodeRole::Replica => {
                raw.replica_last_seq = parse_sample(text, "cluster_replica_last_seq");
                raw.replica_applied = parse_sample(text, "cluster_replica_events_applied");
            }
        }
        raw
    }
}

/// The worst (maximum) `base{…,quantile="q"}` sample across all label
/// sets — e.g. the slowest tenant's p99.
fn worst_labeled_quantile(text: &str, base: &str, q: &str) -> Option<u64> {
    let quantile = format!("quantile=\"{q}\"");
    let mut worst = None;
    for line in text.lines() {
        if line.starts_with('#') || !line.starts_with(base) {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if !name[base.len()..].starts_with('{') || !name.contains(&quantile) {
            continue;
        }
        if let Ok(v) = value.parse::<u64>() {
            worst = Some(worst.map_or(v, |w: u64| w.max(v)));
        }
    }
    worst
}

/// One node's place in a [`FleetSnapshot`].
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// Display name from the [`NodeSpec`].
    pub name: String,
    /// Role from the [`NodeSpec`].
    pub role: NodeRole,
    /// Whether this poll's scrape succeeded.
    pub reachable: bool,
    /// The node's `health` line (`ok …` / `err …`), when reachable.
    pub health: Option<String>,
    /// Replicas: frames behind the primary (`next_seq−1 − last_seq`).
    pub lag: Option<u64>,
    /// Replicas: shipped advanced but applied flat since the last poll.
    pub stalled: bool,
}

impl NodeStatus {
    /// Whether the node's health line reports a problem.
    pub fn unhealthy(&self) -> bool {
        self.health.as_deref().is_some_and(|h| h.starts_with("err"))
    }
}

/// One poll's fleet-wide picture.
#[derive(Clone, Debug)]
pub struct FleetSnapshot {
    /// 1-based poll counter.
    pub poll: u64,
    /// Per-node status, in [`Collector`] node order.
    pub nodes: Vec<NodeStatus>,
    /// Reachable replicas minus the configured quorum; negative means
    /// commits are impossible right now. `None` without replicas.
    pub quorum_headroom: Option<i64>,
    /// Frames the primary has shipped past the quorum commit floor
    /// (`next_seq−1 − committed_seq`). `None` when the primary was not
    /// scraped or exposes no commit floor (no group commit running).
    pub commit_lag: Option<u64>,
    /// `Δshed / Δrequests` since the last poll (0 when idle).
    pub shed_ratio: Option<f64>,
    /// Worst per-tenant p99 divided by the SLO; > 1.0 burns the SLO.
    pub p99_burn: Option<f64>,
}

impl FleetSnapshot {
    /// Whether any replica is stalled this poll.
    pub fn any_stalled(&self) -> bool {
        self.nodes.iter().any(|n| n.stalled)
    }

    /// Whether every node answered this poll.
    pub fn all_reachable(&self) -> bool {
        self.nodes.iter().all(|n| n.reachable)
    }

    /// The unified text dashboard: one header line of fleet signals,
    /// one row per node.
    pub fn render_dashboard(&self) -> String {
        let reachable = self.nodes.iter().filter(|n| n.reachable).count();
        let mut out = format!(
            "# fleet poll {}: {}/{} reachable",
            self.poll,
            reachable,
            self.nodes.len()
        );
        if let Some(h) = self.quorum_headroom {
            let _ = write!(out, ", quorum headroom {h:+}");
        }
        if let Some(l) = self.commit_lag {
            let _ = write!(out, ", commit lag {l}");
        }
        if let Some(s) = self.shed_ratio {
            let _ = write!(out, ", shed {:.1}%", s * 100.0);
        }
        if let Some(b) = self.p99_burn {
            let _ = write!(out, ", p99 burn {b:.2}");
        }
        let stalled: Vec<&str> = self
            .nodes
            .iter()
            .filter(|n| n.stalled)
            .map(|n| n.name.as_str())
            .collect();
        if stalled.is_empty() {
            out.push_str(", stall: none\n");
        } else {
            let _ = writeln!(out, ", STALL: {}", stalled.join(","));
        }
        for n in &self.nodes {
            let _ = write!(out, "{:<8} {:<12}", n.role.as_str(), n.name);
            if !n.reachable {
                out.push_str(" unreachable\n");
                continue;
            }
            out.push_str(if n.stalled { " STALLED" } else { " ok" });
            if let Some(lag) = n.lag {
                let _ = write!(out, " lag={lag}");
            }
            if let Some(h) = &n.health {
                if h.starts_with("err") {
                    let _ = write!(out, " [{h}]");
                }
            }
            out.push('\n');
        }
        out
    }

    /// One machine-readable JSON line (objects and arrays only, no
    /// external encoder): fleet signals plus a per-node array.
    pub fn to_json_line(&self) -> String {
        let mut out = format!("{{\"poll\":{}", self.poll);
        let _ = write!(out, ",\"stalled\":{}", self.any_stalled());
        match self.quorum_headroom {
            Some(h) => {
                let _ = write!(out, ",\"quorum_headroom\":{h}");
            }
            None => out.push_str(",\"quorum_headroom\":null"),
        }
        match self.commit_lag {
            Some(l) => {
                let _ = write!(out, ",\"commit_lag\":{l}");
            }
            None => out.push_str(",\"commit_lag\":null"),
        }
        match self.shed_ratio {
            Some(s) => {
                let _ = write!(out, ",\"shed_ratio\":{s:.6}");
            }
            None => out.push_str(",\"shed_ratio\":null"),
        }
        match self.p99_burn {
            Some(b) => {
                let _ = write!(out, ",\"p99_burn\":{b:.6}");
            }
            None => out.push_str(",\"p99_burn\":null"),
        }
        out.push_str(",\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"role\":\"{}\",\"reachable\":{},\"stalled\":{}",
                json_escape(&n.name),
                n.role.as_str(),
                n.reachable,
                n.stalled
            );
            match n.lag {
                Some(lag) => {
                    let _ = write!(out, ",\"lag\":{lag}");
                }
                None => out.push_str(",\"lag\":null"),
            }
            match &n.health {
                Some(h) => {
                    let _ = write!(out, ",\"health\":\"{}\"", json_escape(h));
                }
                None => out.push_str(",\"health\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Polls a fleet of [`crate::ObsServer`]s and derives cluster-wide
/// signals; see the module docs. Connections are persistent across
/// polls and redialed after any failure.
#[derive(Debug)]
pub struct Collector {
    nodes: Vec<NodeSpec>,
    config: CollectorConfig,
    clients: Vec<Option<ObsClient>>,
    prev: Vec<Option<Raw>>,
    prev_service: Option<(u64, u64)>,
    polls: u64,
}

impl Collector {
    /// A collector over `nodes`.
    pub fn new(nodes: Vec<NodeSpec>, config: CollectorConfig) -> Collector {
        let n = nodes.len();
        Collector {
            nodes,
            config,
            clients: (0..n).map(|_| None).collect(),
            prev: vec![None; n],
            prev_service: None,
            polls: 0,
        }
    }

    /// The polled node specs, in poll order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    fn scrape(&mut self, i: usize) -> std::io::Result<(Raw, String)> {
        let spec = self.nodes[i].clone();
        if self.clients[i].is_none() {
            let mut client = ObsClient::connect(&spec.addr)?;
            client.set_read_timeout(self.config.read_timeout)?;
            self.clients[i] = Some(client);
        }
        let client = self.clients[i].as_mut().expect("just connected");
        let text = client.metrics_filtered(spec.role.scrape_prefix())?;
        let health = client.health()?;
        Ok((Raw::parse(spec.role, &text), health))
    }

    /// One poll over every node: scrape, derive, snapshot. Nodes whose
    /// scrape fails are `unreachable` this poll (their connection is
    /// dropped and redialed next poll); everyone else is still polled.
    pub fn poll(&mut self) -> FleetSnapshot {
        self.polls += 1;
        let mut raws: Vec<Option<Raw>> = Vec::with_capacity(self.nodes.len());
        let mut healths: Vec<Option<String>> = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            match self.scrape(i) {
                Ok((raw, health)) => {
                    raws.push(Some(raw));
                    healths.push(Some(health));
                }
                Err(_) => {
                    // Drop the client: redial on the next poll.
                    self.clients[i] = None;
                    raws.push(None);
                    healths.push(None);
                }
            }
        }

        // Fleet-level inputs from the primary and service scrapes.
        let primary_raw = self
            .nodes
            .iter()
            .zip(&raws)
            .find(|(s, _)| s.role == NodeRole::Primary)
            .and_then(|(_, r)| *r);
        let primary_tip = primary_raw
            .and_then(|r| r.next_seq)
            .map(|n| n.saturating_sub(1));
        let commit_lag = primary_raw.and_then(|r| match (primary_tip, r.committed_seq) {
            (Some(tip), Some(committed)) => Some(tip.saturating_sub(committed)),
            _ => None,
        });
        let shipped_advanced = {
            let now = primary_raw.and_then(|r| r.shipped_frames);
            let before = self
                .nodes
                .iter()
                .zip(&self.prev)
                .find(|(s, _)| s.role == NodeRole::Primary)
                .and_then(|(_, r)| *r)
                .and_then(|r| r.shipped_frames);
            matches!((before, now), (Some(b), Some(n)) if n > b)
        };

        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut replicas_reachable = 0usize;
        let mut has_replicas = false;
        for (i, spec) in self.nodes.iter().enumerate() {
            let raw = raws[i];
            let mut status = NodeStatus {
                name: spec.name.clone(),
                role: spec.role,
                reachable: raw.is_some(),
                health: healths[i].clone(),
                lag: None,
                stalled: false,
            };
            if spec.role == NodeRole::Replica {
                has_replicas = true;
                if let Some(raw) = raw {
                    replicas_reachable += 1;
                    status.lag = match (primary_tip, raw.replica_last_seq) {
                        (Some(tip), Some(last)) => Some(tip.saturating_sub(last)),
                        _ => None,
                    };
                    // Stall: the primary shipped frames since the last
                    // poll but this replica applied nothing new.
                    if shipped_advanced {
                        if let (Some(prev), Some(now)) = (
                            self.prev[i].and_then(|p| p.replica_applied),
                            raw.replica_applied,
                        ) {
                            status.stalled = now == prev;
                        }
                    }
                }
            }
            nodes.push(status);
        }

        // Service-tier burn signals, as deltas between polls.
        let service_raw = self
            .nodes
            .iter()
            .zip(&raws)
            .find(|(s, _)| s.role == NodeRole::Service)
            .and_then(|(_, r)| *r);
        let mut shed_ratio = None;
        if let Some(raw) = service_raw {
            if let (Some(req), Some(shed)) = (raw.requests_total, raw.shed_total) {
                if let Some((preq, pshed)) = self.prev_service {
                    let dreq = req.saturating_sub(preq);
                    let dshed = shed.saturating_sub(pshed);
                    shed_ratio = Some(if dreq == 0 {
                        0.0
                    } else {
                        dshed as f64 / dreq as f64
                    });
                }
                self.prev_service = Some((req, shed));
            }
        }
        let p99_burn = service_raw
            .and_then(|r| r.p99_worst_nanos)
            .map(|p| p as f64 / self.config.slo_p99_nanos.max(1) as f64);

        self.prev = raws;
        FleetSnapshot {
            poll: self.polls,
            nodes,
            quorum_headroom: has_replicas
                .then(|| replicas_reachable as i64 - self.config.quorum as i64),
            commit_lag,
            shed_ratio,
            p99_burn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsServer;
    use crate::{labeled, Clock, Telemetry};

    fn fake_primary() -> (Telemetry, ObsServer) {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        t.gauge("cluster_next_seq").set(1);
        t.gauge("cluster_group_committed_seq").set(0);
        t.counter("cluster_frames_events_total").add(0);
        let s = ObsServer::bind("127.0.0.1:0", t.clone()).unwrap();
        (t, s)
    }

    fn fake_replica() -> (Telemetry, ObsServer) {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        t.gauge("cluster_replica_last_seq").set(0);
        t.gauge("cluster_replica_events_applied").set(0);
        let s = ObsServer::bind("127.0.0.1:0", t.clone()).unwrap();
        (t, s)
    }

    #[test]
    fn derives_lag_and_detects_stall_within_two_polls() {
        let (pt, ps) = fake_primary();
        let (rt, rs) = fake_replica();
        let (st, ss) = fake_replica();
        // The second replica keeps up; the first will stall.
        let mut collector = Collector::new(
            vec![
                NodeSpec::new("prim", ps.addr().to_string(), NodeRole::Primary),
                NodeSpec::new("r1", rs.addr().to_string(), NodeRole::Replica),
                NodeSpec::new("r2", ss.addr().to_string(), NodeRole::Replica),
            ],
            CollectorConfig {
                quorum: 1,
                ..CollectorConfig::default()
            },
        );

        // Poll 1: baseline, everyone healthy and caught up.
        let snap = collector.poll();
        assert!(snap.all_reachable());
        assert!(!snap.any_stalled());
        assert_eq!(snap.quorum_headroom, Some(1));
        assert_eq!(snap.commit_lag, Some(0), "nothing shipped past the floor");

        // Traffic flows; r1 stops applying, r2 keeps up. The commit
        // floor trails the stalled replica's missing acks.
        pt.gauge("cluster_next_seq").set(8);
        pt.counter("cluster_frames_events_total").add(7);
        st.gauge("cluster_replica_last_seq").set(7);
        st.gauge("cluster_replica_events_applied").set(7);

        // Poll 2: one comparison against poll 1 — stall flagged now,
        // i.e. within two poll intervals of inducing it.
        let snap = collector.poll();
        let r1 = &snap.nodes[1];
        let r2 = &snap.nodes[2];
        assert!(r1.stalled, "shipped advanced, r1 applied flat: {snap:?}");
        assert!(!r2.stalled);
        assert_eq!(r1.lag, Some(7), "next_seq-1 (7) - last_seq (0)");
        assert_eq!(r2.lag, Some(0));
        assert_eq!(snap.commit_lag, Some(7), "tip (7) - committed floor (0)");
        // Both expositions carry the stall and the commit-floor lag.
        let dash = snap.render_dashboard();
        assert!(dash.contains("STALL: r1"), "{dash}");
        assert!(dash.contains("STALLED"), "{dash}");
        assert!(dash.contains("commit lag 7"), "{dash}");
        assert!(snap.to_json_line().contains("\"commit_lag\":7"));
        let json = snap.to_json_line();
        assert!(json.contains("\"stalled\":true"), "{json}");
        assert!(
            json.contains(
                "\"name\":\"r1\",\"role\":\"replica\",\"reachable\":true,\"stalled\":true"
            ),
            "{json}"
        );

        // r1 recovers and catches up; the stall clears and the commit
        // floor advances to the tip.
        rt.gauge("cluster_replica_last_seq").set(7);
        rt.gauge("cluster_replica_events_applied").set(7);
        pt.gauge("cluster_next_seq").set(9);
        pt.gauge("cluster_group_committed_seq").set(8);
        pt.counter("cluster_frames_events_total").add(1);
        rt.gauge("cluster_replica_last_seq").set(8);
        rt.gauge("cluster_replica_events_applied").set(8);
        st.gauge("cluster_replica_last_seq").set(8);
        st.gauge("cluster_replica_events_applied").set(8);
        let snap = collector.poll();
        assert!(!snap.any_stalled(), "{snap:?}");
        assert_eq!(snap.commit_lag, Some(0));
        assert!(snap.render_dashboard().contains("stall: none"));
        assert!(snap.to_json_line().contains("\"stalled\":false"));
    }

    #[test]
    fn unreachable_node_does_not_block_the_rest() {
        let (_pt, ps) = fake_primary();
        // A port with nothing listening: connect fails fast.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut collector = Collector::new(
            vec![
                NodeSpec::new("prim", ps.addr().to_string(), NodeRole::Primary),
                NodeSpec::new("gone", dead_addr, NodeRole::Replica),
            ],
            CollectorConfig::default(),
        );
        let snap = collector.poll();
        assert!(snap.nodes[0].reachable);
        assert!(!snap.nodes[1].reachable);
        assert!(!snap.nodes[1].stalled, "unreachable is not stalled");
        assert_eq!(snap.quorum_headroom, Some(-1), "0 reachable - quorum 1");
        let dash = snap.render_dashboard();
        assert!(dash.contains("1/2 reachable"), "{dash}");
        assert!(dash.contains("unreachable"), "{dash}");
        assert!(snap.to_json_line().contains("\"reachable\":false"));
        // The collector survives and keeps polling.
        let snap = collector.poll();
        assert!(snap.nodes[0].reachable);
    }

    #[test]
    fn service_burn_signals_from_deltas() {
        let t = Telemetry::with_clock(Clock::manual(), 16);
        t.counter("service_requests_total").add(100);
        t.counter("service_shed_total").add(0);
        t.histogram(labeled("service_request_nanos", "tenant", 3))
            .record(80_000_000);
        let s = ObsServer::bind("127.0.0.1:0", t.clone()).unwrap();
        let mut collector = Collector::new(
            vec![NodeSpec::new(
                "svc",
                s.addr().to_string(),
                NodeRole::Service,
            )],
            CollectorConfig {
                slo_p99_nanos: 50_000_000,
                ..CollectorConfig::default()
            },
        );
        let snap = collector.poll();
        assert_eq!(snap.shed_ratio, None, "no previous poll yet");
        let burn = snap.p99_burn.expect("p99 scraped");
        assert!(burn > 1.0, "80ms p99 over a 50ms SLO burns: {burn}");

        t.counter("service_requests_total").add(40);
        t.counter("service_shed_total").add(10);
        let snap = collector.poll();
        let shed = snap.shed_ratio.expect("delta available");
        assert!((shed - 0.25).abs() < 1e-9, "10/40 shed: {shed}");
        assert!(
            snap.to_json_line().contains("\"shed_ratio\":0.25"),
            "{}",
            snap.to_json_line()
        );
        // No replicas in this fleet: headroom is undefined, not 0 — and
        // with no primary scraped, so is the commit-floor lag.
        assert_eq!(snap.quorum_headroom, None);
        assert_eq!(snap.commit_lag, None);
        assert!(snap.to_json_line().contains("\"commit_lag\":null"));
    }
}
