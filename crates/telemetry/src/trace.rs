//! Fixed-capacity structured trace ring: the hot-path flight recorder.
//!
//! Events are small `Copy` records — a monotonic timestamp, a severity,
//! a `&'static str` key, a kind (span begin / span end / point), and two
//! free `u64` payload words. The ring preallocates its slot vector at
//! construction and overwrites the oldest slot once full, so recording
//! never allocates and never grows: the buffer always holds the *last*
//! `capacity` events, which is exactly what you want when something goes
//! wrong and you ask "what was the engine doing just now?".
//!
//! Recording takes a [`std::sync::Mutex`] per event. That is deliberate:
//! trace events are per-*flush* and per-*lifecycle-transition* (a few
//! hundred per second), not per-request, so a mutex costs nothing
//! measurable while keeping the implementation obviously correct under
//! concurrent writers (pool workers, replication threads, observers).

use std::sync::Mutex;

/// Event severity, ordered from chattiest to most urgent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-flush phase markers.
    Debug,
    /// Lifecycle transitions: resize epochs, checkpoints, promotions.
    Info,
    /// Anomalies worth flagging: rebalance whale pins, fenced frames.
    Warn,
}

impl Severity {
    /// Stable lowercase name, used by the text exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// What a trace event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened (`a` = caller payload).
    Begin,
    /// A span closed (`a` = caller payload, `b` = elapsed nanos).
    End,
    /// An instantaneous event.
    Point,
}

impl TraceKind {
    /// Stable lowercase name, used by the text exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Begin => "begin",
            TraceKind::End => "end",
            TraceKind::Point => "point",
        }
    }
}

/// A causal trace context: a sampled request's identity, minted once at
/// the tier that first sees the request and threaded — as metadata, never
/// as digested state — through every stage it touches. Events recorded
/// with [`crate::Telemetry::point_in`]/[`crate::Telemetry::span_in`]
/// carry the id, so one `grep <id>` over any node's trace ring yields
/// that request's causal path on that node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceCtx {
    /// The trace id; never 0 (0 means "untraced" in [`TraceEvent`]).
    pub id: u64,
    /// Clock nanos at the origin tier when the trace was minted.
    pub origin_nanos: u64,
}

impl TraceCtx {
    /// Mints a trace context from the origin timestamp and a per-node
    /// sequence salt. The id is a splitmix64 finalize of the pair —
    /// well-mixed so ids from different nodes or restarts don't collide
    /// in practice — floored at 1 so it never aliases "untraced".
    pub fn mint(origin_nanos: u64, salt: u64) -> TraceCtx {
        let mut z = origin_nanos
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TraceCtx {
            id: z.max(1),
            origin_nanos,
        }
    }
}

/// One recorded event. `Copy`; the ring stores these inline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock nanos at record time.
    pub at: u64,
    /// Severity of the event.
    pub severity: Severity,
    /// Span/point kind.
    pub kind: TraceKind,
    /// Static event key (e.g. `"flush"`, `"epoch"`, `"checkpoint"`).
    pub key: &'static str,
    /// First payload word (meaning is per-key; see the key's docs).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Correlating trace id ([`TraceCtx::id`]); 0 = untraced.
    pub trace: u64,
}

#[derive(Debug)]
struct Ring {
    slots: Vec<TraceEvent>,
    /// Total events ever recorded; `total % capacity` is the next slot.
    total: u64,
}

/// The shared, fixed-capacity trace buffer. See the module docs.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl TraceBuffer {
    /// A buffer retaining the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            ring: Mutex::new(Ring {
                // Preallocate up front: record() never allocates.
                slots: Vec::with_capacity(capacity),
                total: 0,
            }),
            capacity,
        }
    }

    /// Records one event, overwriting the oldest once full.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        let slot = (ring.total % self.capacity as u64) as usize;
        if ring.slots.len() < self.capacity {
            debug_assert_eq!(slot, ring.slots.len());
            ring.slots.push(ev);
        } else {
            ring.slots[slot] = ev;
        }
        ring.total += 1;
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").slots.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").total
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        if ring.slots.len() < self.capacity {
            ring.slots.clone()
        } else {
            // The ring has wrapped: the slot about to be overwritten is
            // the oldest retained event.
            let split = (ring.total % self.capacity as u64) as usize;
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&ring.slots[split..]);
            out.extend_from_slice(&ring.slots[..split]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(at: u64) -> TraceEvent {
        TraceEvent {
            at,
            severity: Severity::Debug,
            kind: TraceKind::Point,
            key: "t",
            a: at,
            b: 0,
            trace: 0,
        }
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = TraceCtx::mint(0, 0);
        let b = TraceCtx::mint(0, 1);
        let c = TraceCtx::mint(1, 0);
        assert_ne!(a.id, 0);
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, c.id);
        assert_ne!(b.id, c.id);
        assert_eq!(a.origin_nanos, 0);
        // Deterministic: same inputs, same id.
        assert_eq!(TraceCtx::mint(0, 0), a);
    }

    #[test]
    fn wraps_keeping_newest() {
        let buf = TraceBuffer::new(4);
        for at in 0..10u64 {
            buf.record(point(at));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.total_recorded(), 10);
        let got: Vec<u64> = buf.events().iter().map(|e| e.at).collect();
        assert_eq!(got, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn partial_fill_is_in_order() {
        let buf = TraceBuffer::new(8);
        for at in 0..3u64 {
            buf.record(point(at));
        }
        let got: Vec<u64> = buf.events().iter().map(|e| e.at).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        use std::sync::Arc;
        let buf = Arc::new(TraceBuffer::new(64));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        buf.record(point(t * 10_000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(buf.total_recorded(), 4000);
        assert_eq!(buf.len(), 64);
        // Each writer's retained events appear in its own program order.
        let events = buf.events();
        for t in 0..4u64 {
            let mine: Vec<u64> = events
                .iter()
                .map(|e| e.at)
                .filter(|at| at / 10_000 == t)
                .collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "writer {t} reordered");
        }
    }
}
