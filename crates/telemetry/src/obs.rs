//! The observability endpoint: a tiny request/response server over the
//! workspace's length-prefixed TCP framing, so any process (or any node
//! of a replicated cluster) can be polled for live metrics.
//!
//! # Wire protocol
//!
//! Both directions carry [`realloc_core::textio::write_frame`] frames (a
//! `u32` big-endian byte count, then the payload). The client sends one
//! command per frame and the server answers with one frame of text;
//! unknown commands get an `err …` line. A connection serves any number
//! of commands (poll on a schedule), and the one-shot
//! [`fetch_metrics`]/[`fetch_trace`] helpers connect, ask once, and
//! disconnect.
//!
//! ```text
//! metrics            → full registry ([`Telemetry::render_text`])
//! metrics <prefix>   → registry filtered to names starting with <prefix>
//! trace              → newest DEFAULT_TRACE_RENDER_CAP ring events
//! trace <n>          → newest <n> ring events
//! health             → "ok …" / "err …" from the node's health check
//!                      ("ok no health check registered" without one)
//! ```
//!
//! # Threading
//!
//! [`ObsServer::bind`] mirrors the cluster's `ReplicaServer`: one accept
//! loop thread, one detached handler thread per connection, shutdown by
//! flag + self-connect poke (also on `Drop`). Handlers only read the
//! registry, so polling never blocks the serving path beyond the
//! per-instrument locks.

use crate::Telemetry;
use realloc_core::textio::{read_frame, write_frame};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on one command frame (a short verb).
const MAX_COMMAND_BYTES: u32 = 4096;

/// Cap on one response frame (a rendered dump).
const MAX_RESPONSE_BYTES: u32 = 16 << 20;

/// A node-level health probe served under the `health` verb: returns an
/// `ok …` line when the node is healthy and an `err …` line naming what
/// is wrong (failed engine `validate()`, a sticky durability error, a
/// poisoned handler). Runs on the observer connection's thread, so keep
/// it cheap and never let it block on the serving path.
pub type HealthCheck = Arc<dyn Fn() -> String + Send + Sync>;

/// Handler-thread policy for [`ObsServer`] connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// How long a handler waits for the next command frame before
    /// reaping the connection. A client that connects and goes silent
    /// otherwise pins its detached handler thread (and socket) forever.
    /// `None` disables the timeout (trusted pollers only).
    pub read_timeout: Option<Duration>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            read_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Serves one [`Telemetry`]'s registry and trace ring over TCP.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `telemetry` on a background accept loop, with the default
    /// [`ObsConfig`] (silent connections reaped after 60 s).
    pub fn bind(addr: impl ToSocketAddrs, telemetry: Telemetry) -> std::io::Result<ObsServer> {
        Self::bind_with(addr, telemetry, ObsConfig::default())
    }

    /// [`ObsServer::bind`] with an explicit handler policy.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        telemetry: Telemetry,
        config: ObsConfig,
    ) -> std::io::Result<ObsServer> {
        Self::bind_full(addr, telemetry, config, None)
    }

    /// [`ObsServer::bind_with`] plus a node health probe served under
    /// the `health` verb.
    pub fn bind_full(
        addr: impl ToSocketAddrs,
        telemetry: Telemetry,
        config: ObsConfig,
        health: Option<HealthCheck>,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("obs-accept-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Reap silent clients: without this, an idle peer
                    // pins its handler thread for the process lifetime.
                    let _ = stream.set_read_timeout(config.read_timeout);
                    let tel = telemetry.clone();
                    let health = health.clone();
                    // Detached: handlers exit when their peer
                    // disconnects or goes quiet past the timeout.
                    let _ = std::thread::Builder::new()
                        .name("obs-conn".to_string())
                        .spawn(move || serve_connection(stream, tel, health));
                }
            })?;
        Ok(ObsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (poll it with [`ObsClient`] or the fetchers).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection: read command → render → respond, until disconnect.
fn serve_connection(stream: TcpStream, telemetry: Telemetry, health: Option<HealthCheck>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let payload = match read_frame(&mut reader, MAX_COMMAND_BYTES) {
            Ok(Some(p)) => p,
            // Peer gone — or silent past the read timeout (the error
            // arm is also how a reaped connection exits).
            Ok(None) | Err(_) => return,
        };
        let response = match std::str::from_utf8(&payload).map(str::trim) {
            Ok(command) => dispatch(command, &telemetry, &health),
            Err(e) => format!("err command is not UTF-8: {e}"),
        };
        if write_frame(&mut writer, response.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Routes one trimmed command line to its renderer.
fn dispatch(command: &str, telemetry: &Telemetry, health: &Option<HealthCheck>) -> String {
    let (verb, arg) = match command.split_once(char::is_whitespace) {
        Some((v, rest)) => (v, rest.trim()),
        None => (command, ""),
    };
    match (verb, arg) {
        ("metrics", "") => telemetry.render_text(),
        ("metrics", prefix) => telemetry.render_text_filtered(prefix),
        ("trace", "") => telemetry.render_trace(),
        ("trace", n) => match n.parse::<usize>() {
            Ok(n) => telemetry.render_trace_last(n),
            Err(_) => format!("err bad trace limit '{n}' (decimal count)"),
        },
        ("health", "") => match health {
            Some(check) => check(),
            None => "ok no health check registered".to_string(),
        },
        _ => format!(
            "err unknown command '{command}' (expected 'metrics [prefix]', 'trace [n]' or 'health')"
        ),
    }
}

/// A persistent poller connection to one [`ObsServer`].
#[derive(Debug)]
pub struct ObsClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ObsClient {
    /// Connects to an [`ObsServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ObsClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone()?;
        Ok(ObsClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Bounds how long one fetch waits for the server's response frame.
    /// Without this, a half-dead server (accepted the connection, never
    /// answers) hangs the poller forever; with it, the fetch surfaces a
    /// timeout [`std::io::Error`] the caller can treat as "unreachable".
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one command and returns the response text.
    pub fn fetch(&mut self, command: &str) -> std::io::Result<String> {
        write_frame(&mut self.writer, command.as_bytes())?;
        self.writer.flush()?;
        let Some(payload) = read_frame(&mut self.reader, MAX_RESPONSE_BYTES)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ));
        };
        String::from_utf8(payload).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response is not UTF-8: {e}"),
            )
        })
    }

    /// The registry in Prometheus text format.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.fetch("metrics")
    }

    /// The registry filtered to names starting with `prefix`.
    pub fn metrics_filtered(&mut self, prefix: &str) -> std::io::Result<String> {
        self.fetch(&format!("metrics {prefix}"))
    }

    /// The trace ring as text, oldest first (newest-capped; see
    /// [`crate::DEFAULT_TRACE_RENDER_CAP`]).
    pub fn trace(&mut self) -> std::io::Result<String> {
        self.fetch("trace")
    }

    /// The newest `n` trace ring events as text, oldest first.
    pub fn trace_last(&mut self, n: usize) -> std::io::Result<String> {
        self.fetch(&format!("trace {n}"))
    }

    /// The node's health line (`ok …` / `err …`).
    pub fn health(&mut self) -> std::io::Result<String> {
        self.fetch("health")
    }
}

/// One-shot: connect, fetch the metrics dump, disconnect.
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    ObsClient::connect(addr)?.metrics()
}

/// One-shot: connect, fetch the trace dump, disconnect.
pub fn fetch_trace(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    ObsClient::connect(addr)?.trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_sample, Clock, Severity};

    #[test]
    fn serves_metrics_and_trace_over_tcp() {
        let tel = Telemetry::with_clock(Clock::manual(), 16);
        tel.counter("obs_reqs_total").add(21);
        tel.gauge("obs_jobs").set(4);
        tel.histogram("obs_lat_nanos").record(1_000);
        tel.point(Severity::Info, "boot", 1, 2);

        let server = ObsServer::bind("127.0.0.1:0", tel.clone()).unwrap();
        let mut client = ObsClient::connect(server.addr()).unwrap();

        let text = client.metrics().unwrap();
        assert_eq!(parse_sample(&text, "obs_reqs_total"), Some(21));
        assert_eq!(parse_sample(&text, "obs_jobs"), Some(4));
        assert_eq!(parse_sample(&text, "obs_lat_nanos_count"), Some(1));

        // Live: a second poll on the same connection sees new values.
        tel.counter("obs_reqs_total").add(1);
        let text = client.metrics().unwrap();
        assert_eq!(parse_sample(&text, "obs_reqs_total"), Some(22));

        let trace = client.trace().unwrap();
        assert!(trace.contains("info point boot 1 2"), "{trace}");

        let err = client.fetch("bogus").unwrap();
        assert!(err.starts_with("err unknown command"), "{err}");

        // One-shot helpers work too.
        let text = fetch_metrics(server.addr()).unwrap();
        assert_eq!(parse_sample(&text, "obs_reqs_total"), Some(22));
    }

    /// Regression: a client that connects and never sends a frame used
    /// to pin its detached handler thread forever (no read timeout).
    /// With the timeout the handler reaps the connection — observable
    /// from the client side as EOF on its next read.
    #[test]
    fn silent_client_is_reaped_by_read_timeout() {
        use std::io::Read as _;

        let tel = Telemetry::with_clock(Clock::manual(), 4);
        let server = ObsServer::bind_with(
            "127.0.0.1:0",
            tel.clone(),
            ObsConfig {
                read_timeout: Some(Duration::from_millis(50)),
            },
        )
        .unwrap();

        // Connect and go silent. The handler must hang up on us.
        let mut silent = TcpStream::connect(server.addr()).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = silent
            .read(&mut buf)
            .expect("server should close, not stall");
        assert_eq!(n, 0, "expected EOF from the reaped handler");

        // The server itself is unharmed: a live poller still works.
        tel.counter("obs_alive_total").add(1);
        let text = fetch_metrics(server.addr()).unwrap();
        assert_eq!(parse_sample(&text, "obs_alive_total"), Some(1));
    }

    #[test]
    fn filtered_metrics_and_capped_trace_verbs() {
        let tel = Telemetry::with_clock(Clock::manual(), 16);
        tel.counter("cluster_frames_total").add(5);
        tel.counter("service_reqs_total").add(9);
        for i in 0..6u64 {
            tel.point(Severity::Debug, "tick", i, 0);
        }

        let server = ObsServer::bind("127.0.0.1:0", tel.clone()).unwrap();
        let mut client = ObsClient::connect(server.addr()).unwrap();

        // `metrics <prefix>` ships only the matching slice…
        let text = client.metrics_filtered("cluster_").unwrap();
        assert_eq!(parse_sample(&text, "cluster_frames_total"), Some(5));
        assert!(!text.contains("service_reqs_total"), "{text}");
        // …while bare `metrics` is unchanged.
        let text = client.metrics().unwrap();
        assert_eq!(parse_sample(&text, "service_reqs_total"), Some(9));

        // `trace <n>` pages the ring; the header reports truncation.
        let trace = client.trace_last(2).unwrap();
        assert!(
            trace.starts_with("# trace: showing 2 of 6 event(s)"),
            "{trace}"
        );
        assert!(trace.contains("tick 5 0"), "{trace}");
        assert!(!trace.contains("tick 3 0"), "{trace}");
        let err = client.fetch("trace banana").unwrap();
        assert!(err.starts_with("err bad trace limit"), "{err}");

        // `health` without a registered probe says so (and is `ok`).
        let health = client.health().unwrap();
        assert_eq!(health, "ok no health check registered");
    }

    #[test]
    fn health_verb_runs_the_registered_probe() {
        use std::sync::Mutex;

        let tel = Telemetry::with_clock(Clock::manual(), 4);
        let status = Arc::new(Mutex::new("ok all well".to_string()));
        let probe_status = Arc::clone(&status);
        let server = ObsServer::bind_full(
            "127.0.0.1:0",
            tel,
            ObsConfig::default(),
            Some(Arc::new(move || probe_status.lock().unwrap().clone())),
        )
        .unwrap();
        let mut client = ObsClient::connect(server.addr()).unwrap();
        assert_eq!(client.health().unwrap(), "ok all well");
        // Live: the probe reflects current node state on every poll.
        *status.lock().unwrap() = "err durability: fsync failed".to_string();
        assert_eq!(client.health().unwrap(), "err durability: fsync failed");
    }

    /// Satellite: a half-dead server — accepts the connection but never
    /// responds — must surface a timeout error to the poller, not hang
    /// it. (The collector turns that error into `unreachable`.)
    #[test]
    fn client_read_timeout_surfaces_io_error_not_a_hang() {
        // A raw listener that accepts and then goes silent.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let keep_alive = std::thread::spawn(move || {
            // Hold the accepted socket open (don't EOF) until the test ends.
            let conn = listener.accept().map(|(s, _)| s);
            std::thread::sleep(Duration::from_secs(2));
            drop(conn);
        });

        let mut client = ObsClient::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let start = std::time::Instant::now();
        let err = client.metrics().expect_err("must time out, not hang");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(1), "timed out late");
        keep_alive.join().unwrap();
    }
}
