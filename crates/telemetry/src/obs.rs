//! The observability endpoint: a tiny request/response server over the
//! workspace's length-prefixed TCP framing, so any process (or any node
//! of a replicated cluster) can be polled for live metrics.
//!
//! # Wire protocol
//!
//! Both directions carry [`realloc_core::textio::write_frame`] frames (a
//! `u32` big-endian byte count, then the payload). The client sends one
//! command per frame — `metrics` or `trace` — and the server answers
//! with one frame holding the rendered text ([`Telemetry::render_text`]
//! / [`Telemetry::render_trace`]); unknown commands get an `err …` line.
//! A connection serves any number of commands (poll on a schedule), and
//! the one-shot [`fetch_metrics`]/[`fetch_trace`] helpers connect, ask
//! once, and disconnect.
//!
//! # Threading
//!
//! [`ObsServer::bind`] mirrors the cluster's `ReplicaServer`: one accept
//! loop thread, one detached handler thread per connection, shutdown by
//! flag + self-connect poke (also on `Drop`). Handlers only read the
//! registry, so polling never blocks the serving path beyond the
//! per-instrument locks.

use crate::Telemetry;
use realloc_core::textio::{read_frame, write_frame};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on one command frame (a short verb).
const MAX_COMMAND_BYTES: u32 = 4096;

/// Cap on one response frame (a rendered dump).
const MAX_RESPONSE_BYTES: u32 = 16 << 20;

/// Handler-thread policy for [`ObsServer`] connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// How long a handler waits for the next command frame before
    /// reaping the connection. A client that connects and goes silent
    /// otherwise pins its detached handler thread (and socket) forever.
    /// `None` disables the timeout (trusted pollers only).
    pub read_timeout: Option<Duration>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            read_timeout: Some(Duration::from_secs(60)),
        }
    }
}

/// Serves one [`Telemetry`]'s registry and trace ring over TCP.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `telemetry` on a background accept loop, with the default
    /// [`ObsConfig`] (silent connections reaped after 60 s).
    pub fn bind(addr: impl ToSocketAddrs, telemetry: Telemetry) -> std::io::Result<ObsServer> {
        Self::bind_with(addr, telemetry, ObsConfig::default())
    }

    /// [`ObsServer::bind`] with an explicit handler policy.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        telemetry: Telemetry,
        config: ObsConfig,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("obs-accept-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Reap silent clients: without this, an idle peer
                    // pins its handler thread for the process lifetime.
                    let _ = stream.set_read_timeout(config.read_timeout);
                    let tel = telemetry.clone();
                    // Detached: handlers exit when their peer
                    // disconnects or goes quiet past the timeout.
                    let _ = std::thread::Builder::new()
                        .name("obs-conn".to_string())
                        .spawn(move || serve_connection(stream, tel));
                }
            })?;
        Ok(ObsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (poll it with [`ObsClient`] or the fetchers).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection: read command → render → respond, until disconnect.
fn serve_connection(stream: TcpStream, telemetry: Telemetry) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let payload = match read_frame(&mut reader, MAX_COMMAND_BYTES) {
            Ok(Some(p)) => p,
            // Peer gone — or silent past the read timeout (the error
            // arm is also how a reaped connection exits).
            Ok(None) | Err(_) => return,
        };
        let response = match std::str::from_utf8(&payload).map(str::trim) {
            Ok("metrics") => telemetry.render_text(),
            Ok("trace") => telemetry.render_trace(),
            Ok(other) => format!("err unknown command '{other}' (expected 'metrics' or 'trace')"),
            Err(e) => format!("err command is not UTF-8: {e}"),
        };
        if write_frame(&mut writer, response.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// A persistent poller connection to one [`ObsServer`].
#[derive(Debug)]
pub struct ObsClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ObsClient {
    /// Connects to an [`ObsServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ObsClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone()?;
        Ok(ObsClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one command and returns the response text.
    pub fn fetch(&mut self, command: &str) -> std::io::Result<String> {
        write_frame(&mut self.writer, command.as_bytes())?;
        self.writer.flush()?;
        let Some(payload) = read_frame(&mut self.reader, MAX_RESPONSE_BYTES)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ));
        };
        String::from_utf8(payload).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response is not UTF-8: {e}"),
            )
        })
    }

    /// The registry in Prometheus text format.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.fetch("metrics")
    }

    /// The trace ring as text, oldest first.
    pub fn trace(&mut self) -> std::io::Result<String> {
        self.fetch("trace")
    }
}

/// One-shot: connect, fetch the metrics dump, disconnect.
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    ObsClient::connect(addr)?.metrics()
}

/// One-shot: connect, fetch the trace dump, disconnect.
pub fn fetch_trace(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    ObsClient::connect(addr)?.trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_sample, Clock, Severity};

    #[test]
    fn serves_metrics_and_trace_over_tcp() {
        let tel = Telemetry::with_clock(Clock::manual(), 16);
        tel.counter("obs_reqs_total").add(21);
        tel.gauge("obs_jobs").set(4);
        tel.histogram("obs_lat_nanos").record(1_000);
        tel.point(Severity::Info, "boot", 1, 2);

        let server = ObsServer::bind("127.0.0.1:0", tel.clone()).unwrap();
        let mut client = ObsClient::connect(server.addr()).unwrap();

        let text = client.metrics().unwrap();
        assert_eq!(parse_sample(&text, "obs_reqs_total"), Some(21));
        assert_eq!(parse_sample(&text, "obs_jobs"), Some(4));
        assert_eq!(parse_sample(&text, "obs_lat_nanos_count"), Some(1));

        // Live: a second poll on the same connection sees new values.
        tel.counter("obs_reqs_total").add(1);
        let text = client.metrics().unwrap();
        assert_eq!(parse_sample(&text, "obs_reqs_total"), Some(22));

        let trace = client.trace().unwrap();
        assert!(trace.contains("info point boot 1 2"), "{trace}");

        let err = client.fetch("bogus").unwrap();
        assert!(err.starts_with("err unknown command"), "{err}");

        // One-shot helpers work too.
        let text = fetch_metrics(server.addr()).unwrap();
        assert_eq!(parse_sample(&text, "obs_reqs_total"), Some(22));
    }

    /// Regression: a client that connects and never sends a frame used
    /// to pin its detached handler thread forever (no read timeout).
    /// With the timeout the handler reaps the connection — observable
    /// from the client side as EOF on its next read.
    #[test]
    fn silent_client_is_reaped_by_read_timeout() {
        use std::io::Read as _;

        let tel = Telemetry::with_clock(Clock::manual(), 4);
        let server = ObsServer::bind_with(
            "127.0.0.1:0",
            tel.clone(),
            ObsConfig {
                read_timeout: Some(Duration::from_millis(50)),
            },
        )
        .unwrap();

        // Connect and go silent. The handler must hang up on us.
        let mut silent = TcpStream::connect(server.addr()).unwrap();
        silent
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        let n = silent
            .read(&mut buf)
            .expect("server should close, not stall");
        assert_eq!(n, 0, "expected EOF from the reaped handler");

        // The server itself is unharmed: a live poller still works.
        tel.counter("obs_alive_total").add(1);
        let text = fetch_metrics(server.addr()).unwrap();
        assert_eq!(parse_sample(&text, "obs_alive_total"), Some(1));
    }
}
