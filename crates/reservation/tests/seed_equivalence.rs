//! Old-vs-new scheduler equivalence.
//!
//! `mod seed` is a frozen copy of the **pre-optimization** (PR-1 seed)
//! `ReservationScheduler` — per-rebalance `Vec` allocations, fresh
//! `quotas_at` vectors, full `iw.slots()` scans, `std` SipHash maps. The
//! optimized scheduler (scratch buffers, interval occupancy index, FxHash
//! maps) must be *observationally identical*: same per-request moves, same
//! placements, same reallocation cost, same accept/reject decisions — on
//! density-certified churn and on adversarial toggle/cascade streams.
//!
//! If a future change intentionally alters placement behavior, the frozen
//! copy must be re-snapshotted in the same PR that changes it.

use realloc_core::{JobId, Request, SingleMachineReallocator, Window};
use realloc_reservation::ReservationScheduler;
use realloc_workloads::{ChurnConfig, ChurnGenerator};

/// Frozen seed implementation (copy of `scheduler.rs`/`state.rs`/`base.rs`
/// at PR 1, trimmed to what the equivalence run needs).
mod seed {
    use realloc_core::{Error, JobId, SingleMachineReallocator, Slot, SlotMove, Tower, Window};
    use realloc_reservation::quota::{
        fulfilled_quotas, positions_gained, positions_lost, reservation_count, Demand,
    };
    use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

    pub const MAX_TIME: u64 = 1 << 63;

    #[derive(Clone, Copy, Debug)]
    pub struct JobRec {
        pub window: Window,
        pub level: usize,
        pub slot: Slot,
    }

    #[derive(Clone, Debug, Default)]
    pub struct WindowState {
        pub x: u64,
        pub assigned: BTreeMap<Slot, Option<JobId>>,
        pub empty_assigned: BTreeSet<Slot>,
    }

    impl WindowState {
        fn add_assignment(&mut self, slot: Slot) {
            let prev = self.assigned.insert(slot, None);
            debug_assert!(prev.is_none());
            self.empty_assigned.insert(slot);
        }

        fn remove_assignment(&mut self, slot: Slot) {
            let prev = self.assigned.remove(&slot);
            debug_assert_eq!(prev, Some(None));
            self.empty_assigned.remove(&slot);
        }

        fn occupy(&mut self, slot: Slot, job: JobId) {
            let entry = self.assigned.get_mut(&slot).expect("occupy unassigned");
            debug_assert!(entry.is_none());
            *entry = Some(job);
            self.empty_assigned.remove(&slot);
        }

        fn vacate(&mut self, slot: Slot) {
            let entry = self.assigned.get_mut(&slot).expect("vacate unassigned");
            debug_assert!(entry.is_some());
            *entry = None;
            self.empty_assigned.insert(slot);
        }

        fn assigned_in(
            &self,
            interval: Window,
        ) -> impl Iterator<Item = (Slot, Option<JobId>)> + '_ {
            self.assigned
                .range(interval.start()..interval.end())
                .map(|(&s, &j)| (s, j))
        }
    }

    #[derive(Clone, Debug, Default)]
    pub struct IntervalState {
        pub lower_occ: BTreeSet<Slot>,
    }

    #[derive(Clone, Debug, Default)]
    pub struct Level {
        pub windows: HashMap<Window, WindowState>,
        pub intervals: HashMap<Slot, IntervalState>,
        pub high_water: u64,
    }

    impl Level {
        fn chain_spans(&self, ispan: u64) -> impl Iterator<Item = u64> + '_ {
            let hw = self.high_water;
            std::iter::successors(Some(2 * ispan), move |&s| s.checked_mul(2))
                .take_while(move |&s| s <= hw)
        }
    }

    #[derive(Debug)]
    enum Task {
        Rebalance {
            level: usize,
            istart: Slot,
        },
        Place {
            job: JobId,
            window: Window,
            level: usize,
            from: Option<Slot>,
        },
    }

    /// The PR-1 seed scheduler, frozen.
    #[derive(Clone, Debug)]
    pub struct SeedScheduler {
        tower: Tower,
        jobs: HashMap<JobId, JobRec>,
        slot_jobs: HashMap<Slot, JobId>,
        levels: Vec<Level>,
    }

    impl SeedScheduler {
        pub fn new() -> Self {
            Self::with_tower(Tower::paper())
        }

        pub fn with_tower(tower: Tower) -> Self {
            let n = tower.max_levels();
            SeedScheduler {
                tower,
                jobs: HashMap::new(),
                slot_jobs: HashMap::new(),
                levels: (0..n).map(|_| Level::default()).collect(),
            }
        }

        fn ispan(&self, level: usize) -> u64 {
            self.tower.interval_span(level)
        }

        fn interval_of(&self, level: usize, slot: Slot) -> Slot {
            let span = self.ispan(level);
            slot - slot % span
        }

        fn num_intervals(&self, level: usize, w: Window) -> u64 {
            w.span() / self.ispan(level)
        }

        fn quotas_at(&self, level: usize, istart: Slot) -> Vec<(Window, u64)> {
            let ispan = self.ispan(level);
            let lvl = &self.levels[level];
            let lower = lvl
                .intervals
                .get(&istart)
                .map(|i| i.lower_occ.len() as u64)
                .unwrap_or(0);
            let allowance = ispan - lower;

            let mut chain: Vec<Window> = Vec::new();
            let mut demands: Vec<Demand> = Vec::new();
            for span in lvl.chain_spans(ispan) {
                let w = Window::aligned_enclosing(istart, span);
                let x = lvl.windows.get(&w).map(|ws| ws.x).unwrap_or(0);
                let ni = span / ispan;
                let pos = (istart - w.start()) / ispan;
                chain.push(w);
                demands.push(Demand {
                    span,
                    reservations: reservation_count(x, ni, pos),
                });
            }
            let quotas = fulfilled_quotas(&demands, allowance);
            chain.into_iter().zip(quotas).collect()
        }

        fn drain(
            &mut self,
            work: &mut VecDeque<Task>,
            moves: &mut Vec<SlotMove>,
        ) -> Result<(), Error> {
            while let Some(task) = work.pop_front() {
                match task {
                    Task::Rebalance { level, istart } => {
                        self.rebalance(level, istart, moves)?;
                    }
                    Task::Place {
                        job,
                        window,
                        level,
                        from,
                    } => {
                        self.place(job, window, level, from, moves, work)?;
                    }
                }
            }
            Ok(())
        }

        fn rebalance(
            &mut self,
            level: usize,
            istart: Slot,
            moves: &mut Vec<SlotMove>,
        ) -> Result<(), Error> {
            let ispan = self.ispan(level);
            let iw = Window::with_span(istart, ispan);
            let targets = self.quotas_at(level, istart);

            for &(w, quota) in &targets {
                if !self.levels[level].windows.contains_key(&w) {
                    continue;
                }
                let invalid: Vec<Slot> = {
                    let lvl = &self.levels[level];
                    let ws = &lvl.windows[&w];
                    let occ = lvl.intervals.get(&istart);
                    ws.assigned_in(iw)
                        .filter(|(s, _)| occ.is_some_and(|i| i.lower_occ.contains(s)))
                        .map(|(s, _)| s)
                        .collect()
                };
                for s in invalid {
                    self.levels[level]
                        .windows
                        .get_mut(&w)
                        .unwrap()
                        .remove_assignment(s);
                }

                let cur: Vec<(Slot, Option<JobId>)> =
                    self.levels[level].windows[&w].assigned_in(iw).collect();
                let excess = (cur.len() as u64).saturating_sub(quota);
                if excess == 0 {
                    continue;
                }
                let mut shed = 0u64;
                for &(s, _) in cur.iter().filter(|(_, o)| o.is_none()) {
                    if shed == excess {
                        break;
                    }
                    self.levels[level]
                        .windows
                        .get_mut(&w)
                        .unwrap()
                        .remove_assignment(s);
                    shed += 1;
                }
                if shed < excess {
                    for &(s, occ) in cur.iter().filter(|(_, o)| o.is_some()) {
                        if shed == excess {
                            break;
                        }
                        let j = occ.expect("filtered on occupied");
                        self.move_job(level, w, j, moves)?;
                        self.levels[level]
                            .windows
                            .get_mut(&w)
                            .unwrap()
                            .remove_assignment(s);
                        shed += 1;
                    }
                }
            }

            let mut taken: BTreeSet<Slot> = self.levels[level]
                .intervals
                .get(&istart)
                .map(|i| i.lower_occ.iter().copied().collect())
                .unwrap_or_default();
            for &(w, _) in &targets {
                if let Some(ws) = self.levels[level].windows.get(&w) {
                    for (s, _) in ws.assigned_in(iw) {
                        taken.insert(s);
                    }
                }
            }
            for &(w, quota) in &targets {
                let cur = self.levels[level]
                    .windows
                    .get(&w)
                    .map(|ws| ws.assigned_in(iw).count() as u64)
                    .unwrap_or(0);
                let mut needed = quota.saturating_sub(cur);
                if needed == 0 {
                    continue;
                }
                for s in iw.slots() {
                    if needed == 0 {
                        break;
                    }
                    if taken.contains(&s) || self.slot_jobs.contains_key(&s) {
                        continue;
                    }
                    taken.insert(s);
                    self.levels[level]
                        .windows
                        .entry(w)
                        .or_default()
                        .add_assignment(s);
                    needed -= 1;
                }
                for s in iw.slots() {
                    if needed == 0 {
                        break;
                    }
                    if taken.contains(&s) {
                        continue;
                    }
                    taken.insert(s);
                    self.levels[level]
                        .windows
                        .entry(w)
                        .or_default()
                        .add_assignment(s);
                    needed -= 1;
                }
                debug_assert_eq!(needed, 0, "quota exceeds free capacity in interval");
            }
            Ok(())
        }

        fn move_job(
            &mut self,
            level: usize,
            w: Window,
            job: JobId,
            moves: &mut Vec<SlotMove>,
        ) -> Result<(), Error> {
            let s = self.jobs[&job].slot;
            let target = match self.pick_fulfilled_slot(level, w) {
                Some(t) => t,
                None => self.hunt_capacity(job, level, w, moves)?,
            };
            debug_assert_ne!(target, s);
            let hopper = self.slot_jobs.get(&target).copied();

            self.slot_jobs.insert(target, job);
            self.jobs.get_mut(&job).unwrap().slot = target;
            {
                let ws = self.levels[level].windows.get_mut(&w).unwrap();
                ws.vacate(s);
                ws.occupy(target, job);
            }
            moves.push(SlotMove {
                job,
                from: Some(s),
                to: Some(target),
            });

            let htop = match hopper {
                Some(h) => {
                    let hrec = self.jobs[&h];
                    self.slot_jobs.insert(s, h);
                    self.jobs.get_mut(&h).unwrap().slot = s;
                    let hws = self.levels[hrec.level]
                        .windows
                        .get_mut(&hrec.window)
                        .unwrap();
                    hws.vacate(target);
                    hws.remove_assignment(target);
                    hws.add_assignment(s);
                    hws.occupy(s, h);
                    moves.push(SlotMove {
                        job: h,
                        from: Some(target),
                        to: Some(s),
                    });
                    hrec.level
                }
                None => {
                    self.slot_jobs.remove(&s);
                    self.levels.len() - 1
                }
            };

            for lvl2 in (level + 1)..=htop {
                let istart = self.interval_of(lvl2, s);
                if let Some(rec) = self.levels[lvl2].intervals.get_mut(&istart) {
                    rec.lower_occ.remove(&s);
                    rec.lower_occ.insert(target);
                }
                if let Some(w2) = self.assignment_holder(lvl2, target) {
                    let ws2 = self.levels[lvl2].windows.get_mut(&w2).unwrap();
                    ws2.remove_assignment(target);
                    ws2.add_assignment(s);
                }
            }
            Ok(())
        }

        fn assignment_holder(&self, level: usize, slot: Slot) -> Option<Window> {
            let ispan = self.ispan(level);
            let lvl = &self.levels[level];
            for span in lvl.chain_spans(ispan) {
                let w = Window::aligned_enclosing(slot, span);
                if let Some(ws) = lvl.windows.get(&w) {
                    if let Some(occ) = ws.assigned.get(&slot) {
                        debug_assert!(occ.is_none());
                        return Some(w);
                    }
                }
            }
            None
        }

        #[allow(clippy::too_many_arguments)]
        fn occupy_slot(
            &mut self,
            job: JobId,
            window: Window,
            level: usize,
            slot: Slot,
            from: Option<Slot>,
            moves: &mut Vec<SlotMove>,
            work: &mut VecDeque<Task>,
        ) {
            let displaced = self.slot_jobs.insert(slot, job).map(|h| {
                let hrec = self.jobs[&h];
                self.levels[hrec.level]
                    .windows
                    .get_mut(&hrec.window)
                    .unwrap()
                    .vacate(slot);
                (h, hrec)
            });
            self.jobs.insert(
                job,
                JobRec {
                    window,
                    level,
                    slot,
                },
            );
            moves.push(SlotMove {
                job,
                from,
                to: Some(slot),
            });

            let htop = displaced
                .as_ref()
                .map(|(_, hrec)| hrec.level)
                .unwrap_or(self.levels.len() - 1);
            for lvl2 in (level + 1)..=htop {
                let istart = self.interval_of(lvl2, slot);
                self.levels[lvl2]
                    .intervals
                    .entry(istart)
                    .or_default()
                    .lower_occ
                    .insert(slot);
                work.push_back(Task::Rebalance {
                    level: lvl2,
                    istart,
                });
            }
            if let Some((h, hrec)) = displaced {
                work.push_back(Task::Place {
                    job: h,
                    window: hrec.window,
                    level: hrec.level,
                    from: Some(slot),
                });
            }
        }

        fn vacate_physical(
            &mut self,
            job: JobId,
            level: usize,
            slot: Slot,
            moves: &mut Vec<SlotMove>,
        ) {
            let prev = self.slot_jobs.remove(&slot);
            debug_assert_eq!(prev, Some(job));
            moves.push(SlotMove {
                job,
                from: Some(slot),
                to: None,
            });
            for lvl2 in (level + 1)..self.levels.len() {
                let istart = self.interval_of(lvl2, slot);
                let mut emptied = false;
                if let Some(rec) = self.levels[lvl2].intervals.get_mut(&istart) {
                    rec.lower_occ.remove(&slot);
                    emptied = rec.lower_occ.is_empty();
                }
                if emptied {
                    self.levels[lvl2].intervals.remove(&istart);
                }
            }
        }

        fn place(
            &mut self,
            job: JobId,
            window: Window,
            level: usize,
            from: Option<Slot>,
            moves: &mut Vec<SlotMove>,
            work: &mut VecDeque<Task>,
        ) -> Result<(), Error> {
            let slot = match self.pick_fulfilled_slot(level, window) {
                Some(s) => s,
                None => self.hunt_capacity(job, level, window, moves)?,
            };
            self.occupy_slot(job, window, level, slot, from, moves, work);
            self.levels[level]
                .windows
                .get_mut(&window)
                .unwrap()
                .occupy(slot, job);
            Ok(())
        }

        fn pick_fulfilled_slot(&self, level: usize, window: Window) -> Option<Slot> {
            let ws = self.levels[level].windows.get(&window)?;
            ws.empty_assigned
                .iter()
                .copied()
                .find(|s| !self.slot_jobs.contains_key(s))
                .or_else(|| ws.empty_assigned.iter().copied().next())
        }

        fn hunt_capacity(
            &mut self,
            job: JobId,
            level: usize,
            window: Window,
            moves: &mut Vec<SlotMove>,
        ) -> Result<Slot, Error> {
            let ispan = self.ispan(level);
            let ni = self.num_intervals(level, window);
            for pos in 0..ni {
                let istart = window.start() + pos * ispan;
                self.rebalance(level, istart, moves)?;
                if let Some(s) = self.pick_fulfilled_slot(level, window) {
                    return Ok(s);
                }
            }
            Err(Error::CapacityExhausted {
                job,
                detail: format!(
                    "PLACE: window {window} at level {level} has no fulfilled empty slot \
                     in any of its {ni} intervals (underallocation precondition violated)"
                ),
            })
        }

        fn insert_leveled(
            &mut self,
            job: JobId,
            window: Window,
            level: usize,
            moves: &mut Vec<SlotMove>,
            work: &mut VecDeque<Task>,
        ) -> Result<(), Error> {
            let ispan = self.ispan(level);
            let ni = self.num_intervals(level, window);
            self.levels[level].high_water = self.levels[level].high_water.max(window.span());
            let x_old = {
                let ws = self.levels[level].windows.entry(window).or_default();
                let x_old = ws.x;
                ws.x += 1;
                x_old
            };

            for pos in positions_gained(x_old, ni) {
                work.push_back(Task::Rebalance {
                    level,
                    istart: window.start() + pos * ispan,
                });
            }

            let attempt = self
                .drain(work, moves)
                .and_then(|()| self.place(job, window, level, None, moves, work))
                .and_then(|()| self.drain(work, moves));
            match attempt {
                Ok(()) => Ok(()),
                Err(e) => {
                    work.clear();
                    let mut rollback = VecDeque::new();
                    if let Some(rec) = self.jobs.get(&job).copied() {
                        self.levels[level]
                            .windows
                            .get_mut(&window)
                            .unwrap()
                            .vacate(rec.slot);
                        self.vacate_physical(job, level, rec.slot, moves);
                        self.jobs.remove(&job);
                    }
                    self.levels[level].windows.get_mut(&window).unwrap().x -= 1;
                    for pos in positions_lost(x_old + 1, ni) {
                        rollback.push_back(Task::Rebalance {
                            level,
                            istart: window.start() + pos * ispan,
                        });
                    }
                    self.drain(&mut rollback, moves)?;
                    Err(e)
                }
            }
        }

        fn delete_leveled(
            &mut self,
            job: JobId,
            rec: JobRec,
            moves: &mut Vec<SlotMove>,
            work: &mut VecDeque<Task>,
        ) -> Result<(), Error> {
            let (window, level, slot) = (rec.window, rec.level, rec.slot);
            let ispan = self.ispan(level);
            let ni = self.num_intervals(level, window);

            self.levels[level]
                .windows
                .get_mut(&window)
                .unwrap()
                .vacate(slot);
            self.vacate_physical(job, level, slot, moves);
            self.jobs.remove(&job);

            let x_old = self.levels[level].windows[&window].x;
            self.levels[level].windows.get_mut(&window).unwrap().x -= 1;
            for pos in positions_lost(x_old, ni) {
                work.push_back(Task::Rebalance {
                    level,
                    istart: window.start() + pos * ispan,
                });
            }
            self.drain(work, moves)
        }

        fn insert_base(
            &mut self,
            job: JobId,
            window: Window,
            moves: &mut Vec<SlotMove>,
            work: &mut VecDeque<Task>,
        ) -> Result<(), Error> {
            let mut cur_job = job;
            let mut cur_window = window;
            let mut from = None;
            loop {
                let mut empty = None;
                let mut higher = None;
                let mut victim: Option<(JobId, JobRec)> = None;
                for s in cur_window.slots() {
                    match self.slot_jobs.get(&s) {
                        None => {
                            empty = Some(s);
                            break;
                        }
                        Some(&occ) => {
                            let rec = self.jobs[&occ];
                            if rec.level >= 1 {
                                higher.get_or_insert(s);
                            } else if rec.window.span() > cur_window.span()
                                && victim.is_none_or(|(_, v)| rec.window.span() < v.window.span())
                            {
                                victim = Some((occ, rec));
                            }
                        }
                    }
                }
                if let Some(slot) = empty.or(higher) {
                    self.occupy_slot(cur_job, cur_window, 0, slot, from, moves, work);
                    return Ok(());
                }
                let Some((victim_id, victim_rec)) = victim else {
                    return Err(Error::CapacityExhausted {
                        job: cur_job,
                        detail: format!(
                            "base cascade: window {cur_window} is full of level-0 jobs with \
                             no longer-span occupant to displace"
                        ),
                    });
                };
                let slot = victim_rec.slot;
                self.slot_jobs.insert(slot, cur_job);
                self.jobs.insert(
                    cur_job,
                    JobRec {
                        window: cur_window,
                        level: 0,
                        slot,
                    },
                );
                moves.push(SlotMove {
                    job: cur_job,
                    from,
                    to: Some(slot),
                });
                cur_job = victim_id;
                cur_window = victim_rec.window;
                from = Some(slot);
            }
        }

        fn delete_base(&mut self, job: JobId, rec: JobRec, moves: &mut Vec<SlotMove>) {
            debug_assert_eq!(rec.level, 0);
            self.vacate_physical(job, 0, rec.slot, moves);
            self.jobs.remove(&job);
        }
    }

    impl SingleMachineReallocator for SeedScheduler {
        fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error> {
            if self.jobs.contains_key(&id) {
                return Err(Error::DuplicateJob(id));
            }
            if !window.is_aligned() {
                return Err(Error::UnalignedWindow(window));
            }
            if window.end() > MAX_TIME {
                return Err(Error::UnsupportedJob {
                    job: id,
                    detail: format!("window end {} exceeds MAX_TIME 2^63", window.end()),
                });
            }
            let level = self.tower.level_of(window.span());
            let mut moves = Vec::new();
            let mut work = VecDeque::new();
            let result = if level == 0 {
                self.insert_base(id, window, &mut moves, &mut work)
                    .and_then(|()| self.drain(&mut work, &mut moves))
            } else {
                self.insert_leveled(id, window, level, &mut moves, &mut work)
            };
            result.map(|()| moves)
        }

        fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error> {
            let rec = *self.jobs.get(&id).ok_or(Error::UnknownJob(id))?;
            let mut moves = Vec::new();
            let mut work = VecDeque::new();
            if rec.level == 0 {
                self.delete_base(id, rec, &mut moves);
                self.drain(&mut work, &mut moves)?;
            } else {
                self.delete_leveled(id, rec, &mut moves, &mut work)?;
            }
            Ok(moves)
        }

        fn slot_of(&self, id: JobId) -> Option<Slot> {
            self.jobs.get(&id).map(|r| r.slot)
        }

        fn assignments(&self) -> Vec<(JobId, Slot)> {
            self.jobs.iter().map(|(&id, r)| (id, r.slot)).collect()
        }

        fn active_count(&self) -> usize {
            self.jobs.len()
        }

        fn name(&self) -> &'static str {
            "seed-reservation"
        }
    }
}

// ---------------------------------------------------------------------
// Lockstep driver
// ---------------------------------------------------------------------

/// Drives the frozen seed and the optimized scheduler through the same
/// stream, asserting identical per-request outcomes (moves on success,
/// error kind on rejection), identical netted reallocation cost, and
/// identical final placements.
fn assert_equivalent(requests: impl Iterator<Item = Request>, label: &str) {
    let mut old = seed::SeedScheduler::new();
    let mut new = ReservationScheduler::new();
    let (mut old_cost, mut new_cost) = (0u64, 0u64);
    for (i, r) in requests.enumerate() {
        let (old_out, new_out) = match r {
            Request::Insert { id, window } => (old.insert(id, window), new.insert(id, window)),
            Request::Delete { id } => (old.delete(id), new.delete(id)),
        };
        match (old_out, new_out) {
            (Ok(old_moves), Ok(new_moves)) => {
                assert_eq!(
                    old_moves, new_moves,
                    "{label}: request {i} ({r:?}) produced different moves"
                );
                let net = |moves: &[realloc_core::SlotMove]| {
                    realloc_core::RequestOutcome {
                        moves: moves.iter().map(|m| m.on_machine(0)).collect(),
                    }
                    .netted()
                    .reallocation_cost()
                };
                old_cost += net(&old_moves);
                new_cost += net(&new_moves);
            }
            (Err(oe), Err(ne)) => {
                assert_eq!(
                    std::mem::discriminant(&oe),
                    std::mem::discriminant(&ne),
                    "{label}: request {i} rejected differently: seed={oe:?} new={ne:?}"
                );
            }
            (o, n) => panic!("{label}: request {i} ({r:?}) diverged: seed={o:?} new={n:?}"),
        }
        new.check_invariants()
            .unwrap_or_else(|v| panic!("{label}: request {i}: {v}"));
    }
    assert_eq!(old_cost, new_cost, "{label}: total reallocation cost");
    let mut old_assign = old.assignments();
    let mut new_assign = new.assignments();
    old_assign.sort_unstable();
    new_assign.sort_unstable();
    assert_eq!(old_assign, new_assign, "{label}: final placements");
    assert_eq!(old.active_count(), new.active_count(), "{label}: active");
}

fn churn(seed: u64, gamma: u64, target: usize, spans: Vec<u64>, len: usize) -> Vec<Request> {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma,
            horizon: 1 << 13,
            spans,
            target_active: target,
            insert_bias: 0.6,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len).requests().to_vec()
}

#[test]
fn equivalent_on_certified_churn() {
    for seed in 0..6u64 {
        assert_equivalent(
            churn(seed, 8, 96, vec![1, 4, 16, 64, 256, 1024], 800).into_iter(),
            &format!("churn γ=8 seed {seed}"),
        );
    }
}

#[test]
fn equivalent_on_tight_churn() {
    // γ = 4 drives the scheduler much closer to the Lemma 8 boundary:
    // more sheds, more MOVEs, more capacity hunts — and occasionally a
    // CapacityExhausted rejection, which must also match.
    for seed in 0..6u64 {
        assert_equivalent(
            churn(seed, 4, 160, vec![1, 2, 8, 32, 128, 512], 800).into_iter(),
            &format!("churn γ=4 seed {seed}"),
        );
    }
}

#[test]
fn equivalent_on_multilevel_churn() {
    // Spans spread over three reservation levels (32/256/2048 interval
    // ladder) to exercise cross-level displacement + ancestor swaps.
    for seed in 0..4u64 {
        assert_equivalent(
            churn(seed, 8, 64, vec![64, 256, 1024, 4096], 600).into_iter(),
            &format!("multilevel seed {seed}"),
        );
    }
}

/// Aligned toggle adversary: a staircase of span-2 jobs plus unit-window
/// jobs hammering the front slots, forcing repeated MOVE/PLACE cascades —
/// the aligned cousin of the Lemma 12 toggle.
fn aligned_toggle(rounds: usize) -> Vec<Request> {
    let mut reqs = Vec::new();
    let mut next = 0u64;
    let mut fresh = |reqs: &mut Vec<Request>, window: Window| {
        let id = JobId(next);
        next += 1;
        reqs.push(Request::Insert { id, window });
        id
    };
    // Staircase: one span-2 job per aligned pair in [0, 32).
    let stairs: Vec<JobId> = (0..16u64)
        .map(|j| fresh(&mut reqs, Window::new(2 * j, 2 * j + 2)))
        .collect();
    for round in 0..rounds {
        // Toggle unit jobs through every pair, displacing the stair jobs.
        let units: Vec<JobId> = (0..16u64)
            .map(|j| fresh(&mut reqs, Window::new(2 * j, 2 * j + 1)))
            .collect();
        for id in units {
            reqs.push(Request::Delete { id });
        }
        // Every other round, churn a long job over the whole range.
        if round % 2 == 0 {
            let long = fresh(&mut reqs, Window::new(0, 32));
            reqs.push(Request::Delete { id: long });
        }
    }
    for id in stairs {
        reqs.push(Request::Delete { id });
    }
    reqs
}

#[test]
fn equivalent_on_aligned_toggle_adversary() {
    assert_equivalent(aligned_toggle(12).into_iter(), "aligned toggle");
}

#[test]
fn equivalent_on_leveled_saturation_adversary() {
    // Saturate one level-1 window hard (forcing hunts + rejections), then
    // drain it in insertion order while refilling with level-0 jobs.
    let mut reqs = Vec::new();
    let w = Window::new(0, 64);
    for i in 0..70u64 {
        reqs.push(Request::Insert {
            id: JobId(i),
            window: w,
        });
    }
    for i in 0..32u64 {
        reqs.push(Request::Delete { id: JobId(i) });
        reqs.push(Request::Insert {
            id: JobId(100 + i),
            window: Window::new((i % 8) * 8, (i % 8) * 8 + 8),
        });
    }
    for i in 32..70u64 {
        reqs.push(Request::Delete { id: JobId(i) });
    }
    for i in 0..32u64 {
        reqs.push(Request::Delete { id: JobId(100 + i) });
    }
    assert_equivalent(reqs.into_iter(), "leveled saturation");
}
