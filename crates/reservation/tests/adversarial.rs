//! Adversarial and failure-injection tests for the reservation scheduler:
//! saturation boundaries, displacement depth, churn at tight density, and
//! post-failure state integrity.

use realloc_core::{Error, JobId, SingleMachineReallocator, Tower, Window};
use realloc_reservation::{ReservationScheduler, TrimmedScheduler};

/// Fill a single window until refusal; state must stay valid throughout
/// and the failure must not corrupt anything.
#[test]
fn saturation_leaves_valid_state() {
    for span in [64u64, 256, 1024] {
        let mut s = ReservationScheduler::new();
        let mut placed = Vec::new();
        for i in 0..span + 4 {
            match s.insert(JobId(i), Window::with_span(0, span)) {
                Ok(_) => placed.push(JobId(i)),
                Err(Error::CapacityExhausted { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            s.check_invariants().unwrap();
        }
        // Near-full packing (E10b measures exact fill).
        assert!(
            placed.len() as u64 >= span * 9 / 10,
            "span {span}: {}",
            placed.len()
        );
        // Post-failure state is fully usable: drain everything.
        for id in placed {
            s.delete(id).unwrap();
            s.check_invariants().unwrap();
        }
        assert_eq!(s.occupied_slots(), 0);
    }
}

/// Repeated failed inserts must not leak state (rollback completeness).
#[test]
fn failed_inserts_do_not_leak() {
    let mut s = ReservationScheduler::new();
    // Fill a span-64 window completely-ish.
    let mut n = 0u64;
    while s.insert(JobId(n), Window::new(0, 64)).is_ok() {
        n += 1;
    }
    let states_before = s.window_states();
    let occupied_before = s.occupied_slots();
    for k in 0..50u64 {
        let e = s.insert(JobId(10_000 + k), Window::new(0, 64));
        assert!(matches!(e, Err(Error::CapacityExhausted { .. })));
        s.check_invariants().unwrap();
    }
    assert_eq!(s.window_states(), states_before, "window states leaked");
    assert_eq!(s.occupied_slots(), occupied_before);
    assert_eq!(s.active_count() as u64, n);
}

/// Maximum-depth displacement chains: one job per level, then force the
/// bottom job to displace upward through every level.
#[test]
fn full_depth_displacement_chain() {
    let tower = Tower::custom(vec![4, 16, 64, 256]);
    let mut s = ReservationScheduler::with_tower(tower);
    // One job per level with nested windows at the left edge; spans chosen
    // so each level is populated: 4 (L0), 8 (L1), 32 (L2), 128 (L3), 512 (L4).
    for (i, span) in [512u64, 128, 32, 8].iter().enumerate() {
        s.insert(JobId(i as u64), Window::with_span(0, *span))
            .unwrap();
        s.check_invariants().unwrap();
    }
    // Hammer the bottom: insert/delete span-4 jobs claiming the left edge.
    for round in 0..20u64 {
        let id = JobId(100 + round);
        s.insert(id, Window::new(0, 4)).unwrap();
        s.check_invariants().unwrap();
        s.delete(id).unwrap();
        s.check_invariants().unwrap();
    }
    assert_eq!(s.active_count(), 4);
}

/// Alternating insert/delete of the same window (the smallest possible
/// churn loop) must be stable — no cost creep, no state growth.
#[test]
fn flutter_stability() {
    let mut s = ReservationScheduler::new();
    s.insert(JobId(0), Window::new(0, 256)).unwrap();
    // One warm-up round materializes the standing reservations the loop
    // keeps touching; after that the state must be exactly periodic.
    s.insert(JobId(1), Window::new(0, 256)).unwrap();
    s.delete(JobId(1)).unwrap();
    let baseline_states = s.window_states();
    let mut worst = 0usize;
    for i in 2..500u64 {
        let m1 = s.insert(JobId(i), Window::new(0, 256)).unwrap();
        let m2 = s.delete(JobId(i)).unwrap();
        worst = worst.max(m1.len()).max(m2.len());
    }
    assert!(worst <= 4, "flutter cost crept to {worst}");
    assert_eq!(
        s.window_states(),
        baseline_states,
        "state grew under flutter"
    );
    s.check_invariants().unwrap();
}

/// Interleaved levels fighting over the same region, tight but
/// underallocated; long randomized run with full checking.
#[test]
fn contested_region_long_run() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4242);
    let mut s = TrimmedScheduler::new(4);
    let mut active: Vec<(JobId, Window)> = Vec::new();
    let mut next = 0u64;
    // All windows nest inside [0, 1024); keep the region ~1/4 full.
    for step in 0..2500 {
        let insert = active.len() < 256 && rng.gen_bool(0.55);
        if insert {
            let span = [1u64, 4, 16, 64, 256, 1024][rng.gen_range(0..6usize)];
            let start = rng.gen_range(0..(1024 / span)) * span;
            let w = Window::with_span(start, span);
            let id = JobId(next);
            next += 1;
            match s.insert(id, w) {
                Ok(_) => active.push((id, w)),
                Err(Error::CapacityExhausted { .. }) => {} // tight region: ok
                Err(e) => panic!("step {step}: {e}"),
            }
        } else if let Some(idx) = (!active.is_empty()).then(|| rng.gen_range(0..active.len())) {
            let (id, _) = active.swap_remove(idx);
            s.delete(id).unwrap();
        }
        s.inner().check_invariants().unwrap();
        let mut seen = std::collections::HashSet::new();
        for (id, slot) in s.assignments() {
            let w = active.iter().find(|&&(j, _)| j == id).unwrap().1;
            assert!(w.contains_slot(slot));
            assert!(seen.insert(slot));
        }
    }
}
