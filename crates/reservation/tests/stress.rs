//! Randomized stress tests: churn against a density budget, verifying the
//! full structural invariants and schedule feasibility after every single
//! request.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_core::feasibility::aligned_density_max_gamma;
use realloc_core::{JobId, SingleMachineReallocator, Tower, Window};
use realloc_reservation::{ReservationScheduler, TrimmedScheduler};
use std::collections::HashMap;

/// Drives `ops` random inserts/deletes over aligned windows inside
/// `[0, horizon)`, keeping every aligned window's job count within
/// `|W|/gamma` (Lemma 2 density), and checks invariants + feasibility after
/// every request. Returns the peak per-request move count observed.
fn churn(
    sched: &mut ReservationScheduler,
    seed: u64,
    ops: usize,
    horizon: u64,
    gamma: u64,
    spans: &[u64],
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: HashMap<JobId, Window> = HashMap::new();
    let mut next_id = 0u64;
    let mut peak = 0usize;

    for step in 0..ops {
        let do_insert = active.is_empty() || rng.gen_bool(0.6);
        if do_insert {
            // Rejection-sample a window that keeps the instance γ-dense.
            let mut placed = false;
            for _ in 0..40 {
                let span = spans[rng.gen_range(0..spans.len())];
                let start = rng.gen_range(0..(horizon / span)) * span;
                let w = Window::with_span(start, span);
                let mut windows: Vec<Window> = active.values().copied().collect();
                windows.push(w);
                if aligned_density_max_gamma(&windows, 1) < gamma {
                    continue;
                }
                let id = JobId(next_id);
                next_id += 1;
                let moves = sched
                    .insert(id, w)
                    .unwrap_or_else(|e| panic!("step {step}: insert {id} {w}: {e}"));
                peak = peak.max(moves.len());
                active.insert(id, w);
                placed = true;
                break;
            }
            if !placed {
                continue;
            }
        } else {
            let idx = rng.gen_range(0..active.len());
            let id = *active.keys().nth(idx).unwrap();
            let moves = sched
                .delete(id)
                .unwrap_or_else(|e| panic!("step {step}: delete {id}: {e}"));
            peak = peak.max(moves.len());
            active.remove(&id);
        }

        sched
            .check_invariants()
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        // Feasibility: every job in-window, no slot collisions.
        let mut seen = HashMap::new();
        for (id, slot) in sched.assignments() {
            let w = active[&id];
            assert!(
                w.contains_slot(slot),
                "step {step}: {id} at {slot} outside {w}"
            );
            if let Some(prev) = seen.insert(slot, id) {
                panic!("step {step}: {id} and {prev} share slot {slot}");
            }
        }
        assert_eq!(sched.active_count(), active.len());
    }
    peak
}

#[test]
fn churn_paper_tower_small_spans() {
    for seed in 0..4 {
        let mut s = ReservationScheduler::new();
        churn(&mut s, seed, 400, 1 << 10, 8, &[1, 2, 4, 8, 16, 32]);
    }
}

#[test]
fn churn_paper_tower_two_levels() {
    for seed in 0..4 {
        let mut s = ReservationScheduler::new();
        churn(&mut s, 100 + seed, 400, 1 << 10, 8, &[4, 16, 64, 128, 256]);
    }
}

#[test]
fn churn_paper_tower_three_levels() {
    for seed in 0..4 {
        let mut s = ReservationScheduler::new();
        churn(
            &mut s,
            200 + seed,
            300,
            1 << 13,
            16,
            &[2, 8, 32, 64, 256, 512, 1024, 4096],
        );
    }
}

#[test]
fn churn_custom_tower_deep() {
    // Tower [4, 16, 64, 256] gives 5 levels with small spans — exercises
    // deep displacement cascades cheaply.
    for seed in 0..4 {
        let mut s = ReservationScheduler::with_tower(Tower::custom(vec![4, 16, 64, 256]));
        churn(
            &mut s,
            300 + seed,
            300,
            1 << 12,
            16,
            &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        );
    }
}

#[test]
fn churn_bounded_reallocations() {
    // Theorem-1 shape check: per-request move count stays tiny even over
    // long executions at γ = 8.
    let mut s = ReservationScheduler::new();
    let peak = churn(&mut s, 42, 1500, 1 << 12, 8, &[1, 4, 16, 64, 256, 1024]);
    // log* of 2^12 is 3 levels; a generous constant bound:
    assert!(peak <= 24, "peak per-request moves {peak} too large");
}

#[test]
fn trimmed_churn_with_rebuilds() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut s = TrimmedScheduler::new(8);
    let mut active: HashMap<JobId, Window> = HashMap::new();
    let mut next_id = 0u64;
    for step in 0..600 {
        if active.is_empty() || rng.gen_bool(0.55) {
            let span = [1u64, 4, 16, 64, 256][rng.gen_range(0..5usize)];
            let start = rng.gen_range(0..((1u64 << 12) / span)) * span;
            let w = Window::with_span(start, span);
            let mut windows: Vec<Window> = active.values().copied().collect();
            windows.push(w);
            if aligned_density_max_gamma(&windows, 1) < 8 {
                continue;
            }
            let id = JobId(next_id);
            next_id += 1;
            s.insert(id, w)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
            active.insert(id, w);
        } else {
            let idx = rng.gen_range(0..active.len());
            let id = *active.keys().nth(idx).unwrap();
            s.delete(id).unwrap();
            active.remove(&id);
        }
        s.inner().check_invariants().unwrap();
        for (id, slot) in s.assignments() {
            assert!(active[&id].contains_slot(slot));
        }
    }
    assert!(s.rebuilds() > 0, "churn this size must trigger rebuilds");
}
