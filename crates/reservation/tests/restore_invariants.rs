//! Snapshot/restore properties for the reservation scheduler family:
//! restored state passes the exhaustive invariant check (including exact
//! `phys_occ`/`lower_occ` occupancy indices), reproduces identical
//! behavior on a churn suffix, and rejected requests — even mid-cascade
//! ones on over-packed instances — never corrupt state.

use proptest::prelude::*;
use realloc_core::{JobId, Restorable, SingleMachineReallocator, Window};
use realloc_reservation::{DeamortizedScheduler, ReservationScheduler, TrimmedScheduler};
use realloc_workloads::{ChurnConfig, ChurnGenerator};

/// Aligned churn stream with spans ≥ 4 (deamortized needs ≥ 2).
fn churn(seed: u64, len: usize) -> realloc_core::RequestSeq {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![4, 16, 64, 256],
            target_active: 80,
            insert_bias: 0.6,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len)
}

fn drive(s: &mut impl SingleMachineReallocator, seq: &realloc_core::RequestSeq) {
    for &r in seq.requests() {
        match r {
            realloc_core::Request::Insert { id, window } => {
                let _ = s.insert(id, window);
            }
            realloc_core::Request::Delete { id } => {
                let _ = s.delete(id);
            }
        }
    }
}

/// Same-request equivalence: every subsequent request must produce the
/// same moves and the same errors on both schedulers.
fn suffix_equivalent<T: SingleMachineReallocator>(
    a: &mut T,
    b: &mut T,
    seq: &realloc_core::RequestSeq,
) {
    for &r in seq.requests() {
        match r {
            realloc_core::Request::Insert { id, window } => {
                assert_eq!(a.insert(id, window), b.insert(id, window), "insert {id}");
            }
            realloc_core::Request::Delete { id } => {
                assert_eq!(a.delete(id), b.delete(id), "delete {id}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn restored_reservation_passes_invariants(seed in 0u64..500) {
        let mut s = ReservationScheduler::new();
        drive(&mut s, &churn(seed, 300));
        s.check_invariants().unwrap();

        let restored = ReservationScheduler::restore(&s.snapshot_text()).unwrap();
        restored.check_invariants().expect("restored invariants (incl. phys_occ)");
        prop_assert_eq!(restored.fulfillment_profile(), s.fulfillment_profile());

        let mut restored = restored;
        suffix_equivalent(&mut s, &mut restored, &churn(seed.wrapping_add(1), 120));
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_trimmed_passes_invariants(seed in 0u64..500) {
        let mut s = TrimmedScheduler::new(8);
        drive(&mut s, &churn(seed, 300));
        s.inner().check_invariants().unwrap();

        let mut restored = TrimmedScheduler::restore(&s.snapshot_text()).unwrap();
        restored.inner().check_invariants().unwrap();
        prop_assert_eq!(restored.n_star(), s.n_star());
        suffix_equivalent(&mut s, &mut restored, &churn(seed.wrapping_add(2), 120));
        restored.inner().check_invariants().unwrap();
    }

    #[test]
    fn restored_deamortized_passes_invariants(seed in 0u64..500) {
        let mut s = DeamortizedScheduler::new(8);
        drive(&mut s, &churn(seed, 300));

        let mut restored = DeamortizedScheduler::restore(&s.snapshot_text()).unwrap();
        restored.generations().0.check_invariants().unwrap();
        restored.generations().1.check_invariants().unwrap();
        prop_assert_eq!(restored.flips(), s.flips());
        prop_assert_eq!(restored.draining_len(), s.draining_len());
        suffix_equivalent(&mut s, &mut restored, &churn(seed.wrapping_add(3), 120));
    }

    /// Over-packed adversarial streams force mid-cascade rejections; a
    /// rejected request must leave the scheduler consistent (this is the
    /// regression net for the orphaned-displacement bug the snapshot
    /// work surfaced).
    #[test]
    fn rejections_never_corrupt_state(seed in 0u64..500) {
        let mut s = ReservationScheduler::new();
        let mut rejected = 0u32;
        for i in 0..220u64 {
            let k = seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            // Dense nests over a tiny horizon: saturates quickly.
            let span = [1u64, 2, 4, 8, 32, 64][(k % 6) as usize];
            let start = ((k >> 8) % 4) * span;
            if s.insert(JobId(i), Window::with_span(start, span)).is_err() {
                rejected += 1;
                s.check_invariants().expect("state intact after rejection");
            }
            if i % 7 == 6 {
                let _ = s.delete(JobId(i - 3));
            }
        }
        prop_assert!(rejected > 0, "stream must actually over-pack");
        s.check_invariants().unwrap();
        // And the scheduler still snapshots/restores cleanly afterwards.
        let restored = ReservationScheduler::restore(&s.snapshot_text()).unwrap();
        restored.check_invariants().unwrap();
    }
}

/// Deterministic regression: a base-cascade insert that fails *after* a
/// partial cascade must roll back exactly (this corrupted `jobs` vs.
/// `slot_jobs` before the fix).
#[test]
fn failed_base_cascade_rolls_back_exactly() {
    let mut s = ReservationScheduler::new();
    // Fill [0,4): two span-4 jobs cascade right when two span-2 jobs
    // claim [0,2).
    s.insert(JobId(1), Window::new(0, 4)).unwrap();
    s.insert(JobId(2), Window::new(0, 4)).unwrap();
    s.insert(JobId(3), Window::new(0, 2)).unwrap();
    s.insert(JobId(4), Window::new(0, 2)).unwrap();
    s.check_invariants().unwrap();
    let before: std::collections::BTreeMap<_, _> = s.assignments().into_iter().collect();

    // A span-1 job aimed at [0,1): displaces a span-2 job, whose
    // reinsertion into the full [0,2) finds no longer-span victim —
    // a partial cascade that must be rolled back.
    let err = s.insert(JobId(9), Window::new(0, 1));
    assert!(err.is_err(), "the window is genuinely full");
    s.check_invariants()
        .expect("rejected mid-cascade insert must not corrupt state");
    let after: std::collections::BTreeMap<_, _> = s.assignments().into_iter().collect();
    assert_eq!(before, after, "failed insert must not change the schedule");
    assert_eq!(s.active_count(), 4);
}
