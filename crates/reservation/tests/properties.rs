//! Property-based tests for the reservation scheduler: arbitrary
//! (density-bounded) operation sequences preserve every structural
//! invariant and produce feasible schedules; fulfillment is history
//! independent; the trimmed and deamortized wrappers agree with the raw
//! scheduler on feasibility.

use proptest::prelude::*;
use realloc_core::{JobId, SingleMachineReallocator, Tower, Window};
use realloc_reservation::{DeamortizedScheduler, ReservationScheduler, TrimmedScheduler};
use std::collections::HashMap;

/// An abstract op over a bounded universe of aligned windows.
#[derive(Clone, Debug)]
enum Op {
    Insert { span_idx: usize, pos: u64 },
    Delete { idx: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..5, 0u64..64).prop_map(|(span_idx, pos)| Op::Insert { span_idx, pos }),
        2 => (0usize..64).prop_map(|idx| Op::Delete { idx }),
    ]
}

const SPANS: [u64; 5] = [2, 8, 32, 128, 512];
const HORIZON: u64 = 1 << 12;

/// Applies ops with a density guard (γ = 8 over aligned ancestors),
/// checking invariants and feasibility after every applied op.
fn apply_checked(sched: &mut ReservationScheduler, ops: &[Op]) -> usize {
    let mut counts: HashMap<Window, u64> = HashMap::new();
    let mut active: Vec<(JobId, Window)> = Vec::new();
    let mut next = 0u64;
    let mut applied = 0usize;

    let ancestors = |mut w: Window| {
        let mut out = vec![w];
        while w.span() < HORIZON {
            w = w.aligned_parent().unwrap();
            out.push(w);
        }
        out
    };

    for op in ops {
        match *op {
            Op::Insert { span_idx, pos } => {
                let span = SPANS[span_idx];
                let start = (pos % (HORIZON / span)) * span;
                let w = Window::with_span(start, span);
                if ancestors(w)
                    .iter()
                    .any(|a| counts.get(a).copied().unwrap_or(0) >= a.span() / 8)
                {
                    continue;
                }
                for a in ancestors(w) {
                    *counts.entry(a).or_insert(0) += 1;
                }
                let id = JobId(next);
                next += 1;
                sched
                    .insert(id, w)
                    .expect("density-bounded insert succeeds");
                active.push((id, w));
            }
            Op::Delete { idx } => {
                if active.is_empty() {
                    continue;
                }
                let (id, w) = active.swap_remove(idx % active.len());
                for a in ancestors(w) {
                    *counts.get_mut(&a).unwrap() -= 1;
                }
                sched.delete(id).expect("delete of active job succeeds");
            }
        }
        applied += 1;
        sched.check_invariants().expect("invariants after every op");
        // Feasibility: in-window, collision-free.
        let mut seen = HashMap::new();
        for (id, slot) in sched.assignments() {
            let w = active
                .iter()
                .find(|&&(j, _)| j == id)
                .map(|&(_, w)| w)
                .unwrap();
            assert!(w.contains_slot(slot));
            assert!(seen.insert(slot, id).is_none(), "slot collision");
        }
    }
    applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_all_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut sched = ReservationScheduler::new();
        apply_checked(&mut sched, &ops);
    }

    #[test]
    fn random_ops_custom_tower(ops in prop::collection::vec(op_strategy(), 1..100)) {
        // A slower ladder exercises 4 populated levels with the same spans.
        let mut sched = ReservationScheduler::with_tower(Tower::custom(vec![4, 16, 256]));
        apply_checked(&mut sched, &ops);
    }

    #[test]
    fn fulfillment_history_independent(
        ops in prop::collection::vec(op_strategy(), 1..80),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        // Apply ops; recover the surviving (id, window) set by replaying
        // the same density-guarded simulation; rebuild it in two other
        // orders; all fulfillment profiles must match.
        let mut sched = ReservationScheduler::new();
        apply_checked(&mut sched, &ops);
        let mut shadow: Vec<(JobId, Window)> = Vec::new();
        {
            let mut counts: HashMap<Window, u64> = HashMap::new();
            let mut next = 0u64;
            let ancestors = |mut w: Window| {
                let mut out = vec![w];
                while w.span() < HORIZON {
                    w = w.aligned_parent().unwrap();
                    out.push(w);
                }
                out
            };
            for op in &ops {
                match *op {
                    Op::Insert { span_idx, pos } => {
                        let span = SPANS[span_idx];
                        let start = (pos % (HORIZON / span)) * span;
                        let w = Window::with_span(start, span);
                        if ancestors(w)
                            .iter()
                            .any(|a| counts.get(a).copied().unwrap_or(0) >= a.span() / 8)
                        {
                            continue;
                        }
                        for a in ancestors(w) {
                            *counts.entry(a).or_insert(0) += 1;
                        }
                        shadow.push((JobId(next), w));
                        next += 1;
                    }
                    Op::Delete { idx } => {
                        if shadow.is_empty() {
                            continue;
                        }
                        let (_, w) = shadow.swap_remove(idx % shadow.len());
                        for a in ancestors(w) {
                            *counts.get_mut(&a).unwrap() -= 1;
                        }
                    }
                }
            }
        }
        let profile0 = sched.fulfillment_profile();

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..2 {
            let mut order = shadow.clone();
            order.shuffle(&mut rng);
            let mut fresh = ReservationScheduler::new();
            for &(id, w) in &order {
                fresh.insert(id, w).unwrap();
            }
            prop_assert_eq!(&fresh.fulfillment_profile(), &profile0,
                "fulfillment differs for a different insertion order");
        }
    }

    #[test]
    fn trimmed_matches_raw_feasibility(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut trimmed = TrimmedScheduler::new(8);
        let mut counts: HashMap<Window, u64> = HashMap::new();
        let mut active: Vec<(JobId, Window)> = Vec::new();
        let mut next = 0u64;
        let ancestors = |mut w: Window| {
            let mut out = vec![w];
            while w.span() < HORIZON {
                w = w.aligned_parent().unwrap();
                out.push(w);
            }
            out
        };
        for op in &ops {
            match *op {
                Op::Insert { span_idx, pos } => {
                    let span = SPANS[span_idx];
                    let start = (pos % (HORIZON / span)) * span;
                    let w = Window::with_span(start, span);
                    if ancestors(w)
                        .iter()
                        .any(|a| counts.get(a).copied().unwrap_or(0) >= a.span() / 8)
                    {
                        continue;
                    }
                    for a in ancestors(w) {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                    let id = JobId(next);
                    next += 1;
                    trimmed.insert(id, w).unwrap();
                    active.push((id, w));
                }
                Op::Delete { idx } => {
                    if active.is_empty() {
                        continue;
                    }
                    let (id, w) = active.swap_remove(idx % active.len());
                    for a in ancestors(w) {
                        *counts.get_mut(&a).unwrap() -= 1;
                    }
                    trimmed.delete(id).unwrap();
                }
            }
            trimmed.inner().check_invariants().unwrap();
            for (id, slot) in trimmed.assignments() {
                let w = active.iter().find(|&&(j, _)| j == id).map(|&(_, w)| w).unwrap();
                prop_assert!(w.contains_slot(slot), "{} at {} outside {}", id, slot, w);
            }
        }
    }

    #[test]
    fn deamortized_feasible_and_bounded(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut sched = DeamortizedScheduler::new(4);
        let mut counts: HashMap<Window, u64> = HashMap::new();
        let mut active: Vec<(JobId, Window)> = Vec::new();
        let mut next = 0u64;
        let ancestors = |mut w: Window| {
            let mut out = vec![w];
            while w.span() < HORIZON {
                w = w.aligned_parent().unwrap();
                out.push(w);
            }
            out
        };
        for op in &ops {
            match *op {
                Op::Insert { span_idx, pos } => {
                    let span = SPANS[span_idx];
                    let start = (pos % (HORIZON / span)) * span;
                    let w = Window::with_span(start, span);
                    if ancestors(w)
                        .iter()
                        .any(|a| counts.get(a).copied().unwrap_or(0) >= a.span() / 8)
                    {
                        continue;
                    }
                    for a in ancestors(w) {
                        *counts.entry(a).or_insert(0) += 1;
                    }
                    let id = JobId(next);
                    next += 1;
                    let moves = sched.insert(id, w).unwrap();
                    prop_assert!(moves.len() <= 32, "unbounded request: {}", moves.len());
                    active.push((id, w));
                }
                Op::Delete { idx } => {
                    if active.is_empty() {
                        continue;
                    }
                    let (id, w) = active.swap_remove(idx % active.len());
                    for a in ancestors(w) {
                        *counts.get_mut(&a).unwrap() -= 1;
                    }
                    sched.delete(id).unwrap();
                }
            }
            for (id, slot) in sched.assignments() {
                let w = active.iter().find(|&&(j, _)| j == id).map(|&(_, w)| w).unwrap();
                prop_assert!(w.contains_slot(slot), "{} at {} outside {}", id, slot, w);
            }
        }
    }
}
