//! Exhaustive structural invariant checking, used by tests and
//! property-based harnesses after every operation.
//!
//! Checks (numbers refer to the paper):
//!
//! 1. job records ↔ physical occupancy are mutually consistent;
//! 2. every job sits inside its window (feasibility, §2);
//! 3. at levels ≥ 1: `x` equals the actual number of jobs per window, every
//!    job sits in a slot *assigned to its own window*, and `empty_assigned`
//!    mirrors `assigned`;
//! 4. interval `lower_occ` sets exactly reflect physical occupancy by
//!    lower-level jobs (allowance correctness);
//! 5. **never over-assigned** (Invariant 5 + Observation 7 with lazy
//!    rises): per interval, each window's assigned slots never exceed its
//!    fulfilled quota, and the total never exceeds the allowance;
//! 6. assignments never sit on lower-occupied slots, distinct windows never
//!    share an assigned slot, and a window's assignments lie inside it;
//! 7. high-water marks cover every window with state at the level.

use crate::scheduler::ReservationScheduler;
use realloc_core::Window;
use std::collections::{HashMap, HashSet};

/// A violated invariant, with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)*) => {
        if !$cond {
            return Err(InvariantViolation(format!($($arg)*)));
        }
    };
}

impl ReservationScheduler {
    /// Verifies every structural invariant; `Err` describes the first
    /// violation found. Intended for tests (cost is `O(state size)`).
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        // 1 + 2: job records vs physical occupancy and windows.
        ensure!(
            self.jobs.len() == self.slot_jobs.len(),
            "job count {} != occupied slot count {}",
            self.jobs.len(),
            self.slot_jobs.len()
        );
        for (&id, rec) in &self.jobs {
            ensure!(
                self.slot_jobs.get(&rec.slot) == Some(&id),
                "job {id} claims slot {} but slot holds {:?}",
                rec.slot,
                self.slot_jobs.get(&rec.slot)
            );
            ensure!(
                rec.window.contains_slot(rec.slot),
                "job {id} at slot {} outside window {}",
                rec.slot,
                rec.window
            );
            ensure!(
                rec.level == self.tower.level_of(rec.window.span()),
                "job {id} cached level {} != tower level {}",
                rec.level,
                self.tower.level_of(rec.window.span())
            );
        }

        // Jobs per window (levels ≥ 1).
        let mut per_window: HashMap<(usize, Window), Vec<(realloc_core::JobId, u64)>> =
            HashMap::new();
        for (&id, rec) in &self.jobs {
            if rec.level >= 1 {
                per_window
                    .entry((rec.level, rec.window))
                    .or_default()
                    .push((id, rec.slot));
            }
        }

        for (level, lvl) in self.levels.iter().enumerate().skip(1) {
            let ispan = self.tower.interval_span(level);

            // 3 + 7: window states.
            for (&w, ws) in &lvl.windows {
                ensure!(
                    w.span() <= lvl.high_water,
                    "level {level}: window {w} above high-water {}",
                    lvl.high_water
                );
                ensure!(
                    self.tower.level_of(w.span()) == level,
                    "level {level}: window {w} belongs to level {}",
                    self.tower.level_of(w.span())
                );
                let jobs_here = per_window
                    .get(&(level, w))
                    .map(|v| v.len() as u64)
                    .unwrap_or(0);
                ensure!(
                    ws.x == jobs_here,
                    "level {level} window {w}: x={} but {jobs_here} jobs present",
                    ws.x
                );
                for (&s, &occ) in &ws.assigned {
                    ensure!(
                        w.contains_slot(s),
                        "level {level} window {w}: assigned slot {s} outside window"
                    );
                    match occ {
                        Some(j) => {
                            ensure!(
                                self.jobs.get(&j).map(|r| (r.window, r.slot)) == Some((w, s)),
                                "level {level} window {w}: assigned slot {s} claims job {j} \
                                 but the job record disagrees"
                            );
                            ensure!(
                                !ws.empty_assigned.contains(&s),
                                "level {level} window {w}: occupied slot {s} in empty_assigned"
                            );
                        }
                        None => {
                            ensure!(
                                ws.empty_assigned.contains(&s),
                                "level {level} window {w}: empty slot {s} missing from empty_assigned"
                            );
                            ensure!(
                                self.slot_jobs.get(&s).map(|j| self.jobs[j].level > level)
                                    != Some(false),
                                "level {level} window {w}: empty-assigned slot {s} occupied by \
                                 a job of level ≤ {level}"
                            );
                        }
                    }
                }
                ensure!(
                    ws.empty_assigned
                        .iter()
                        .all(|s| ws.assigned.get(s) == Some(&None)),
                    "level {level} window {w}: empty_assigned contains stale slots"
                );
                // Every job of this window sits in one of its assigned slots.
                if let Some(jobs_list) = per_window.get(&(level, w)) {
                    for &(id, slot) in jobs_list {
                        ensure!(
                            ws.assigned.get(&slot) == Some(&Some(id)),
                            "level {level} window {w}: job {id} at slot {slot} not backed \
                             by a fulfilled reservation"
                        );
                    }
                }
            }
            // Every populated window has a state.
            for (&(l, w), _) in per_window.iter().filter(|((l, _), _)| *l == level) {
                let _ = l;
                ensure!(
                    lvl.windows.contains_key(&w),
                    "level {level}: window {w} has jobs but no state"
                );
            }

            // 4: lower_occ exactness, and occupancy-index (`phys_occ`)
            // exactness: every record's index holds precisely the
            // physically occupied slots of its interval, at every level.
            let mut expected_lower: HashMap<u64, HashSet<u64>> = HashMap::new();
            for rec in self.jobs.values() {
                if rec.level < level {
                    expected_lower
                        .entry(rec.slot - rec.slot % ispan)
                        .or_default()
                        .insert(rec.slot);
                }
            }
            let mut expected_phys: HashMap<u64, HashSet<u64>> = HashMap::new();
            for &slot in self.slot_jobs.keys() {
                expected_phys
                    .entry(slot - slot % ispan)
                    .or_default()
                    .insert(slot);
            }
            for (&istart, ist) in &lvl.intervals {
                let expected = expected_lower.remove(&istart).unwrap_or_default();
                let actual: HashSet<u64> = ist.lower_occ.iter().copied().collect();
                ensure!(
                    actual == expected,
                    "level {level} interval {istart}: lower_occ {actual:?} != occupancy {expected:?}"
                );
                let expected = expected_phys.remove(&istart).unwrap_or_default();
                let actual: HashSet<u64> = ist.phys_occ.iter().copied().collect();
                ensure!(
                    actual == expected,
                    "level {level} interval {istart}: phys_occ {actual:?} != occupancy {expected:?}"
                );
                ensure!(
                    !ist.is_empty(),
                    "level {level} interval {istart}: empty record not pruned"
                );
            }
            ensure!(
                expected_lower.is_empty(),
                "level {level}: intervals {:?} with lower occupancy have no record",
                expected_lower.keys().collect::<Vec<_>>()
            );
            ensure!(
                expected_phys.is_empty(),
                "level {level}: occupied intervals {:?} missing from the occupancy index",
                expected_phys.keys().collect::<Vec<_>>()
            );

            // 5 + 6: per-interval quota bounds.
            let mut interval_starts: HashSet<u64> = HashSet::new();
            for ws in lvl.windows.values() {
                for &s in ws.assigned.keys() {
                    interval_starts.insert(s - s % ispan);
                }
            }
            interval_starts.extend(lvl.intervals.keys().copied());
            for &istart in &interval_starts {
                let iw = Window::with_span(istart, ispan);
                let allowance = ispan
                    - lvl
                        .intervals
                        .get(&istart)
                        .map(|i| i.lower_occ.len() as u64)
                        .unwrap_or(0);
                let quotas = self.quotas_at(level, istart);
                let mut assigned_slots: HashSet<u64> = HashSet::new();
                let mut total_assigned = 0u64;
                for (w, quota) in quotas {
                    let Some(ws) = lvl.windows.get(&w) else {
                        continue;
                    };
                    let have: Vec<u64> = ws.assigned_in(iw).map(|(s, _)| s).collect();
                    ensure!(
                        have.len() as u64 <= quota,
                        "level {level} interval {istart} window {w}: assigned {} > quota {quota}",
                        have.len()
                    );
                    total_assigned += have.len() as u64;
                    for s in have {
                        ensure!(
                            assigned_slots.insert(s),
                            "level {level} interval {istart}: slot {s} assigned to two windows"
                        );
                        if let Some(ist) = lvl.intervals.get(&istart) {
                            ensure!(
                                !ist.lower_occ.contains(&s),
                                "level {level} interval {istart}: assigned slot {s} is lower-occupied"
                            );
                        }
                    }
                }
                ensure!(
                    total_assigned <= allowance,
                    "level {level} interval {istart}: {total_assigned} assignments exceed \
                     allowance {allowance}"
                );
            }
        }
        Ok(())
    }

    /// Observation 7 probe: the full fulfillment profile — for every
    /// interval of every populated window, the `(level, interval start,
    /// window, fulfilled quota)` tuples, sorted. Two schedulers holding the
    /// same active job multiset must produce identical profiles regardless
    /// of the request order that built them (history independence).
    pub fn fulfillment_profile(&self) -> Vec<(usize, u64, Window, u64)> {
        let mut out = Vec::new();
        for (level, lvl) in self.levels.iter().enumerate().skip(1) {
            let ispan = self.tower.interval_span(level);
            let mut starts: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for (&w, ws) in &lvl.windows {
                if ws.x > 0 {
                    let ni = w.span() / ispan;
                    for pos in 0..ni {
                        starts.insert(w.start() + pos * ispan);
                    }
                }
            }
            for istart in starts {
                for (w, q) in self.quotas_at(level, istart) {
                    let populated = lvl.windows.get(&w).map(|ws| ws.x > 0).unwrap_or(false);
                    if populated {
                        out.push((level, istart, w, q));
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Lemma 8 headroom probe: for every window with `x ≥ 1` jobs, the sum
    /// of fulfilled quotas over its intervals, minus `x`, is the number of
    /// spare fulfilled reservations. Returns the minimum spare across all
    /// populated windows (`None` when no leveled window has jobs). Under
    /// 8-underallocation the paper guarantees this is ≥ 1.
    pub fn min_lemma8_headroom(&self) -> Option<i64> {
        let mut min_spare: Option<i64> = None;
        for (level, lvl) in self.levels.iter().enumerate().skip(1) {
            let ispan = self.tower.interval_span(level);
            for (&w, ws) in &lvl.windows {
                if ws.x == 0 {
                    continue;
                }
                let mut total_quota = 0u64;
                let ni = w.span() / ispan;
                for pos in 0..ni {
                    let istart = w.start() + pos * ispan;
                    for (w2, q) in self.quotas_at(level, istart) {
                        if w2 == w {
                            total_quota += q;
                        }
                    }
                }
                let spare = total_quota as i64 - ws.x as i64;
                min_spare = Some(min_spare.map_or(spare, |m| m.min(spare)));
            }
        }
        min_spare
    }
}
