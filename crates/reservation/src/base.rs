//! Level 0: the constant-depth pecking-order cascade for spans `≤ L₁`.
//!
//! The paper's recursion bottoms out here: windows of span at most
//! `L₁ = 32` have at most `lg L₁ + 1 = 6` distinct spans, so the naive
//! cascade of Lemma 4 — displace any strictly-longer-span job and reinsert
//! it — costs `O(lg L₁) = O(1)` reallocations, matching the constant
//! per-level budget of the `O(log* Δ)` analysis.
//!
//! Two properties keep the bookkeeping cheap:
//!
//! * an intermediate cascade step replaces one level-0 job by another in the
//!   same slot, so ancestor allowances are untouched;
//! * only the final step claims a new slot (empty, or under a higher-level
//!   job, which is then displaced into its own level's PLACE) — exactly one
//!   allowance flip per cascade.

use crate::scheduler::{ReservationScheduler, Task};
use crate::state::JobRec;
use realloc_core::{Error, JobId, SlotMove, Window};
use std::collections::VecDeque;

impl ReservationScheduler {
    /// Inserts a level-0 job via the pecking-order cascade.
    pub(crate) fn insert_base(
        &mut self,
        job: JobId,
        window: Window,
        moves: &mut Vec<SlotMove>,
        work: &mut VecDeque<Task>,
    ) -> Result<(), Error> {
        let mut cur_job = job;
        let mut cur_window = window;
        let mut from = None;
        loop {
            // Scan the (≤ L₁) slots of the window: an empty slot is best, a
            // slot under a higher-level job next (pecking order lets us
            // displace it); otherwise pick the level-0 occupant with the
            // smallest strictly-larger span as cascade victim.
            let mut empty = None;
            let mut higher = None;
            let mut victim: Option<(JobId, JobRec)> = None;
            for s in cur_window.slots() {
                match self.slot_jobs.get(&s) {
                    None => {
                        empty = Some(s);
                        break;
                    }
                    Some(&occ) => {
                        let rec = self.jobs[&occ];
                        if rec.level >= 1 {
                            higher.get_or_insert(s);
                        } else if rec.window.span() > cur_window.span()
                            && victim.is_none_or(|(_, v)| rec.window.span() < v.window.span())
                        {
                            victim = Some((occ, rec));
                        }
                    }
                }
            }
            if let Some(slot) = empty.or(higher) {
                // Final step: claim the slot (displacing a higher-level job
                // if present) and stop cascading.
                self.occupy_slot(cur_job, cur_window, 0, slot, from, moves, work);
                return Ok(());
            }
            let Some((victim_id, victim_rec)) = victim else {
                // Roll the partial cascade back so a rejected insert
                // leaves the scheduler exactly as it found it (the
                // engine keeps serving after a rejection, so a failed
                // request must not corrupt state). The chain structure
                // makes this exact: every slot a mover took is the next
                // victim's original slot, so restoring each mover to its
                // `from` in reverse order — and finally the in-flight
                // job to the slot it was displaced from — rewrites every
                // touched slot once. Intermediate swaps never touched
                // ancestor allowances, so nothing else needs undoing.
                for mv in moves.iter().rev() {
                    match mv.from {
                        Some(f) => {
                            self.slot_jobs.insert(f, mv.job);
                            self.jobs.get_mut(&mv.job).expect("cascade job").slot = f;
                        }
                        None => {
                            self.jobs.remove(&mv.job);
                        }
                    }
                }
                if let Some(f) = from {
                    debug_assert_eq!(self.jobs.get(&cur_job).map(|r| r.slot), Some(f));
                    self.slot_jobs.insert(f, cur_job);
                }
                moves.clear();
                return Err(Error::CapacityExhausted {
                    job: cur_job,
                    detail: format!(
                        "base cascade: window {cur_window} is full of level-0 jobs with \
                         no longer-span occupant to displace"
                    ),
                });
            };
            // Swap: the cascading job takes the victim's slot. Both jobs are
            // level 0, so no ancestor allowance changes.
            let slot = victim_rec.slot;
            self.slot_jobs.insert(slot, cur_job);
            self.jobs.insert(
                cur_job,
                JobRec {
                    window: cur_window,
                    level: 0,
                    slot,
                },
            );
            moves.push(SlotMove {
                job: cur_job,
                from,
                to: Some(slot),
            });
            cur_job = victim_id;
            cur_window = victim_rec.window;
            from = Some(slot);
        }
    }

    /// Deletes a level-0 job: free the slot and let ancestor allowances grow
    /// (the freed capacity is claimed lazily by later hunts).
    pub(crate) fn delete_base(&mut self, job: JobId, rec: JobRec, moves: &mut Vec<SlotMove>) {
        debug_assert_eq!(rec.level, 0);
        self.vacate_physical(job, 0, rec.slot, moves);
        self.jobs.remove(&job);
    }
}
