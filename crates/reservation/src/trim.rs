//! Window trimming to `O(γ·n*)` (paper §4, "Trimming Windows to n and
//! Deamortization").
//!
//! The raw reservation scheduler's cost is `O(log* Δ)`. To also get the
//! `O(log* n)` half of Theorem 1's `O(min{log* n, log* Δ})`, the paper
//! maintains an estimate `n*` of the active job count (doubling when
//! exceeded, halving when the count drops below `n*/4`) and trims every
//! window to span at most `2γn*`: at most `n*` other jobs live inside the
//! trimmed window, so the instance stays `γ`-underallocated and the number
//! of populated levels is `O(log* n)`.
//!
//! [`TrimmedScheduler`] implements the *amortized* variant: when `n*`
//! changes, the schedule is rebuilt from scratch (cost `O(n)`, amortized
//! `O(1)` per request since `Ω(n)` requests separate two rebuilds). The
//! deamortized even/odd-slot variant is [`crate::deamortized`].

use crate::scheduler::ReservationScheduler;
use fxhash::FxHashMap;
use realloc_core::{Error, JobId, SingleMachineReallocator, Slot, SlotMove, Tower, Window};

/// Smallest `n*` we bother tracking; below this trimming is a no-op in
/// practice and rebuild churn would dominate.
pub(crate) const MIN_N_STAR: u64 = 8;

/// A [`ReservationScheduler`] wrapped with the paper's `n*` trimming rule
/// and amortized rebuilds.
///
/// Fields are `pub(crate)` so [`crate::snapshot`] can serialize and
/// rebuild the full trim bookkeeping (`n*`, originals, rebuild counter).
#[derive(Clone, Debug)]
pub struct TrimmedScheduler {
    pub(crate) inner: ReservationScheduler,
    pub(crate) tower: Tower,
    /// The γ used in the trim bound `2γn*`.
    pub(crate) gamma: u64,
    pub(crate) n_star: u64,
    /// Original aligned windows, pre-trim (rebuilds re-trim from these).
    pub(crate) originals: FxHashMap<JobId, Window>,
    /// Number of full rebuilds performed (observability for experiments).
    pub(crate) rebuilds: u64,
}

impl TrimmedScheduler {
    /// New trimmed scheduler with the paper tower and trim factor `gamma`.
    pub fn new(gamma: u64) -> Self {
        Self::with_tower(Tower::paper(), gamma)
    }

    /// New trimmed scheduler with a custom tower.
    pub fn with_tower(tower: Tower, gamma: u64) -> Self {
        assert!(gamma >= 1);
        TrimmedScheduler {
            inner: ReservationScheduler::with_tower(tower.clone()),
            tower,
            gamma,
            n_star: MIN_N_STAR,
            originals: FxHashMap::default(),
            rebuilds: 0,
        }
    }

    /// Current trim bound: windows are trimmed to span ≤ `2γn*`, rounded up
    /// to a power of two (trimming needs a power-of-two target).
    pub fn trim_span(&self) -> u64 {
        (2 * self.gamma * self.n_star).next_power_of_two()
    }

    /// Current `n*` estimate.
    pub fn n_star(&self) -> u64 {
        self.n_star
    }

    /// The trim factor γ this scheduler was built with.
    pub fn gamma(&self) -> u64 {
        self.gamma
    }

    /// Number of full rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The wrapped scheduler (for invariant checks in tests).
    pub fn inner(&self) -> &ReservationScheduler {
        &self.inner
    }

    fn trim(&self, w: Window) -> Window {
        w.trim_to(self.trim_span())
    }

    /// Rebuilds the schedule from scratch after an `n*` change, reporting
    /// every job whose slot changed.
    fn rebuild(&mut self, moves: &mut Vec<SlotMove>) -> Result<(), Error> {
        self.rebuilds += 1;
        let old: FxHashMap<JobId, Slot> = self.inner.assignments().into_iter().collect();
        let mut fresh = ReservationScheduler::with_tower(self.tower.clone());
        // Insert in span order: shorter windows first never displace
        // anything, so the rebuild itself is cascade-free.
        let mut jobs: Vec<(JobId, Window)> = self
            .originals
            .iter()
            .map(|(&id, &w)| (id, self.trim(w)))
            .collect();
        jobs.sort_by_key(|&(id, w)| (w.span(), id));
        for &(id, w) in &jobs {
            fresh.insert(id, w)?;
        }
        for (id, w) in jobs {
            let _ = w;
            let new_slot = fresh.slot_of(id).expect("just inserted");
            match old.get(&id) {
                Some(&s) if s == new_slot => {}
                Some(&s) => moves.push(SlotMove {
                    job: id,
                    from: Some(s),
                    to: Some(new_slot),
                }),
                None => moves.push(SlotMove {
                    job: id,
                    from: None,
                    to: Some(new_slot),
                }),
            }
        }
        self.inner = fresh;
        Ok(())
    }

    fn maybe_resize(&mut self, moves: &mut Vec<SlotMove>) -> Result<(), Error> {
        let n = self.originals.len() as u64;
        let mut changed = false;
        while n > self.n_star {
            self.n_star *= 2;
            changed = true;
        }
        while self.n_star > MIN_N_STAR && n < self.n_star / 4 {
            self.n_star /= 2;
            changed = true;
        }
        if changed {
            self.rebuild(moves)?;
        }
        Ok(())
    }
}

impl SingleMachineReallocator for TrimmedScheduler {
    fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error> {
        if self.originals.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        if !window.is_aligned() {
            return Err(Error::UnalignedWindow(window));
        }
        self.originals.insert(id, window);
        let mut moves = Vec::new();
        // Resize first so the insert itself sees the right trim bound.
        if let Err(e) = self.maybe_resize(&mut moves) {
            self.originals.remove(&id);
            return Err(e);
        }
        if self.inner.slot_of(id).is_some() {
            // The rebuild inserted the new job already.
            return Ok(moves);
        }
        match self.inner.insert(id, self.trim(window)) {
            Ok(more) => {
                moves.extend(more);
                Ok(moves)
            }
            Err(e) => {
                self.originals.remove(&id);
                Err(e)
            }
        }
    }

    fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error> {
        if !self.originals.contains_key(&id) {
            return Err(Error::UnknownJob(id));
        }
        let mut moves = self.inner.delete(id)?;
        self.originals.remove(&id);
        self.maybe_resize(&mut moves)?;
        Ok(moves)
    }

    fn slot_of(&self, id: JobId) -> Option<Slot> {
        self.inner.slot_of(id)
    }

    fn assignments(&self) -> Vec<(JobId, Slot)> {
        self.inner.assignments()
    }

    fn active_count(&self) -> usize {
        self.originals.len()
    }

    fn name(&self) -> &'static str {
        "reservation+trim"
    }
}
