//! # realloc-reservation
//!
//! The reservation-based pecking-order scheduler of **"Reallocation
//! Problems in Scheduling"** (Bender, Farach-Colton, Fekete, Fineman,
//! Gilbert; SPAA 2013), §4 and Figure 1 — the paper's core contribution.
//!
//! Given a `γ`-underallocated on-line stream of unit jobs with *aligned*
//! windows on a single machine, [`ReservationScheduler`] maintains a
//! feasible schedule while rescheduling only `O(log* Δ)` jobs per
//! insert/delete ([`TrimmedScheduler`] adds the `n*` trimming rule for the
//! full `O(min{log* n, log* Δ})` of Lemma 9).
//!
//! The design walks the paper's structure:
//!
//! * [`quota`] — Invariant 5 reservation counts and the Observation 7
//!   history-independent fulfillment rule, as pure functions;
//! * [`state`] — the mutable residue: which slot backs each fulfilled
//!   reservation, per-interval lower-level occupancy (the complement of
//!   `allowance(I)`), and physical placement;
//! * [`scheduler`] — insert/delete built from RESERVE (quota rises),
//!   MOVE (quota drops; ancestor slot-swap trick), and PLACE (with the
//!   cross-level displacement cascade);
//! * [`base`] — the constant-cost level-0 cascade for spans `≤ L₁`;
//! * [`trim`] — amortized `n*` trimming (Lemma 9);
//! * [`invariants`] — exhaustive structural checking for tests;
//! * [`snapshot`] — full-state snapshot/restore
//!   ([`realloc_core::Restorable`]) for checkpointing and migration.
//!
//! # Example
//!
//! ```
//! use realloc_core::{JobId, SingleMachineReallocator, Window};
//! use realloc_reservation::ReservationScheduler;
//!
//! let mut sched = ReservationScheduler::new();
//! sched.insert(JobId(1), Window::new(0, 64)).unwrap();
//! sched.insert(JobId(2), Window::new(0, 8)).unwrap();
//! let slot1 = sched.slot_of(JobId(1)).unwrap();
//! let slot2 = sched.slot_of(JobId(2)).unwrap();
//! assert!(slot1 < 64 && slot2 < 8 && slot1 != slot2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod deamortized;
pub mod invariants;
pub mod quota;
pub mod scheduler;
pub mod snapshot;
pub mod state;
pub mod trim;

pub use deamortized::DeamortizedScheduler;
pub use invariants::InvariantViolation;
pub use scheduler::{ReservationScheduler, MAX_TIME};
pub use trim::TrimmedScheduler;

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::{JobId, SingleMachineReallocator, Tower, Window};

    fn checked(s: &mut ReservationScheduler) {
        s.check_invariants().expect("invariants hold");
    }

    #[test]
    fn insert_base_level_jobs() {
        let mut s = ReservationScheduler::new();
        for i in 0..8u64 {
            s.insert(JobId(i), Window::new(0, 8)).unwrap();
            checked(&mut s);
        }
        // Window full: next insert must fail.
        let e = s.insert(JobId(9), Window::new(0, 8));
        assert!(matches!(
            e,
            Err(realloc_core::Error::CapacityExhausted { .. })
        ));
        checked(&mut s);
        // But deleting frees a slot.
        s.delete(JobId(0)).unwrap();
        checked(&mut s);
        s.insert(JobId(9), Window::new(0, 8)).unwrap();
        checked(&mut s);
    }

    #[test]
    fn base_cascade_displaces_longer_spans() {
        let mut s = ReservationScheduler::new();
        // Fill [0, 2) with span-2 jobs, then insert span-1 jobs that force
        // the span-2 jobs to cascade.
        s.insert(JobId(1), Window::new(0, 4)).unwrap();
        s.insert(JobId(2), Window::new(0, 4)).unwrap();
        s.insert(JobId(3), Window::new(0, 2)).unwrap();
        s.insert(JobId(4), Window::new(2, 4)).unwrap();
        checked(&mut s);
        let slots: std::collections::HashSet<u64> =
            s.assignments().into_iter().map(|(_, sl)| sl).collect();
        assert_eq!(slots.len(), 4);
        assert!(slots.iter().all(|&sl| sl < 4));
    }

    #[test]
    fn leveled_insert_and_delete() {
        let mut s = ReservationScheduler::new();
        // Span 64 -> level 1 under the paper tower.
        for i in 0..8u64 {
            s.insert(JobId(i), Window::new(0, 64)).unwrap();
            checked(&mut s);
        }
        assert_eq!(s.active_count(), 8);
        for i in 0..8u64 {
            s.delete(JobId(i)).unwrap();
            checked(&mut s);
        }
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.occupied_slots(), 0);
    }

    #[test]
    fn cross_level_displacement() {
        let mut s = ReservationScheduler::new();
        // A level-1 job, then enough level-0 jobs to force it to move.
        s.insert(JobId(100), Window::new(0, 64)).unwrap();
        checked(&mut s);
        for i in 0..16u64 {
            s.insert(JobId(i), Window::new(0, 32)).unwrap();
            checked(&mut s);
        }
        // The level-1 job must still be scheduled somewhere in [0, 64).
        let slot = s.slot_of(JobId(100)).unwrap();
        assert!(slot < 64);
        assert_eq!(s.active_count(), 17);
    }

    #[test]
    fn three_level_stack() {
        let mut s = ReservationScheduler::new();
        // Levels 0 (span 8), 1 (span 64), 2 (span 512).
        s.insert(JobId(1), Window::new(0, 512)).unwrap();
        checked(&mut s);
        s.insert(JobId(2), Window::new(0, 64)).unwrap();
        checked(&mut s);
        s.insert(JobId(3), Window::new(0, 8)).unwrap();
        checked(&mut s);
        for id in [1u64, 2, 3] {
            assert!(s.slot_of(JobId(id)).is_some());
        }
        s.delete(JobId(2)).unwrap();
        checked(&mut s);
        s.delete(JobId(1)).unwrap();
        checked(&mut s);
        s.delete(JobId(3)).unwrap();
        checked(&mut s);
        assert_eq!(s.occupied_slots(), 0);
    }

    #[test]
    fn duplicate_and_unknown_rejected() {
        let mut s = ReservationScheduler::new();
        s.insert(JobId(1), Window::new(0, 8)).unwrap();
        assert!(matches!(
            s.insert(JobId(1), Window::new(0, 8)),
            Err(realloc_core::Error::DuplicateJob(_))
        ));
        assert!(matches!(
            s.delete(JobId(2)),
            Err(realloc_core::Error::UnknownJob(_))
        ));
    }

    #[test]
    fn unaligned_rejected() {
        let mut s = ReservationScheduler::new();
        assert!(matches!(
            s.insert(JobId(1), Window::new(1, 4)),
            Err(realloc_core::Error::UnalignedWindow(_))
        ));
    }

    #[test]
    fn moves_are_reported_faithfully() {
        let mut s = ReservationScheduler::new();
        let m = s.insert(JobId(1), Window::new(0, 64)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].job, JobId(1));
        assert_eq!(m[0].from, None);
        let slot = m[0].to.unwrap();
        assert_eq!(s.slot_of(JobId(1)), Some(slot));
        let d = s.delete(JobId(1)).unwrap();
        assert!(d.iter().any(|mv| mv.job == JobId(1) && mv.to.is_none()));
    }

    #[test]
    fn custom_tower_many_levels() {
        let tower = Tower::custom(vec![4, 16, 64, 256]);
        let mut s = ReservationScheduler::with_tower(tower);
        // One job per level: spans 4, 8, 32, 128, 512.
        for (i, span) in [4u64, 8, 32, 128, 512].iter().enumerate() {
            s.insert(JobId(i as u64), Window::with_span(0, *span))
                .unwrap();
            checked(&mut s);
        }
        assert_eq!(s.active_count(), 5);
        for i in 0..5u64 {
            s.delete(JobId(i)).unwrap();
            checked(&mut s);
        }
    }

    #[test]
    fn compact_reclaims_window_states() {
        let mut s = ReservationScheduler::new();
        for i in 0..32u64 {
            s.insert(JobId(i), Window::with_span((i % 16) * 256, 256))
                .unwrap();
        }
        for i in 0..32u64 {
            s.delete(JobId(i)).unwrap();
        }
        // Standing reservations keep the states alive after the jobs left…
        assert!(s.window_states() > 0);
        s.compact();
        assert_eq!(s.window_states(), 0);
        checked(&mut s);
        // …and the scheduler still works after compaction.
        for i in 100..120u64 {
            s.insert(JobId(i), Window::with_span((i % 4) * 512, 512))
                .unwrap();
            checked(&mut s);
        }
    }

    #[test]
    fn trimmed_scheduler_round_trip() {
        let mut s = TrimmedScheduler::new(4);
        for i in 0..64u64 {
            s.insert(JobId(i), Window::with_span((i % 8) * 512, 512))
                .unwrap();
            s.inner().check_invariants().unwrap();
        }
        assert_eq!(s.active_count(), 64);
        assert!(s.n_star() >= 64);
        for i in 0..64u64 {
            s.delete(JobId(i)).unwrap();
            s.inner().check_invariants().unwrap();
        }
        assert_eq!(s.active_count(), 0);
        assert!(s.rebuilds() > 0);
    }
}
