//! Pure reservation/fulfillment mathematics (paper §4, Invariant 5 and
//! Observation 7).
//!
//! Invariant 5 fixes, for a level-ℓ window `W` with `x` jobs and `2^k`
//! enclosed intervals, exactly how many reservations `W` holds in each
//! interval: `2x + 2^k` in total, spread round-robin so that the interval at
//! position `i` holds
//!
//! ```text
//! c(i, x) = 1 + ⌊2x / 2^k⌋ + [ i < (2x mod 2^k) ]
//! ```
//!
//! (the `1` is the window's standing per-interval reservation, the rest are
//! the two-per-job reservations, biased toward the leftmost intervals).
//!
//! Observation 7 then says *which* reservations an interval fulfills is
//! history independent: the interval sorts reservations by window span
//! (shortest first) and fulfills the longest prefix that fits in its
//! *allowance* (slots not occupied by lower-level jobs). We exploit this
//! directly: fulfillment is a pure function ([`fulfilled_quotas`]) of the
//! per-window job counts and the allowance, and the scheduler's only mutable
//! state is which concrete slots back each fulfilled reservation.
//!
//! Deviation from the paper (documented in DESIGN.md): windows with zero
//! active jobs contribute no standing reservations here. Dropping them can
//! only *increase* the fulfilled counts of active windows (priority is by
//! span, so an absent short window frees capacity for longer ones), hence
//! every lower bound the analysis needs — in particular Lemma 8's
//! "`x` jobs ⇒ `≥ x+1` fulfilled" — still holds, and fulfillment remains a
//! pure function of the visible state.

/// Number of reservations window `W` holds in its interval at round-robin
/// position `pos` (Invariant 5), when `W` has `x` jobs and `num_intervals`
/// (`= 2^k`) enclosed intervals.
pub fn reservation_count(x: u64, num_intervals: u64, pos: u64) -> u64 {
    debug_assert!(num_intervals.is_power_of_two());
    debug_assert!(pos < num_intervals);
    let two_x = 2 * x;
    1 + two_x / num_intervals + u64::from(pos < two_x % num_intervals)
}

/// The two round-robin positions whose reservation count *increases* when
/// `x` grows to `x + 1` (the paper's "two new reservations … sent to the
/// leftmost intervals that have the least number of `W`'s reservations").
pub fn positions_gained(x_old: u64, num_intervals: u64) -> [u64; 2] {
    debug_assert!(num_intervals >= 2);
    let r = (2 * x_old) % num_intervals;
    // 2x is even and num_intervals is a power of two ≥ 2, so r ≤ n−2 and
    // both r and r+1 are valid positions.
    [r, r + 1]
}

/// The two positions whose count *decreases* when `x` shrinks to `x − 1`
/// (the paper's "removes one reservation each from the two rightmost
/// intervals that have the most reservations").
pub fn positions_lost(x_old: u64, num_intervals: u64) -> [u64; 2] {
    debug_assert!(x_old >= 1);
    debug_assert!(num_intervals >= 2);
    let r = (2 * x_old) % num_intervals;
    if r >= 2 {
        [r - 2, r - 1]
    } else {
        // r == 0: the previous round-robin lap ended exactly at the right
        // edge; the two rightmost intervals give up a reservation.
        [num_intervals - 2, num_intervals - 1]
    }
}

/// One window's reservation demand at a given interval, as input to
/// [`fulfilled_quotas`]. Windows must be supplied in increasing span order
/// (the chain of windows containing one interval is totally ordered by
/// span — aligned windows are laminar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Demand {
    /// The window's span (for the shortest-first priority; also a sanity
    /// check that the chain is sorted).
    pub span: u64,
    /// `c(pos, x)` — reservations this window holds in this interval.
    pub reservations: u64,
}

/// The interval's fulfillment rule (Observation 7): fulfill reservations
/// shortest-window-first until the allowance is exhausted. Returns the
/// fulfilled quota for each demand, in the same order.
pub fn fulfilled_quotas(demands: &[Demand], allowance: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(demands.len());
    fulfilled_quotas_into(demands, allowance, &mut out);
    out
}

/// Allocation-free variant of [`fulfilled_quotas`]: clears `out` and
/// writes the fulfilled quota of each demand into it, reusing the
/// buffer's capacity. This is the form the scheduler's rebalance hot path
/// uses (it recomputes quotas on every affected interval of every
/// request).
pub fn fulfilled_quotas_into(demands: &[Demand], allowance: u64, out: &mut Vec<u64>) {
    debug_assert!(
        demands.windows(2).all(|p| p[0].span < p[1].span),
        "demands must be strictly increasing in span"
    );
    out.clear();
    let mut remaining = allowance;
    out.extend(demands.iter().map(|d| {
        let f = d.reservations.min(remaining);
        remaining -= f;
        f
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_invariant_5_total() {
        // Invariant 5: total reservations = 2x + 2^k.
        for k in 1..6u32 {
            let n = 1u64 << k;
            for x in 0..40u64 {
                let total: u64 = (0..n).map(|p| reservation_count(x, n, p)).sum();
                assert_eq!(total, 2 * x + n, "x={x}, 2^k={n}");
            }
        }
    }

    #[test]
    fn counts_leftmost_heavy_two_values() {
        // Each interval holds ⌊2x/2^k⌋+1 or +2, leftmost heaviest.
        for x in 0..20u64 {
            let n = 8u64;
            let base = 2 * x / n + 1;
            let mut prev = u64::MAX;
            for p in 0..n {
                let c = reservation_count(x, n, p);
                assert!(c == base || c == base + 1);
                assert!(c <= prev, "counts must be non-increasing left to right");
                prev = c;
            }
        }
    }

    #[test]
    fn gained_positions_match_count_diff() {
        for n in [2u64, 4, 8, 16] {
            for x in 0..30u64 {
                let gained = positions_gained(x, n);
                for p in 0..n {
                    let diff = reservation_count(x + 1, n, p) - reservation_count(x, n, p);
                    let expected = u64::from(gained.contains(&p));
                    assert_eq!(diff, expected, "n={n} x={x} p={p}");
                }
            }
        }
    }

    #[test]
    fn lost_positions_match_count_diff() {
        for n in [2u64, 4, 8, 16] {
            for x in 1..30u64 {
                let lost = positions_lost(x, n);
                for p in 0..n {
                    let diff = reservation_count(x, n, p) - reservation_count(x - 1, n, p);
                    let expected = u64::from(lost.contains(&p));
                    assert_eq!(diff, expected, "n={n} x={x} p={p}");
                }
            }
        }
    }

    #[test]
    fn gain_then_lose_roundtrips() {
        for n in [2u64, 4, 8] {
            for x in 0..10u64 {
                let g = positions_gained(x, n);
                let l = positions_lost(x + 1, n);
                assert_eq!(g, l, "insert then delete must touch the same slots");
            }
        }
    }

    #[test]
    fn quota_priority_shortest_first() {
        let demands = [
            Demand {
                span: 4,
                reservations: 3,
            },
            Demand {
                span: 8,
                reservations: 2,
            },
            Demand {
                span: 16,
                reservations: 4,
            },
        ];
        assert_eq!(fulfilled_quotas(&demands, 9), vec![3, 2, 4]);
        assert_eq!(fulfilled_quotas(&demands, 6), vec![3, 2, 1]);
        assert_eq!(fulfilled_quotas(&demands, 4), vec![3, 1, 0]);
        assert_eq!(fulfilled_quotas(&demands, 0), vec![0, 0, 0]);
    }

    #[test]
    fn quota_total_bounded_by_allowance() {
        let demands = [
            Demand {
                span: 2,
                reservations: 5,
            },
            Demand {
                span: 4,
                reservations: 5,
            },
        ];
        for a in 0..12u64 {
            let q = fulfilled_quotas(&demands, a);
            assert!(q.iter().sum::<u64>() <= a);
            assert_eq!(q.iter().sum::<u64>(), a.min(10));
        }
    }
}
