//! Mutable state of the reservation scheduler.
//!
//! The split follows Observation 7: *which* reservations are fulfilled is a
//! pure function (see [`crate::quota`]), so the state only remembers
//!
//! * which concrete slot backs each fulfilled reservation
//!   ([`WindowState::assigned`]),
//! * which slots are occupied by lower-level jobs, per interval
//!   ([`IntervalState::lower_occ`] — the complement of the paper's
//!   `allowance(I)`), and
//! * where each job physically sits.

use fxhash::FxHashMap;
use realloc_core::{JobId, Slot, Window};
use std::collections::{BTreeMap, BTreeSet};

/// Bookkeeping for one active job.
#[derive(Clone, Copy, Debug)]
pub struct JobRec {
    /// The (aligned, possibly trimmed) window the scheduler works with.
    pub window: Window,
    /// Cached level of `window.span()` in the tower.
    pub level: usize,
    /// Current physical slot.
    pub slot: Slot,
}

/// Per-window state at levels `≥ 1`.
#[derive(Clone, Debug, Default)]
pub struct WindowState {
    /// Number of active jobs with exactly this window (the paper's `x`).
    pub x: u64,
    /// Slots backing this window's fulfilled reservations, with the level-ℓ
    /// job occupying each (if any). Every job of this window always sits in
    /// one of these slots.
    pub assigned: BTreeMap<Slot, Option<JobId>>,
    /// The subset of `assigned` currently holding no job of this level —
    /// the candidates Lemma 8 guarantees for PLACE and MOVE.
    pub empty_assigned: BTreeSet<Slot>,
}

impl WindowState {
    /// Marks `slot` as a fulfilled (and job-free) reservation of this window.
    pub fn add_assignment(&mut self, slot: Slot) {
        let prev = self.assigned.insert(slot, None);
        debug_assert!(prev.is_none(), "slot {slot} assigned twice");
        self.empty_assigned.insert(slot);
    }

    /// Drops the fulfilled reservation at `slot`, which must be job-free.
    pub fn remove_assignment(&mut self, slot: Slot) {
        let prev = self.assigned.remove(&slot);
        debug_assert_eq!(prev, Some(None), "removing occupied or absent slot {slot}");
        self.empty_assigned.remove(&slot);
    }

    /// Records that `job` now occupies the assigned `slot`.
    pub fn occupy(&mut self, slot: Slot, job: JobId) {
        let entry = self
            .assigned
            .get_mut(&slot)
            .expect("occupying unassigned slot");
        debug_assert!(entry.is_none(), "slot {slot} already occupied");
        *entry = Some(job);
        self.empty_assigned.remove(&slot);
    }

    /// Records that the job at the assigned `slot` left it.
    pub fn vacate(&mut self, slot: Slot) {
        let entry = self
            .assigned
            .get_mut(&slot)
            .expect("vacating unassigned slot");
        debug_assert!(entry.is_some(), "slot {slot} was not occupied");
        *entry = None;
        self.empty_assigned.insert(slot);
    }

    /// Number of assigned slots within `interval` (a slot range).
    pub fn assigned_in(
        &self,
        interval: Window,
    ) -> impl Iterator<Item = (Slot, Option<JobId>)> + '_ {
        self.assigned
            .range(interval.start()..interval.end())
            .map(|(&s, &j)| (s, j))
    }
}

/// Per-interval state at levels `≥ 1`. An interval with no record behaves
/// as `lower_occ = ∅` (full allowance), no physical occupancy, and no
/// fulfilled reservations — the "never touched" case, whose fulfillment
/// is claimed lazily.
#[derive(Clone, Debug, Default)]
pub struct IntervalState {
    /// Slots occupied by jobs of strictly lower levels. The paper's
    /// `allowance(I)` is the complement within the interval.
    pub lower_occ: BTreeSet<Slot>,
    /// Occupancy index: **every** physically occupied slot in this
    /// interval, regardless of the occupant's level (`lower_occ ⊆
    /// phys_occ`). Maintained by the scheduler on each physical
    /// occupy/free; lets rebalance walk the interval's *free* slots as
    /// gaps of a sorted set instead of probing all `L_ℓ` slots against
    /// the global slot→job map.
    pub phys_occ: BTreeSet<Slot>,
}

impl IntervalState {
    /// `true` when the record carries no information and can be pruned
    /// (absent records mean full allowance and no occupancy).
    pub fn is_empty(&self) -> bool {
        self.lower_occ.is_empty() && self.phys_occ.is_empty()
    }
}

/// All state of one scheduler level.
///
/// Standing ("baseline") reservations: the paper gives *every* level-ℓ
/// window one reservation per enclosed interval, unconditionally. We bound
/// that to window spans `≤ high_water` — the largest span ever inserted at
/// this level. Because `high_water` only grows and longer windows have the
/// lowest fulfillment priority, raising it never reduces any existing
/// quota, so quotas remain a pure, monotone-safe function of the visible
/// state (Observation 7 still applies).
#[derive(Clone, Debug, Default)]
pub struct Level {
    /// Window states: job counts and fulfilled-reservation slots. Entries
    /// persist after their last job leaves (standing reservations remain).
    /// FxHash: keys are scheduler-internal, hashed on every quota lookup.
    pub windows: FxHashMap<Window, WindowState>,
    /// Materialized intervals, keyed by interval start. An absent entry
    /// means no occupancy at all (full allowance).
    pub intervals: FxHashMap<Slot, IntervalState>,
    /// Largest window span ever inserted at this level (0 = level unused).
    pub high_water: u64,
}

impl Level {
    /// Window spans participating in every chain at this level:
    /// `2·ispan, 4·ispan, …` up to `high_water`.
    pub fn chain_spans(&self, ispan: u64) -> impl Iterator<Item = u64> + '_ {
        let hw = self.high_water;
        std::iter::successors(Some(2 * ispan), move |&s| s.checked_mul(2))
            .take_while(move |&s| s <= hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_state_assignment_lifecycle() {
        let mut w = WindowState::default();
        w.add_assignment(10);
        w.add_assignment(20);
        assert_eq!(w.empty_assigned.len(), 2);
        w.occupy(10, JobId(1));
        assert_eq!(
            w.empty_assigned.iter().copied().collect::<Vec<_>>(),
            vec![20]
        );
        w.vacate(10);
        w.remove_assignment(10);
        assert_eq!(w.assigned.len(), 1);
        assert!(w.empty_assigned.contains(&20));
    }

    #[test]
    fn assigned_in_range_query() {
        let mut w = WindowState::default();
        for s in [5u64, 9, 12, 31, 32] {
            w.add_assignment(s);
        }
        let within: Vec<Slot> = w.assigned_in(Window::new(8, 32)).map(|(s, _)| s).collect();
        assert_eq!(within, vec![9, 12, 31]);
    }

    #[test]
    fn chain_spans_follow_high_water() {
        let mut l = Level::default();
        assert_eq!(l.chain_spans(32).count(), 0);
        l.high_water = 64;
        assert_eq!(l.chain_spans(32).collect::<Vec<_>>(), vec![64]);
        l.high_water = 256;
        assert_eq!(l.chain_spans(32).collect::<Vec<_>>(), vec![64, 128, 256]);
    }
}
