//! Full-state snapshot/restore ([`Restorable`]) for the reservation
//! scheduler family.
//!
//! What must be recorded vs. what can be re-derived follows the state
//! split of [`crate::state`]:
//!
//! * **recorded** — the tower ladder, per-level high-water marks, every
//!   job's `(id, window, slot)`, and the slots backing each window's
//!   fulfilled reservations (history-dependent: *which* slot backs a
//!   reservation is not a pure function of the active set, only *how
//!   many* are fulfilled is — Observation 7);
//! * **re-derived on restore** — `slot_jobs`, per-window `x` counts and
//!   `empty_assigned`, and the per-interval `lower_occ` / `phys_occ`
//!   occupancy indices, all rebuilt from the recorded facts and
//!   cross-validated so a restored scheduler passes
//!   [`ReservationScheduler::check_invariants`].
//!
//! [`TrimmedScheduler`] adds its trim bookkeeping (γ, `n*`, the rebuild
//! counter, and the pre-trim original windows); [`DeamortizedScheduler`]
//! records both generations, the active parity, and the in-flight drain
//! queue *in order* (the order decides which jobs migrate on each
//! subsequent request, so it is part of the observable state).

use crate::deamortized::DeamortizedScheduler;
use crate::scheduler::{ReservationScheduler, MAX_TIME};
use crate::state::{JobRec, WindowState};
use crate::trim::TrimmedScheduler;
use fxhash::FxHashMap;
use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{JobId, Slot, Tower, Window};
use std::collections::{BTreeSet, VecDeque};

/// Validates a tower ladder without the panics of [`Tower::custom`].
fn tower_from(line: usize, thresholds: Vec<u64>) -> Result<Tower, ParseError> {
    let err = |message: String| ParseError { line, message };
    if thresholds.is_empty() {
        return Err(err("tower needs at least one threshold".to_string()));
    }
    let mut prev = 1u64;
    for &t in &thresholds {
        if !t.is_power_of_two() {
            return Err(err(format!("tower threshold {t} is not a power of two")));
        }
        // Checked: a forged 2^63 threshold must not overflow the
        // doubling test (this parser promises graceful errors).
        match prev.checked_mul(2) {
            Some(min) if t >= min => {}
            _ => {
                return Err(err(format!(
                    "tower thresholds must at least double: {prev} -> {t}"
                )))
            }
        }
        prev = t;
    }
    Ok(Tower::custom(thresholds))
}

/// The trim bound `(2·γ·n*).next_power_of_two()` with overflow reported
/// as a parse error instead of a panic (γ and `n*` come from untrusted
/// snapshot text).
fn checked_trim_span(gamma: u64, n_star: u64, floor: u64) -> Result<u64, ParseError> {
    2u64.checked_mul(gamma)
        .and_then(|x| x.checked_mul(n_star))
        .and_then(|x| x.checked_next_power_of_two())
        .map(|x| x.max(floor))
        .ok_or(ParseError {
            line: 0,
            message: format!("trim bound 2·{gamma}·{n_star} overflows the time axis"),
        })
}

/// Validates an aligned window from `[start, end)` fields.
fn aligned_window(f: &Fields<'_>, start: u64, end: u64) -> Result<Window, ParseError> {
    if end <= start {
        return Err(f.err(format!("window end {end} must exceed start {start}")));
    }
    if end > MAX_TIME {
        return Err(f.err(format!("window end {end} exceeds MAX_TIME 2^63")));
    }
    let w = Window::new(start, end);
    if !w.is_aligned() {
        return Err(f.err(format!("window {w} is not aligned")));
    }
    Ok(w)
}

impl Restorable for ReservationScheduler {
    const SNAPSHOT_KIND: &'static str = "reservation";

    fn write_state(&self, w: &mut SnapshotWriter) {
        // Tower ladder.
        let mut t = String::from("t");
        for &th in self.tower.thresholds() {
            t.push(' ');
            t.push_str(&th.to_string());
        }
        w.line(format_args!("{t}"));
        // High-water marks (levels ≥ 1 only ever set them).
        for (level, lvl) in self.levels.iter().enumerate() {
            if lvl.high_water > 0 {
                w.line(format_args!("h {level} {}", lvl.high_water));
            }
        }
        // Jobs, sorted by id for deterministic output.
        let mut jobs: Vec<(JobId, JobRec)> = self.jobs.iter().map(|(&id, &r)| (id, r)).collect();
        jobs.sort_by_key(|&(id, _)| id);
        for (id, rec) in jobs {
            w.line(format_args!(
                "j {} {} {} {}",
                id.0,
                rec.window.start(),
                rec.window.end(),
                rec.slot
            ));
        }
        // Fulfilled-reservation slots per window (occupants re-derived
        // from the job lines). Window states whose slot set is empty are
        // behaviorally identical to absent entries and are skipped.
        for (level, lvl) in self.levels.iter().enumerate() {
            let mut windows: Vec<(&Window, &WindowState)> = lvl
                .windows
                .iter()
                .filter(|(_, ws)| !ws.assigned.is_empty())
                .collect();
            windows.sort_by_key(|(w, _)| **w);
            for (win, ws) in windows {
                let mut line = format!("w {level} {} {}", win.start(), win.end());
                for &s in ws.assigned.keys() {
                    line.push(' ');
                    line.push_str(&s.to_string());
                }
                w.line(format_args!("{line}"));
            }
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut tower: Option<Tower> = None;
        let mut highs: Vec<(usize, usize, u64)> = Vec::new();
        let mut jobs: Vec<(usize, JobId, Window, Slot)> = Vec::new();
        let mut windows: Vec<(usize, usize, Window, Vec<Slot>)> = Vec::new();

        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "t" => {
                    if tower.is_some() {
                        return Err(f.err("duplicate 't' tower line"));
                    }
                    tower = Some(tower_from(*line, f.rest_u64("threshold")?)?);
                }
                "h" => {
                    let level = f.usize("level")?;
                    let hw = f.u64("high-water")?;
                    f.finish()?;
                    highs.push((*line, level, hw));
                }
                "j" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    let slot = f.u64("slot")?;
                    let w = aligned_window(&f, start, end)?;
                    if !w.contains_slot(slot) {
                        return Err(f.err(format!("job {id} at slot {slot} outside window {w}")));
                    }
                    f.finish()?;
                    jobs.push((*line, id, w, slot));
                }
                "w" => {
                    let level = f.usize("level")?;
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    let w = aligned_window(&f, start, end)?;
                    let slots = f.rest_u64("assigned slot")?;
                    windows.push((*line, level, w, slots));
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown reservation snapshot op '{other}'"),
                    })
                }
            }
        }

        let tower = tower.ok_or(ParseError {
            line: 0,
            message: "reservation snapshot has no 't' tower line".to_string(),
        })?;
        let mut s = ReservationScheduler::with_tower(tower);
        let err_at = |line: usize, message: String| ParseError { line, message };

        for (line, level, hw) in highs {
            if level == 0 || level >= s.levels.len() {
                return Err(err_at(line, format!("high-water at invalid level {level}")));
            }
            if s.levels[level].high_water != 0 {
                return Err(err_at(
                    line,
                    format!("duplicate high-water for level {level}"),
                ));
            }
            s.levels[level].high_water = hw;
        }

        // Jobs and physical occupancy.
        for &(line, id, w, slot) in &jobs {
            let level = s.tower.level_of(w.span());
            if s.jobs.contains_key(&id) {
                return Err(err_at(line, format!("duplicate job {id}")));
            }
            if let Some(prev) = s.slot_jobs.insert(slot, id) {
                return Err(err_at(
                    line,
                    format!("slot {slot} held by both {prev} and {id}"),
                ));
            }
            s.jobs.insert(
                id,
                JobRec {
                    window: w,
                    level,
                    slot,
                },
            );
        }

        // Fulfilled-reservation slots; occupants are wired afterwards.
        for (line, level, win, slots) in windows {
            if level == 0 || level >= s.levels.len() {
                return Err(err_at(
                    line,
                    format!("window state at invalid level {level}"),
                ));
            }
            if s.tower.level_of(win.span()) != level {
                return Err(err_at(
                    line,
                    format!(
                        "window {win} recorded at level {level} but belongs to level {}",
                        s.tower.level_of(win.span())
                    ),
                ));
            }
            if win.span() > s.levels[level].high_water {
                return Err(err_at(
                    line,
                    format!(
                        "window {win} exceeds level-{level} high-water {}",
                        s.levels[level].high_water
                    ),
                ));
            }
            if s.levels[level].windows.contains_key(&win) {
                return Err(err_at(line, format!("duplicate window state for {win}")));
            }
            let mut ws = WindowState::default();
            for slot in slots {
                if !win.contains_slot(slot) {
                    return Err(err_at(
                        line,
                        format!("assigned slot {slot} outside window {win}"),
                    ));
                }
                if let Some(&occ) = s.slot_jobs.get(&slot) {
                    let rec = s.jobs[&occ];
                    if rec.level < level {
                        return Err(err_at(
                            line,
                            format!("assigned slot {slot} of {win} is lower-occupied by {occ}"),
                        ));
                    }
                    if rec.level == level && rec.window != win {
                        return Err(err_at(
                            line,
                            format!(
                                "assigned slot {slot} of {win} holds same-level job {occ} \
                                 of window {}",
                                rec.window
                            ),
                        ));
                    }
                }
                if ws.assigned.insert(slot, None).is_some() {
                    return Err(err_at(line, format!("slot {slot} assigned twice in {win}")));
                }
                ws.empty_assigned.insert(slot);
            }
            s.levels[level].windows.insert(win, ws);
        }

        // Distinct windows of one level must not share an assigned slot.
        for (level, lvl) in s.levels.iter().enumerate().skip(1) {
            let mut seen: BTreeSet<Slot> = BTreeSet::new();
            for (win, ws) in &lvl.windows {
                for &slot in ws.assigned.keys() {
                    if !seen.insert(slot) {
                        return Err(err_at(
                            0,
                            format!("level {level}: slot {slot} assigned to two windows ({win} among them)"),
                        ));
                    }
                }
            }
        }

        // Wire occupants and per-window job counts.
        for &(line, id, w, slot) in &jobs {
            let level = s.jobs[&id].level;
            if level == 0 {
                continue;
            }
            let ws = s.levels[level]
                .windows
                .get_mut(&w)
                .ok_or_else(|| err_at(line, format!("job {id} of {w} has no window state")))?;
            ws.x += 1;
            match ws.assigned.get_mut(&slot) {
                Some(entry @ None) => *entry = Some(id),
                Some(Some(_)) => unreachable!("slot uniqueness was checked"),
                None => {
                    return Err(err_at(
                        line,
                        format!("job {id} at slot {slot} is not backed by a reservation of {w}"),
                    ))
                }
            }
            ws.empty_assigned.remove(&slot);
        }

        // Re-derive the occupancy indices from physical placement.
        let occupied: Vec<(Slot, usize)> = s
            .slot_jobs
            .iter()
            .map(|(&slot, id)| (slot, s.jobs[id].level))
            .collect();
        for (slot, job_level) in occupied {
            for lvl in 1..s.levels.len() {
                let span = s.tower.interval_span(lvl);
                let istart = slot - slot % span;
                let rec = s.levels[lvl].intervals.entry(istart).or_default();
                rec.phys_occ.insert(slot);
                if job_level < lvl {
                    rec.lower_occ.insert(slot);
                }
            }
        }
        Ok(s)
    }
}

impl Restorable for TrimmedScheduler {
    const SNAPSHOT_KIND: &'static str = "trimmed";

    fn write_state(&self, w: &mut SnapshotWriter) {
        w.line(format_args!(
            "g {} {} {}",
            self.gamma, self.n_star, self.rebuilds
        ));
        let mut originals: Vec<(JobId, Window)> =
            self.originals.iter().map(|(&id, &w)| (id, w)).collect();
        originals.sort_by_key(|&(id, _)| id);
        for (id, win) in originals {
            w.line(format_args!("o {} {} {}", id.0, win.start(), win.end()));
        }
        w.child(&self.inner);
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut header: Option<(u64, u64, u64)> = None;
        let mut originals: FxHashMap<JobId, Window> = FxHashMap::default();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "g" => {
                    if header.is_some() {
                        return Err(f.err("duplicate 'g' header"));
                    }
                    let gamma = f.u64("gamma")?;
                    let n_star = f.u64("n_star")?;
                    let rebuilds = f.u64("rebuilds")?;
                    f.finish()?;
                    if gamma == 0 {
                        return Err(f.err("gamma must be >= 1"));
                    }
                    if !n_star.is_power_of_two() || n_star < crate::trim::MIN_N_STAR {
                        return Err(f.err(format!(
                            "n_star {n_star} must be a power of two >= {}",
                            crate::trim::MIN_N_STAR
                        )));
                    }
                    header = Some((gamma, n_star, rebuilds));
                }
                "o" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    let w = aligned_window(&f, start, end)?;
                    f.finish()?;
                    if originals.insert(id, w).is_some() {
                        return Err(f.err(format!("duplicate original window for {id}")));
                    }
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown trimmed snapshot op '{other}'"),
                    })
                }
            }
        }
        let (gamma, n_star, rebuilds) = header.ok_or(ParseError {
            line: 0,
            message: "trimmed snapshot has no 'g' header".to_string(),
        })?;
        let inner = ReservationScheduler::read_state(node.only_child("reservation")?)?;

        // Cross-validate: the inner scheduler must hold exactly the
        // originals, each trimmed to the recorded n* bound, and n* must
        // be consistent with the active count (the resize loop keeps
        // `n <= n*` and `n >= n*/4` between requests).
        let n = originals.len() as u64;
        if n > n_star || (n_star > crate::trim::MIN_N_STAR && n < n_star / 4) {
            return Err(ParseError {
                line: 0,
                message: format!("n_star {n_star} inconsistent with {n} active jobs"),
            });
        }
        if inner.jobs.len() != originals.len() {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "inner scheduler holds {} jobs but {} originals are recorded",
                    inner.jobs.len(),
                    originals.len()
                ),
            });
        }
        let trim_span = checked_trim_span(gamma, n_star, 1)?;
        for (&id, &win) in &originals {
            let expect = win.trim_to(trim_span);
            match inner.jobs.get(&id) {
                Some(rec) if rec.window == expect => {}
                other => {
                    return Err(ParseError {
                        line: 0,
                        message: format!(
                            "job {id}: inner window {:?} does not match trimmed original {expect}",
                            other.map(|r| r.window)
                        ),
                    })
                }
            }
        }
        let tower = inner.tower().clone();
        Ok(TrimmedScheduler {
            inner,
            tower,
            gamma,
            n_star,
            originals,
            rebuilds,
        })
    }
}

impl Restorable for DeamortizedScheduler {
    const SNAPSHOT_KIND: &'static str = "deamortized";

    fn write_state(&self, w: &mut SnapshotWriter) {
        w.line(format_args!(
            "g {} {} {} {}",
            self.gamma, self.n_star, self.active, self.flips
        ));
        let mut jobs: Vec<(JobId, Window, usize)> = self
            .jobs
            .iter()
            .map(|(&id, &(win, gen))| (id, win, gen))
            .collect();
        jobs.sort_by_key(|&(id, _, _)| id);
        for (id, win, gen) in jobs {
            w.line(format_args!(
                "j {} {} {} {gen}",
                id.0,
                win.start(),
                win.end()
            ));
        }
        // Drain queue in order — the order is observable (it decides
        // which two jobs migrate on each request).
        for &id in &self.draining {
            w.line(format_args!("d {}", id.0));
        }
        w.child(&self.gens[0]);
        w.child(&self.gens[1]);
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut header: Option<(u64, u64, usize, u64)> = None;
        let mut jobs: std::collections::HashMap<JobId, (Window, usize)> =
            std::collections::HashMap::new();
        let mut draining: VecDeque<JobId> = VecDeque::new();
        // Membership mirror of `draining` so duplicate and per-job
        // queue checks stay O(1) (the queue can hold the whole active
        // set right after a flip).
        let mut drain_set: std::collections::HashSet<JobId> = std::collections::HashSet::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "g" => {
                    if header.is_some() {
                        return Err(f.err("duplicate 'g' header"));
                    }
                    let gamma = f.u64("gamma")?;
                    let n_star = f.u64("n_star")?;
                    let active = f.usize("active generation")?;
                    let flips = f.u64("flips")?;
                    f.finish()?;
                    if gamma == 0 {
                        return Err(f.err("gamma must be >= 1"));
                    }
                    if !n_star.is_power_of_two() || n_star < crate::deamortized::MIN_N_STAR {
                        return Err(f.err(format!(
                            "n_star {n_star} must be a power of two >= {}",
                            crate::deamortized::MIN_N_STAR
                        )));
                    }
                    if active > 1 {
                        return Err(f.err(format!("active generation {active} must be 0 or 1")));
                    }
                    header = Some((gamma, n_star, active, flips));
                }
                "j" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    let gen = f.usize("generation")?;
                    let w = aligned_window(&f, start, end)?;
                    f.finish()?;
                    if w.span() < 2 {
                        return Err(f.err(format!("window {w}: deamortized spans must be >= 2")));
                    }
                    if gen > 1 {
                        return Err(f.err(format!("generation {gen} must be 0 or 1")));
                    }
                    if jobs.insert(id, (w, gen)).is_some() {
                        return Err(f.err(format!("duplicate job {id}")));
                    }
                }
                "d" => {
                    let id = JobId(f.u64("job id")?);
                    f.finish()?;
                    if !drain_set.insert(id) {
                        return Err(f.err(format!("job {id} queued to drain twice")));
                    }
                    draining.push_back(id);
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown deamortized snapshot op '{other}'"),
                    })
                }
            }
        }
        let (gamma, n_star, active, flips) = header.ok_or(ParseError {
            line: 0,
            message: "deamortized snapshot has no 'g' header".to_string(),
        })?;
        let mut gens_iter = node.children_of("reservation");
        let gen0 = gens_iter.next().ok_or(ParseError {
            line: 0,
            message: "deamortized snapshot needs two 'reservation' generations".to_string(),
        })?;
        let gen1 = gens_iter.next().ok_or(ParseError {
            line: 0,
            message: "deamortized snapshot needs two 'reservation' generations".to_string(),
        })?;
        if gens_iter.next().is_some() {
            return Err(ParseError {
                line: 0,
                message: "deamortized snapshot has more than two generations".to_string(),
            });
        }
        let gens = [
            ReservationScheduler::read_state(gen0)?,
            ReservationScheduler::read_state(gen1)?,
        ];

        // Cross-validate placement, drain membership, and n* bounds.
        let n = jobs.len() as u64;
        if n > n_star || (n_star > crate::deamortized::MIN_N_STAR && n < n_star / 4) {
            return Err(ParseError {
                line: 0,
                message: format!("n_star {n_star} inconsistent with {n} active jobs"),
            });
        }
        if gens[0].jobs.len() + gens[1].jobs.len() != jobs.len() {
            return Err(ParseError {
                line: 0,
                message: "generation job counts do not cover the active set".to_string(),
            });
        }
        let trim_span = checked_trim_span(gamma, n_star, 2)?;
        for (&id, &(win, gen)) in &jobs {
            let t = win.trim_to(trim_span);
            let half = Window::with_span(t.start() / 2, t.span() / 2);
            match gens[gen].jobs.get(&id) {
                Some(rec) if rec.window == half => {}
                other => {
                    return Err(ParseError {
                        line: 0,
                        message: format!(
                            "job {id}: generation {gen} window {:?} != expected half-axis {half}",
                            other.map(|r| r.window)
                        ),
                    })
                }
            }
            let queued = drain_set.contains(&id);
            if (gen != active) != queued {
                return Err(ParseError {
                    line: 0,
                    message: format!(
                        "job {id} (gen {gen}, active {active}) drain-queue membership is wrong"
                    ),
                });
            }
        }
        if draining.iter().any(|id| !jobs.contains_key(id)) {
            return Err(ParseError {
                line: 0,
                message: "drain queue names an unknown job".to_string(),
            });
        }
        Ok(DeamortizedScheduler {
            gens,
            gamma,
            n_star,
            active,
            draining,
            jobs,
            flips,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::SingleMachineReallocator;

    fn churn(s: &mut impl SingleMachineReallocator, seed: u64, n: u64) {
        // Deterministic mixed-span churn touching several levels.
        for i in 0..n {
            let k = seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let span = [4u64, 8, 64, 512, 4096][(k % 5) as usize];
            let start = (k >> 8) % 16 * span;
            let _ = s.insert(JobId(i), Window::with_span(start, span));
            if i % 3 == 2 {
                let _ = s.delete(JobId(i - 2));
            }
        }
    }

    fn behaviorally_equal<T: SingleMachineReallocator>(a: &mut T, b: &mut T) {
        let mut ia = a.assignments();
        let mut ib = b.assignments();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib, "restored placements differ");
        // A churn suffix must produce identical moves and errors.
        for i in 1000..1060u64 {
            let w = Window::with_span((i % 8) * 64, 64);
            assert_eq!(a.insert(JobId(i), w), b.insert(JobId(i), w), "insert {i}");
        }
        for i in 1000..1040u64 {
            assert_eq!(a.delete(JobId(i)), b.delete(JobId(i)), "delete {i}");
        }
    }

    #[test]
    fn reservation_round_trip_passes_invariants() {
        let mut s = ReservationScheduler::new();
        churn(&mut s, 7, 120);
        s.check_invariants().unwrap();
        let text = s.snapshot_text();
        let mut r = ReservationScheduler::restore(&text).unwrap();
        r.check_invariants().expect("restored invariants");
        behaviorally_equal(&mut s, &mut r);
        s.check_invariants().unwrap();
        r.check_invariants().unwrap();
    }

    #[test]
    fn trimmed_round_trip() {
        let mut s = TrimmedScheduler::new(4);
        churn(&mut s, 21, 150);
        let text = s.snapshot_text();
        let mut r = TrimmedScheduler::restore(&text).unwrap();
        assert_eq!(r.n_star(), s.n_star());
        assert_eq!(r.rebuilds(), s.rebuilds());
        assert_eq!(r.gamma(), s.gamma());
        r.inner().check_invariants().unwrap();
        behaviorally_equal(&mut s, &mut r);
    }

    #[test]
    fn deamortized_round_trip_preserves_drain_queue() {
        let mut s = DeamortizedScheduler::new(2);
        churn(&mut s, 3, 90);
        let text = s.snapshot_text();
        let mut r = DeamortizedScheduler::restore(&text).unwrap();
        assert_eq!(r.flips(), s.flips());
        assert_eq!(r.draining, s.draining, "drain order is observable state");
        r.generations().0.check_invariants().unwrap();
        r.generations().1.check_invariants().unwrap();
        behaviorally_equal(&mut s, &mut r);
    }

    #[test]
    fn malformed_snapshots_fail_gracefully() {
        let mut s = ReservationScheduler::new();
        s.insert(JobId(1), Window::new(0, 64)).unwrap();
        let text = s.snapshot_text();

        // Truncation at every prefix parses or errors — never panics.
        for cut in 0..text.len() {
            let _ = ReservationScheduler::restore(&text[..cut]);
        }
        // A job on a slot outside its window.
        let bad = text.replace("j 1 0 64", "j 1 128 192");
        assert!(ReservationScheduler::restore(&bad).is_err());
        // Duplicate job line.
        let dup = format!("{}j 1 0 64 63\n", text.trim_end_matches("!end\n"));
        assert!(ReservationScheduler::restore(&format!("{dup}!end\n")).is_err());
        // Garbage op.
        let garbage = text.replace("t 32 256", "quantum 9");
        assert!(ReservationScheduler::restore(&garbage).is_err());
    }

    #[test]
    fn forged_trim_headers_error_instead_of_overflowing() {
        // Untrusted γ/n* values whose trim bound overflows u64 must be
        // parse errors, not panics (debug) or silent wraps (release).
        let t = TrimmedScheduler::new(4).snapshot_text();
        let forged = t.replace("g 4 8 0", "g 9223372036854775807 8 0");
        assert_ne!(forged, t);
        assert!(TrimmedScheduler::restore(&forged).is_err());

        let d = DeamortizedScheduler::new(2).snapshot_text();
        let forged = d.replace("g 2 8 0 0", "g 2 9223372036854775808 0 0");
        assert_ne!(forged, d);
        assert!(DeamortizedScheduler::restore(&forged).is_err());

        // A 2^63 tower threshold must not overflow the doubling check.
        let r = ReservationScheduler::new().snapshot_text();
        let forged = r.replace("t 32 256", "t 9223372036854775808 9223372036854775808");
        assert!(ReservationScheduler::restore(&forged).is_err());
    }
}
