//! Deamortized trimming via the even/odd-slot scheme (paper §4, end):
//!
//! > *"We use the even (or odd) time slots for the old schedule and the
//! > odd (or even) time slots for the new schedule. Instead of rebuilding
//! > the schedule all at once, every time one job is added or deleted, two
//! > jobs are moved from the old schedule to the new schedule."*
//!
//! Two inner [`ReservationScheduler`]s run on a half-speed time axis:
//! generation 0 owns the even real slots (`real = 2t`), generation 1 the
//! odd ones (`real = 2t + 1`), so the two schedules can never collide. An
//! aligned real window `[a, a + 2^i)` with `i ≥ 1` contains exactly the
//! half-axis window `[a/2, a/2 + 2^{i−1})` in either parity, which is
//! aligned again — so each generation is an ordinary aligned instance.
//!
//! When the `n*` estimate doubles or halves, instead of rebuilding at once
//! (the `O(n)` spike of [`crate::trim::TrimmedScheduler`]), the *active*
//! generation flips and every subsequent request additionally migrates two
//! jobs from the draining generation, keeping the worst-case per-request
//! cost bounded. The paper notes the scheme needs the undoubled instance
//! to be `2γ`-underallocated — each generation effectively runs the
//! machine at half speed.
//!
//! **Limitation (documented in DESIGN.md):** span-1 windows have a fixed
//! slot parity and can never change generations, so deamortized mode
//! requires every window span ≥ 2 (and trims to ≥ 2). The amortized
//! [`crate::trim::TrimmedScheduler`] has no such restriction.

use crate::scheduler::ReservationScheduler;
use realloc_core::{Error, JobId, SingleMachineReallocator, Slot, SlotMove, Tower, Window};
use std::collections::{HashMap, VecDeque};

pub(crate) const MIN_N_STAR: u64 = 8;

/// How many old-generation jobs each request additionally migrates while a
/// drain is in progress (the paper's "two jobs").
const DRAIN_PER_REQUEST: usize = 2;

/// Deamortized trimmed reservation scheduler (even/odd-slot scheme).
///
/// Fields are `pub(crate)` so [`crate::snapshot`] can serialize the full
/// state, including the in-flight drain queue (its order is part of the
/// observable behavior: it decides which jobs migrate on each request).
#[derive(Clone, Debug)]
pub struct DeamortizedScheduler {
    /// `gens[p]` schedules the half-axis mapped to real slots `2t + p`.
    pub(crate) gens: [ReservationScheduler; 2],
    pub(crate) gamma: u64,
    pub(crate) n_star: u64,
    pub(crate) active: usize,
    /// Jobs of the draining (non-active) generation, in drain order
    /// (ascending job id from the flip that created the queue).
    pub(crate) draining: VecDeque<JobId>,
    /// Original aligned windows and current generation of each job.
    pub(crate) jobs: HashMap<JobId, (Window, usize)>,
    /// Completed generation flips (observability).
    pub(crate) flips: u64,
}

impl DeamortizedScheduler {
    /// New scheduler with the paper tower and trim factor `gamma`.
    pub fn new(gamma: u64) -> Self {
        Self::with_tower(Tower::paper(), gamma)
    }

    /// New scheduler with a custom tower.
    pub fn with_tower(tower: Tower, gamma: u64) -> Self {
        assert!(gamma >= 1);
        DeamortizedScheduler {
            gens: [
                ReservationScheduler::with_tower(tower.clone()),
                ReservationScheduler::with_tower(tower),
            ],
            gamma,
            n_star: MIN_N_STAR,
            active: 0,
            draining: VecDeque::new(),
            jobs: HashMap::new(),
            flips: 0,
        }
    }

    /// Current trim bound (power of two, ≥ 2).
    pub fn trim_span(&self) -> u64 {
        (2 * self.gamma * self.n_star).next_power_of_two().max(2)
    }

    /// Completed generation flips.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The trim factor γ this scheduler was built with.
    pub fn gamma(&self) -> u64 {
        self.gamma
    }

    /// Jobs still waiting to migrate out of the draining generation.
    pub fn draining_len(&self) -> usize {
        self.draining.len()
    }

    /// The two inner generations (for invariant checks in tests).
    pub fn generations(&self) -> (&ReservationScheduler, &ReservationScheduler) {
        (&self.gens[0], &self.gens[1])
    }

    /// Real window → half-axis window for either parity. Requires span ≥ 2.
    fn half_window(w: Window) -> Window {
        debug_assert!(w.is_aligned() && w.span() >= 2);
        Window::with_span(w.start() / 2, w.span() / 2)
    }

    /// Half-axis slot of generation `p` → real slot.
    fn real_slot(p: usize, t: Slot) -> Slot {
        2 * t + p as u64
    }

    fn lift_moves(p: usize, moves: Vec<SlotMove>) -> Vec<SlotMove> {
        moves
            .into_iter()
            .map(|m| SlotMove {
                job: m.job,
                from: m.from.map(|t| Self::real_slot(p, t)),
                to: m.to.map(|t| Self::real_slot(p, t)),
            })
            .collect()
    }

    fn insert_into(
        &mut self,
        gen: usize,
        id: JobId,
        window: Window,
    ) -> Result<Vec<SlotMove>, Error> {
        let trimmed = window.trim_to(self.trim_span());
        let moves = self.gens[gen].insert(id, Self::half_window(trimmed))?;
        self.jobs.insert(id, (window, gen));
        Ok(Self::lift_moves(gen, moves))
    }

    /// Migrates up to `k` jobs from the draining generation to the active
    /// one.
    fn drain_step(&mut self, k: usize, out: &mut Vec<SlotMove>) -> Result<(), Error> {
        for _ in 0..k {
            let Some(id) = self.draining.pop_front() else {
                return Ok(());
            };
            let (window, gen) = self.jobs[&id];
            debug_assert_ne!(gen, self.active);
            let del = self.gens[gen].delete(id)?;
            out.extend(Self::lift_moves(gen, del));
            let ins = self.insert_into(self.active, id, window)?;
            out.extend(ins);
        }
        Ok(())
    }

    fn maybe_flip(&mut self, out: &mut Vec<SlotMove>) -> Result<(), Error> {
        let n = self.jobs.len() as u64;
        let needs = n > self.n_star || (self.n_star > MIN_N_STAR && n < self.n_star / 4);
        if !needs {
            return Ok(());
        }
        // Finish any drain in progress first (rare; bounded by the previous
        // generation's leftovers).
        self.drain_step(usize::MAX, out)?;
        while self.jobs.len() as u64 > self.n_star {
            self.n_star *= 2;
        }
        while self.n_star > MIN_N_STAR && (self.jobs.len() as u64) < self.n_star / 4 {
            self.n_star /= 2;
        }
        // Flip: the active generation starts draining into the other one.
        // The queue is sorted by job id so the drain order — which decides
        // which two jobs migrate on each subsequent request — is a pure
        // function of the active set, not of `jobs`'s hash iteration
        // order. Snapshot/restore and cross-instance replay depend on
        // this determinism.
        let old = self.active;
        self.active = 1 - old;
        self.flips += 1;
        let mut queue: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, &(_, g))| g == old)
            .map(|(&id, _)| id)
            .collect();
        queue.sort_unstable();
        self.draining = queue.into();
        Ok(())
    }
}

impl SingleMachineReallocator for DeamortizedScheduler {
    fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error> {
        if self.jobs.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        if !window.is_aligned() {
            return Err(Error::UnalignedWindow(window));
        }
        if window.span() < 2 {
            return Err(Error::UnsupportedJob {
                job: id,
                detail: "deamortized mode requires window span ≥ 2 (slot parity)".into(),
            });
        }
        let mut out = self.insert_into(self.active, id, window)?;
        self.drain_step(DRAIN_PER_REQUEST, &mut out)?;
        self.maybe_flip(&mut out)?;
        Ok(out)
    }

    fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error> {
        let Some(&(_, gen)) = self.jobs.get(&id) else {
            return Err(Error::UnknownJob(id));
        };
        let moves = self.gens[gen].delete(id)?;
        let mut out = Self::lift_moves(gen, moves);
        self.jobs.remove(&id);
        if gen != self.active {
            self.draining.retain(|&j| j != id);
        }
        self.drain_step(DRAIN_PER_REQUEST, &mut out)?;
        self.maybe_flip(&mut out)?;
        Ok(out)
    }

    fn slot_of(&self, id: JobId) -> Option<Slot> {
        let &(_, gen) = self.jobs.get(&id)?;
        self.gens[gen].slot_of(id).map(|t| Self::real_slot(gen, t))
    }

    fn assignments(&self) -> Vec<(JobId, Slot)> {
        self.jobs
            .keys()
            .map(|&id| (id, self.slot_of(id).expect("active job scheduled")))
            .collect()
    }

    fn active_count(&self) -> usize {
        self.jobs.len()
    }

    fn name(&self) -> &'static str {
        "reservation+deamortized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_separation() {
        let mut s = DeamortizedScheduler::new(4);
        for i in 0..16u64 {
            s.insert(JobId(i), Window::new(0, 64)).unwrap();
        }
        // All jobs in the active generation share its parity.
        let slots: Vec<Slot> = s.assignments().iter().map(|&(_, t)| t).collect();
        assert!(slots.iter().all(|&t| t < 64));
        let parities: std::collections::HashSet<u64> = slots.iter().map(|t| t % 2).collect();
        assert_eq!(parities.len(), 1, "no flip yet: single parity");
    }

    #[test]
    fn span_one_rejected() {
        let mut s = DeamortizedScheduler::new(4);
        assert!(matches!(
            s.insert(JobId(1), Window::new(3, 4)),
            Err(Error::UnsupportedJob { .. })
        ));
    }

    #[test]
    fn flip_drains_incrementally() {
        let mut s = DeamortizedScheduler::new(2);
        // Grow past n* = 8 to force a flip, then watch the drain finish
        // within the next few requests.
        for i in 0..9u64 {
            s.insert(JobId(i), Window::with_span(i * 64, 64)).unwrap();
        }
        assert_eq!(s.flips(), 1);
        assert!(s.draining_len() > 0);
        let before = s.draining_len();
        s.insert(JobId(100), Window::new(0, 64)).unwrap();
        assert!(s.draining_len() + 2 <= before + 1, "each request drains 2");
        // Keep churning until the drain finishes.
        let mut i = 101u64;
        while s.draining_len() > 0 {
            s.insert(JobId(i), Window::with_span((i % 16) * 64, 64))
                .unwrap();
            i += 1;
        }
        // Everyone still feasibly scheduled within their window.
        for (id, slot) in s.assignments() {
            let w = s.jobs[&id].0;
            assert!(w.contains_slot(slot), "{id} at {slot} outside {w}");
        }
        s.generations().0.check_invariants().unwrap();
        s.generations().1.check_invariants().unwrap();
    }

    #[test]
    fn bounded_per_request_moves() {
        // The deamortized point: no Θ(n) rebuild spikes.
        let mut s = DeamortizedScheduler::new(2);
        let mut max_moves = 0usize;
        for i in 0..512u64 {
            let m = s
                .insert(JobId(i), Window::with_span((i % 64) * 128, 128))
                .unwrap();
            max_moves = max_moves.max(m.len());
        }
        for i in 0..400u64 {
            let m = s.delete(JobId(i)).unwrap();
            max_moves = max_moves.max(m.len());
        }
        assert!(
            max_moves <= 16,
            "deamortized per-request moves must stay bounded, got {max_moves}"
        );
        assert!(s.flips() >= 2, "growth and shrink phases must flip");
    }

    #[test]
    fn delete_of_draining_job() {
        let mut s = DeamortizedScheduler::new(2);
        for i in 0..9u64 {
            s.insert(JobId(i), Window::with_span(i * 64, 64)).unwrap();
        }
        assert!(s.draining_len() > 0);
        // Delete a job that is queued for draining.
        let victim = {
            let mut found = None;
            for i in 0..9u64 {
                if s.jobs.get(&JobId(i)).map(|&(_, g)| g) != Some(s.active) {
                    found = Some(JobId(i));
                    break;
                }
            }
            found.expect("some job still in the old generation")
        };
        s.delete(victim).unwrap();
        assert!(s.slot_of(victim).is_none());
        assert!(!s.draining.contains(&victim));
    }
}
