//! The reservation-based pecking-order scheduler of paper §4 (Figure 1).
//!
//! # Architecture
//!
//! The paper's Figure 1 describes RESERVE/MOVE/PLACE imperatively. We
//! implement the same algorithm around Observation 7 (fulfillment is
//! history independent):
//!
//! * the *fulfilled quota* of every window in every interval is a pure
//!   function of the per-window job counts and the interval's allowance
//!   ([`crate::quota`]);
//! * the scheduler's mutable state records only which concrete slots back
//!   the fulfilled reservations and where jobs physically sit
//!   ([`crate::state`]);
//! * the running invariant is **never over-assigned**: each window's
//!   assigned slots in an interval never exceed its quota there. Quota
//!   *drops* (a deletion's reservation removal, an allowance shrink) are
//!   rebalanced eagerly at the affected intervals — a drop on a slot that
//!   holds a job triggers the paper's MOVE. Quota *rises* are materialized
//!   lazily: PLACE first tries the already-backed slots, then *hunts*
//!   through the window's intervals in round-robin order, topping each up
//!   to quota until a free fulfilled slot appears (Lemma 8 guarantees one
//!   while the instance is sufficiently underallocated).
//!
//! Standing reservations (one per window per enclosed interval, Figure 1
//! line 1) exist for every window span up to the level's high-water mark —
//! see [`crate::state::Level`] for why this bounding is behaviour-safe.
//!
//! Mutations and their consequences are processed through a FIFO worklist,
//! mirroring Figure 1's order: reservations first, then placement, then
//! higher-level fallout. Displacements strictly increase in level, so the
//! cascade terminates after at most one PLACE per level — the
//! `O(min{log* n, log* Δ})` of Theorem 1.
//!
//! MOVE itself performs the paper's *swap trick* (lines 12–13 of Figure 1):
//! moving a level-ℓ job between two of its window's slots swaps the two
//! slots in every ancestor interval, so ancestor allowance sizes — and
//! therefore all quotas — are unchanged, and no rebalance is needed. At
//! most one higher-level job hops between the swapped slots.
//!
//! Spans `≤ L₁` (level 0) have no reservation machinery; they use the
//! constant-depth pecking-order cascade in [`crate::base`].
//!
//! # Hot-path engineering
//!
//! The steady-state request path performs **no heap allocation** beyond
//! the returned move list: every intermediate buffer rebalance and quota
//! computation need lives in a [`Scratch`] block owned by the scheduler
//! and reused across requests (taken/restored around each rebalance so
//! the rare recursive hunt still works). Free-slot discovery walks the
//! gaps of the per-interval occupancy index
//! ([`crate::state::IntervalState::phys_occ`]) instead of probing all
//! `L_ℓ` slots of an interval against the global slot map, and all
//! point-lookup maps use the deterministic FxHash shim instead of
//! SipHash. None of this changes observable behaviour — the frozen seed
//! copy in `tests/seed_equivalence.rs` pins that down.

use crate::quota::{
    fulfilled_quotas_into, positions_gained, positions_lost, reservation_count, Demand,
};
use crate::state::{JobRec, Level};
use fxhash::FxHashMap;
use realloc_core::{Error, JobId, SingleMachineReallocator, Slot, SlotMove, Tower, Window};
use std::collections::VecDeque;

/// Maximum admissible window end: keeping the axis inside `[0, 2^63)`
/// guarantees aligned-parent and interval arithmetic never overflows.
pub const MAX_TIME: u64 = 1 << 63;

/// Deferred consequences of a mutation, processed FIFO.
#[derive(Clone, Debug)]
pub(crate) enum Task {
    /// Re-establish `interval`'s assignments against recomputed quotas.
    Rebalance {
        /// Scheduler level of the interval.
        level: usize,
        /// Interval start slot.
        istart: Slot,
    },
    /// Re-place a displaced job (the paper's cascading `PLACE(h)`).
    Place {
        /// The displaced job.
        job: JobId,
        /// Its window.
        window: Window,
        /// Its level.
        level: usize,
        /// The slot it was displaced from (for move accounting).
        from: Option<Slot>,
    },
}

/// Reusable buffers for the request hot path. Owned by the scheduler and
/// taken/restored around each rebalance, so steady-state inserts and
/// deletes allocate nothing beyond the returned move list.
#[derive(Clone, Debug, Default)]
pub(crate) struct Scratch {
    /// Chain windows with their fulfilled quotas (`quotas_into` output).
    targets: Vec<(Window, u64)>,
    /// Reservation demands fed to the Observation 7 fulfillment rule.
    demands: Vec<Demand>,
    /// Fulfilled quota per demand (same order).
    quotas: Vec<u64>,
    /// Assignments that fell out of the allowance (rebalance phase 0).
    invalid: Vec<Slot>,
    /// One window's assignments in the interval (rebalance phase 1).
    cur: Vec<(Slot, Option<JobId>)>,
    /// Sorted: lower-occupied ∪ assigned slots (rebalance phase 2).
    taken: Vec<Slot>,
    /// Sorted: `taken` ∪ physically occupied (rebalance phase 2).
    blocked: Vec<Slot>,
    /// Residual per-window demand after the free-slot pass.
    needs: Vec<u64>,
    /// Occupied-but-unassigned slots (phase 2 fallback pool).
    spare: Vec<Slot>,
    /// The FIFO worklist, reused across requests.
    work: VecDeque<Task>,
}

/// Single-machine reservation scheduler for recursively aligned windows
/// (paper §4). Implements [`SingleMachineReallocator`].
///
/// Windows must be aligned and end before [`MAX_TIME`]; the §5 alignment
/// wrapper (`realloc-multi`) produces such windows from arbitrary ones.
#[derive(Clone, Debug)]
pub struct ReservationScheduler {
    pub(crate) tower: Tower,
    /// Active jobs.
    pub(crate) jobs: FxHashMap<JobId, JobRec>,
    /// Physical occupancy: slot → job.
    pub(crate) slot_jobs: FxHashMap<Slot, JobId>,
    /// Per-level window/interval state; index = level.
    pub(crate) levels: Vec<Level>,
    /// Hot-path buffers (no observable state).
    pub(crate) scratch: Scratch,
}

impl ReservationScheduler {
    /// New scheduler with the paper tower (`L₁ = 32, L₂ = 256`).
    pub fn new() -> Self {
        Self::with_tower(Tower::paper())
    }

    /// New scheduler with a custom level ladder (tests / ablations).
    pub fn with_tower(tower: Tower) -> Self {
        let n = tower.max_levels();
        ReservationScheduler {
            tower,
            jobs: FxHashMap::default(),
            slot_jobs: FxHashMap::default(),
            levels: (0..n).map(|_| Level::default()).collect(),
            scratch: Scratch::default(),
        }
    }

    /// The tower in use.
    pub fn tower(&self) -> &Tower {
        &self.tower
    }

    // ------------------------------------------------------------------
    // Geometry helpers
    // ------------------------------------------------------------------

    /// Interval span `L_ℓ` of `level ≥ 1`.
    pub(crate) fn ispan(&self, level: usize) -> u64 {
        self.tower.interval_span(level)
    }

    /// Start of the level-`level` interval containing `slot`.
    pub(crate) fn interval_of(&self, level: usize, slot: Slot) -> Slot {
        let span = self.ispan(level);
        slot - slot % span
    }

    /// Number of level-`level` intervals in window `w` (the paper's `2^k`).
    pub(crate) fn num_intervals(&self, level: usize, w: Window) -> u64 {
        w.span() / self.ispan(level)
    }

    // ------------------------------------------------------------------
    // Quotas
    // ------------------------------------------------------------------

    /// The chain of windows containing the interval at `istart` (all spans
    /// up to the level's high-water mark), sorted by span ascending, with
    /// their fulfilled quotas in this interval. Pure (Observation 7).
    /// Writes into the caller's buffers (`demands`/`quotas` are working
    /// storage) — the hot path calls this once per rebalanced interval.
    pub(crate) fn quotas_into(
        &self,
        level: usize,
        istart: Slot,
        out: &mut Vec<(Window, u64)>,
        demands: &mut Vec<Demand>,
        quotas: &mut Vec<u64>,
    ) {
        let ispan = self.ispan(level);
        let lvl = &self.levels[level];
        let lower = lvl
            .intervals
            .get(&istart)
            .map(|i| i.lower_occ.len() as u64)
            .unwrap_or(0);
        let allowance = ispan - lower;

        out.clear();
        demands.clear();
        for span in lvl.chain_spans(ispan) {
            let w = Window::aligned_enclosing(istart, span);
            let x = lvl.windows.get(&w).map(|ws| ws.x).unwrap_or(0);
            let ni = span / ispan;
            let pos = (istart - w.start()) / ispan;
            out.push((w, 0));
            demands.push(Demand {
                span,
                reservations: reservation_count(x, ni, pos),
            });
        }
        fulfilled_quotas_into(demands, allowance, quotas);
        for (t, &q) in out.iter_mut().zip(quotas.iter()) {
            t.1 = q;
        }
    }

    /// Allocating convenience wrapper over [`Self::quotas_into`]
    /// (invariant checks, probes — not the request path).
    pub(crate) fn quotas_at(&self, level: usize, istart: Slot) -> Vec<(Window, u64)> {
        let mut out = Vec::new();
        let mut demands = Vec::new();
        let mut quotas = Vec::new();
        self.quotas_into(level, istart, &mut out, &mut demands, &mut quotas);
        out
    }

    // ------------------------------------------------------------------
    // Occupancy index maintenance
    // ------------------------------------------------------------------

    /// Records that `slot` became physically occupied: enters the
    /// occupancy index of its enclosing interval at every level.
    fn note_occupied(&mut self, slot: Slot) {
        for lvl in 1..self.levels.len() {
            let span = self.tower.interval_span(lvl);
            let istart = slot - slot % span;
            let inserted = self.levels[lvl]
                .intervals
                .entry(istart)
                .or_default()
                .phys_occ
                .insert(slot);
            debug_assert!(inserted, "slot {slot} double-entered the index at {lvl}");
        }
    }

    /// Records that `slot` became physically free: leaves every level's
    /// occupancy index, pruning interval records that carry nothing else.
    fn note_freed(&mut self, slot: Slot) {
        for lvl in 1..self.levels.len() {
            let span = self.tower.interval_span(lvl);
            let istart = slot - slot % span;
            let mut emptied = false;
            if let Some(rec) = self.levels[lvl].intervals.get_mut(&istart) {
                let had = rec.phys_occ.remove(&slot);
                debug_assert!(had, "freed slot {slot} missing from the index at {lvl}");
                emptied = rec.is_empty();
            } else {
                debug_assert!(false, "interval of an occupied slot must be materialized");
            }
            if emptied {
                self.levels[lvl].intervals.remove(&istart);
            }
        }
    }

    // ------------------------------------------------------------------
    // Worklist processing
    // ------------------------------------------------------------------

    fn drain(&mut self, work: &mut VecDeque<Task>, moves: &mut Vec<SlotMove>) -> Result<(), Error> {
        while let Some(task) = work.pop_front() {
            match task {
                Task::Rebalance { level, istart } => {
                    self.rebalance(level, istart, moves)?;
                }
                Task::Place {
                    job,
                    window,
                    level,
                    from,
                } => {
                    self.place(job, window, level, from, moves, work)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Rebalance: re-establish one interval against its quotas
    // ------------------------------------------------------------------

    /// Brings the interval at `istart` back under quota and tops it up:
    ///
    /// 0. drop assignments on slots that fell out of the allowance,
    /// 1. shed over-quota assignments (MOVE jobs off slots being shed),
    /// 2. claim free allowance slots for under-quota windows.
    ///
    /// Step 2 makes the interval *exactly* quota-consistent; intervals that
    /// were never rebalanced simply hold no assignments yet (lazy rises).
    fn rebalance(
        &mut self,
        level: usize,
        istart: Slot,
        moves: &mut Vec<SlotMove>,
    ) -> Result<(), Error> {
        // Take the scratch block so the borrow checker lets the buffers
        // live across `&mut self` calls. A recursive rebalance (MOVE →
        // hunt) sees — and leaves behind — a default block; only the
        // outermost frame keeps the warmed buffers.
        let mut sc = std::mem::take(&mut self.scratch);
        let result = self.rebalance_inner(level, istart, moves, &mut sc);
        self.scratch = sc;
        result
    }

    fn rebalance_inner(
        &mut self,
        level: usize,
        istart: Slot,
        moves: &mut Vec<SlotMove>,
        sc: &mut Scratch,
    ) -> Result<(), Error> {
        let ispan = self.ispan(level);
        let iw = Window::with_span(istart, ispan);
        self.quotas_into(
            level,
            istart,
            &mut sc.targets,
            &mut sc.demands,
            &mut sc.quotas,
        );

        // Phase 0 + 1: per window, drop invalid assignments and shed excess.
        for &(w, quota) in &sc.targets {
            if !self.levels[level].windows.contains_key(&w) {
                continue;
            }
            sc.invalid.clear();
            {
                let lvl = &self.levels[level];
                let ws = &lvl.windows[&w];
                let occ = lvl.intervals.get(&istart);
                sc.invalid.extend(
                    ws.assigned_in(iw)
                        .filter(|(s, _)| occ.is_some_and(|i| i.lower_occ.contains(s)))
                        .map(|(s, j)| {
                            debug_assert!(
                                j.is_none(),
                                "lower-occupied slot {s} still holds a level-{level} job"
                            );
                            s
                        }),
                );
            }
            for &s in &sc.invalid {
                self.levels[level]
                    .windows
                    .get_mut(&w)
                    .unwrap()
                    .remove_assignment(s);
            }

            sc.cur.clear();
            sc.cur
                .extend(self.levels[level].windows[&w].assigned_in(iw));
            let excess = (sc.cur.len() as u64).saturating_sub(quota);
            if excess == 0 {
                continue;
            }
            // Shed empty assignments first; then MOVE jobs off the rest.
            let mut shed = 0u64;
            for &(s, _) in sc.cur.iter().filter(|(_, o)| o.is_none()) {
                if shed == excess {
                    break;
                }
                self.levels[level]
                    .windows
                    .get_mut(&w)
                    .unwrap()
                    .remove_assignment(s);
                shed += 1;
            }
            if shed < excess {
                for &(s, occ) in sc.cur.iter().filter(|(_, o)| o.is_some()) {
                    if shed == excess {
                        break;
                    }
                    let j = occ.expect("filtered on occupied");
                    self.move_job(level, w, j, moves)?;
                    // `move_job` vacated `s`; the assignment is now empty.
                    self.levels[level]
                        .windows
                        .get_mut(&w)
                        .unwrap()
                        .remove_assignment(s);
                    shed += 1;
                }
            }
        }

        // Phase 2: claim free allowance slots for under-quota windows.
        // `taken` = lower-occupied ∪ currently assigned (by any chain
        // window); `blocked` additionally unions the interval's occupancy
        // index, so free slots are exactly the gaps of `blocked` — no
        // per-slot probing of the global slot map.
        sc.taken.clear();
        sc.blocked.clear();
        {
            let lvl = &self.levels[level];
            if let Some(ist) = lvl.intervals.get(&istart) {
                sc.taken.extend(ist.lower_occ.iter().copied());
            }
            for &(w, _) in &sc.targets {
                if let Some(ws) = lvl.windows.get(&w) {
                    sc.taken.extend(ws.assigned_in(iw).map(|(s, _)| s));
                }
            }
            sc.taken.sort_unstable();
            // Sorted merge (dedup) of `taken` and the occupancy index.
            let mut ti = 0usize;
            if let Some(ist) = lvl.intervals.get(&istart) {
                for &p in &ist.phys_occ {
                    while ti < sc.taken.len() && sc.taken[ti] < p {
                        sc.blocked.push(sc.taken[ti]);
                        ti += 1;
                    }
                    if ti < sc.taken.len() && sc.taken[ti] == p {
                        ti += 1;
                    }
                    sc.blocked.push(p);
                }
            }
            sc.blocked.extend_from_slice(&sc.taken[ti..]);
        }

        // Phase 2a: hand the free gaps to windows in chain order. The
        // cursor never revisits a slot, which matches the seed's
        // scan-from-the-left with a shared `taken` set.
        sc.needs.clear();
        let iend = istart + ispan;
        let mut free_cursor = istart;
        let mut bi = 0usize;
        for &(w, quota) in &sc.targets {
            let cur = self.levels[level]
                .windows
                .get(&w)
                .map(|ws| ws.assigned_in(iw).count() as u64)
                .unwrap_or(0);
            let mut needed = quota.saturating_sub(cur);
            while needed > 0 && free_cursor < iend {
                if bi < sc.blocked.len() && sc.blocked[bi] == free_cursor {
                    free_cursor += 1;
                    bi += 1;
                    continue;
                }
                self.levels[level]
                    .windows
                    .entry(w)
                    .or_default()
                    .add_assignment(free_cursor);
                free_cursor += 1;
                needed -= 1;
            }
            sc.needs.push(needed);
        }

        // Phase 2b: residual demand falls back to occupied-but-unassigned
        // slots (assignment ≠ occupancy; PLACE displaces on use). This can
        // only happen once every free slot in the interval is spoken for,
        // so the candidates are exactly `phys_occ \ taken`, left to right.
        if sc.needs.iter().any(|&n| n > 0) {
            sc.spare.clear();
            {
                let lvl = &self.levels[level];
                if let Some(ist) = lvl.intervals.get(&istart) {
                    let mut ti = 0usize;
                    for &p in &ist.phys_occ {
                        while ti < sc.taken.len() && sc.taken[ti] < p {
                            ti += 1;
                        }
                        if ti < sc.taken.len() && sc.taken[ti] == p {
                            continue;
                        }
                        sc.spare.push(p);
                    }
                }
            }
            let mut si = 0usize;
            for (idx, &(w, _)) in sc.targets.iter().enumerate() {
                let mut needed = sc.needs[idx];
                while needed > 0 && si < sc.spare.len() {
                    self.levels[level]
                        .windows
                        .entry(w)
                        .or_default()
                        .add_assignment(sc.spare[si]);
                    si += 1;
                    needed -= 1;
                }
                debug_assert_eq!(needed, 0, "quota exceeds free capacity in interval");
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // MOVE (Figure 1, lines 10–14): relocate a job within its window,
    // swapping the two slots in all ancestor intervals.
    // ------------------------------------------------------------------

    fn move_job(
        &mut self,
        level: usize,
        w: Window,
        job: JobId,
        moves: &mut Vec<SlotMove>,
    ) -> Result<(), Error> {
        let s = self.jobs[&job].slot;
        // Target: an empty fulfilled slot of `w` (Lemma 8 guarantees one),
        // preferring a physically free slot over one under a higher job.
        let target = match self.pick_fulfilled_slot(level, w) {
            Some(t) => t,
            None => self.hunt_capacity(job, level, w, moves)?,
        };
        debug_assert_ne!(target, s);
        let hopper = self.slot_jobs.get(&target).copied();

        // Physical swap: job s -> target; hopper (if any) target -> s.
        self.slot_jobs.insert(target, job);
        self.jobs.get_mut(&job).unwrap().slot = target;
        {
            let ws = self.levels[level].windows.get_mut(&w).unwrap();
            ws.vacate(s);
            ws.occupy(target, job);
        }
        moves.push(SlotMove {
            job,
            from: Some(s),
            to: Some(target),
        });

        let htop = match hopper {
            Some(h) => {
                let hrec = self.jobs[&h];
                debug_assert!(
                    hrec.level > level,
                    "occupant of a fulfilled slot must be higher-level"
                );
                // h hops target -> s; its own fulfilled slot re-points.
                // Both slots stay occupied, so the occupancy index is
                // untouched.
                self.slot_jobs.insert(s, h);
                self.jobs.get_mut(&h).unwrap().slot = s;
                let hws = self.levels[hrec.level]
                    .windows
                    .get_mut(&hrec.window)
                    .unwrap();
                hws.vacate(target);
                hws.remove_assignment(target);
                hws.add_assignment(s);
                hws.occupy(s, h);
                moves.push(SlotMove {
                    job: h,
                    from: Some(target),
                    to: Some(s),
                });
                hrec.level
            }
            None => {
                self.slot_jobs.remove(&s);
                self.levels.len() - 1
            }
        };

        // Ancestor swap (Figure 1 lines 12–13): for levels in (level, htop],
        // `s` and `target` trade lower-occupancy and any assignment at
        // `target` re-points to `s`. Allowance sizes — hence quotas — are
        // unchanged, so no rebalance is needed.
        for lvl2 in (level + 1)..=htop {
            let istart = self.interval_of(lvl2, s);
            debug_assert_eq!(
                istart,
                self.interval_of(lvl2, target),
                "swap must stay within one ancestor interval"
            );
            if let Some(rec) = self.levels[lvl2].intervals.get_mut(&istart) {
                let had_s = rec.lower_occ.remove(&s);
                debug_assert!(
                    had_s,
                    "slot {s} was occupied by a lower job but unrecorded at level {lvl2}"
                );
                rec.lower_occ.insert(target);
            } else {
                debug_assert!(
                    false,
                    "ancestor interval of an occupied slot must be materialized"
                );
            }
            // Re-point a level-lvl2 assignment at `target`, if any, to `s`.
            // At the hopper's own level this was done above; here we handle
            // windows other than the hopper's.
            if let Some(w2) = self.assignment_holder(lvl2, target) {
                let ws2 = self.levels[lvl2].windows.get_mut(&w2).unwrap();
                ws2.remove_assignment(target);
                ws2.add_assignment(s);
            }
        }

        // Occupancy index: with a hopper both slots stay occupied; without
        // one the job's move frees `s` and claims `target`.
        if hopper.is_none() {
            self.note_occupied(target);
            self.note_freed(s);
        }
        Ok(())
    }

    /// Which level-`level` window (if any) holds an *empty* fulfilled
    /// reservation at `slot`. Scans the chain of enclosing windows.
    fn assignment_holder(&self, level: usize, slot: Slot) -> Option<Window> {
        let ispan = self.ispan(level);
        let lvl = &self.levels[level];
        for span in lvl.chain_spans(ispan) {
            let w = Window::aligned_enclosing(slot, span);
            if let Some(ws) = lvl.windows.get(&w) {
                if let Some(occ) = ws.assigned.get(&slot) {
                    debug_assert!(occ.is_none(), "re-pointed slot {slot} holds a job");
                    return Some(w);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Occupy / vacate: physical placement + displacement + allowance flips
    // ------------------------------------------------------------------

    /// Places `job` (level `level`) physically into `slot`, displacing any
    /// higher-level occupant and updating ancestor allowances. Does *not*
    /// touch `job`'s own window state — the caller does.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn occupy_slot(
        &mut self,
        job: JobId,
        window: Window,
        level: usize,
        slot: Slot,
        from: Option<Slot>,
        moves: &mut Vec<SlotMove>,
        work: &mut VecDeque<Task>,
    ) {
        let displaced = self.slot_jobs.insert(slot, job).map(|h| {
            let hrec = self.jobs[&h];
            debug_assert!(
                hrec.level > level,
                "pecking order: only higher-level jobs are displaced"
            );
            // h loses its slot; its stale (now empty) assignment at `slot`
            // is cleaned by the flip-triggered rebalance below.
            self.levels[hrec.level]
                .windows
                .get_mut(&hrec.window)
                .unwrap()
                .vacate(slot);
            (h, hrec)
        });
        if displaced.is_none() {
            // Newly occupied (a displacement keeps the slot occupied).
            self.note_occupied(slot);
        }
        self.jobs.insert(
            job,
            JobRec {
                window,
                level,
                slot,
            },
        );
        moves.push(SlotMove {
            job,
            from,
            to: Some(slot),
        });

        // Allowance flips: `slot` becomes lower-occupied for levels in
        // (level, htop]; above a displaced occupant's level it already was.
        let htop = displaced
            .as_ref()
            .map(|(_, hrec)| hrec.level)
            .unwrap_or(self.levels.len() - 1);
        for lvl2 in (level + 1)..=htop {
            let istart = self.interval_of(lvl2, slot);
            self.levels[lvl2]
                .intervals
                .entry(istart)
                .or_default()
                .lower_occ
                .insert(slot);
            work.push_back(Task::Rebalance {
                level: lvl2,
                istart,
            });
        }
        if let Some((h, hrec)) = displaced {
            work.push_back(Task::Place {
                job: h,
                window: hrec.window,
                level: hrec.level,
                from: Some(slot),
            });
        }
    }

    /// Removes `job` from `slot` physically and updates ancestor allowances
    /// (the slot re-enters the allowance of every ancestor interval; quota
    /// rises never move jobs, so no rebalances are queued — the new
    /// capacity is claimed lazily).
    pub(crate) fn vacate_physical(
        &mut self,
        job: JobId,
        level: usize,
        slot: Slot,
        moves: &mut Vec<SlotMove>,
    ) {
        let prev = self.slot_jobs.remove(&slot);
        debug_assert_eq!(prev, Some(job));
        moves.push(SlotMove {
            job,
            from: Some(slot),
            to: None,
        });
        for lvl2 in (level + 1)..self.levels.len() {
            let istart = self.interval_of(lvl2, slot);
            if let Some(rec) = self.levels[lvl2].intervals.get_mut(&istart) {
                let had = rec.lower_occ.remove(&slot);
                debug_assert!(had, "occupied slot unrecorded at ancestor level {lvl2}");
            } else {
                debug_assert!(false, "ancestor interval of an occupied slot must exist");
            }
        }
        // Occupancy index update + pruning of now-empty records (covers
        // the `lower_occ` removals above too).
        self.note_freed(slot);
    }

    // ------------------------------------------------------------------
    // PLACE (Figure 1, lines 15–23)
    // ------------------------------------------------------------------

    fn place(
        &mut self,
        job: JobId,
        window: Window,
        level: usize,
        from: Option<Slot>,
        moves: &mut Vec<SlotMove>,
        work: &mut VecDeque<Task>,
    ) -> Result<(), Error> {
        debug_assert!(level >= 1, "level-0 jobs use the base cascade");
        let slot = match self.pick_fulfilled_slot(level, window) {
            Some(s) => s,
            None => self.hunt_capacity(job, level, window, moves)?,
        };
        self.occupy_slot(job, window, level, slot, from, moves, work);
        self.levels[level]
            .windows
            .get_mut(&window)
            .unwrap()
            .occupy(slot, job);
        Ok(())
    }

    /// An empty fulfilled slot of `window`, preferring physically free ones.
    fn pick_fulfilled_slot(&self, level: usize, window: Window) -> Option<Slot> {
        let ws = self.levels[level].windows.get(&window)?;
        ws.empty_assigned
            .iter()
            .copied()
            .find(|s| !self.slot_jobs.contains_key(s))
            .or_else(|| ws.empty_assigned.iter().copied().next())
    }

    /// Materializes quota rises interval by interval (round-robin order —
    /// leftmost intervals hold the most reservations) until `window` gains
    /// an empty fulfilled slot. Lemma 8 guarantees total quota ≥ x+1, so
    /// the hunt succeeds whenever the instance is sufficiently
    /// underallocated.
    fn hunt_capacity(
        &mut self,
        job: JobId,
        level: usize,
        window: Window,
        moves: &mut Vec<SlotMove>,
    ) -> Result<Slot, Error> {
        let ispan = self.ispan(level);
        let ni = self.num_intervals(level, window);
        for pos in 0..ni {
            let istart = window.start() + pos * ispan;
            self.rebalance(level, istart, moves)?;
            if let Some(s) = self.pick_fulfilled_slot(level, window) {
                return Ok(s);
            }
        }
        Err(Error::CapacityExhausted {
            job,
            detail: format!(
                "PLACE: window {window} at level {level} has no fulfilled empty slot \
                 in any of its {ni} intervals (underallocation precondition violated)"
            ),
        })
    }

    // ------------------------------------------------------------------
    // Insert / delete at levels ≥ 1
    // ------------------------------------------------------------------

    fn insert_leveled(
        &mut self,
        job: JobId,
        window: Window,
        level: usize,
        moves: &mut Vec<SlotMove>,
        work: &mut VecDeque<Task>,
    ) -> Result<(), Error> {
        let ispan = self.ispan(level);
        let ni = self.num_intervals(level, window);
        self.levels[level].high_water = self.levels[level].high_water.max(window.span());
        let x_old = {
            let ws = self.levels[level].windows.entry(window).or_default();
            let x_old = ws.x;
            ws.x += 1;
            x_old
        };

        // The two new reservations (Figure 1 step 1–2): quota rises at the
        // two leftmost lightest intervals; rebalancing them may steal a slot
        // from a longer window (≤ 1 MOVE each).
        for pos in positions_gained(x_old, ni) {
            work.push_back(Task::Rebalance {
                level,
                istart: window.start() + pos * ispan,
            });
        }

        // PLACE the new job (Figure 1 step 3) after the reservations settle.
        let attempt = self
            .drain(work, moves)
            .and_then(|()| self.place(job, window, level, None, moves, work))
            .and_then(|()| self.drain(work, moves));
        match attempt {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll the reservation bump back so state stays valid. (If
                // the failure happened after the job was physically placed —
                // possible only when underallocation is violated mid-cascade
                // — the job is withdrawn again.)
                work.clear();
                let mut rollback = VecDeque::new();
                if let Some(rec) = self.jobs.get(&job).copied() {
                    self.levels[level]
                        .windows
                        .get_mut(&window)
                        .unwrap()
                        .vacate(rec.slot);
                    self.vacate_physical(job, level, rec.slot, moves);
                    self.jobs.remove(&job);
                }
                self.levels[level].windows.get_mut(&window).unwrap().x -= 1;
                for pos in positions_lost(x_old + 1, ni) {
                    rollback.push_back(Task::Rebalance {
                        level,
                        istart: window.start() + pos * ispan,
                    });
                }
                self.drain(&mut rollback, moves)?;
                Err(e)
            }
        }
    }

    fn delete_leveled(
        &mut self,
        job: JobId,
        rec: JobRec,
        moves: &mut Vec<SlotMove>,
        work: &mut VecDeque<Task>,
    ) -> Result<(), Error> {
        let (window, level, slot) = (rec.window, rec.level, rec.slot);
        let ispan = self.ispan(level);
        let ni = self.num_intervals(level, window);

        // Physically remove the job; its fulfilled slot stays (for now).
        self.levels[level]
            .windows
            .get_mut(&window)
            .unwrap()
            .vacate(slot);
        self.vacate_physical(job, level, slot, moves);
        self.jobs.remove(&job);

        // Drop the two reservations: quota falls at the two rightmost
        // heaviest intervals (may shed fulfilled slots; a shed slot holding
        // a job triggers MOVE). Standing per-interval reservations remain
        // even at x = 0 (Figure 1 line 1).
        let x_old = self.levels[level].windows[&window].x;
        self.levels[level].windows.get_mut(&window).unwrap().x -= 1;
        for pos in positions_lost(x_old, ni) {
            work.push_back(Task::Rebalance {
                level,
                istart: window.start() + pos * ispan,
            });
        }
        self.drain(work, moves)
    }

    // ------------------------------------------------------------------
    // Aborted-cascade recovery
    // ------------------------------------------------------------------

    /// Restores `jobs`/`slot_jobs` consistency after an aborted
    /// displacement cascade.
    ///
    /// A request rejected *mid-cascade* (possible only when the
    /// underallocation precondition is violated) can leave one displaced
    /// job without a slot: its PLACE either failed or was still queued
    /// when the worklist was cleared. At most one PLACE is ever in flight
    /// or pending, so at most one job is orphaned per abort. The orphan
    /// is re-placed through the ordinary PLACE machinery — the withdrawn
    /// request released the capacity it had claimed — and if even that
    /// fails the schedule is rebuilt from scratch. A rejected request
    /// must never corrupt state: the engine keeps serving after
    /// rejections.
    ///
    /// O(1) when nothing is orphaned (one length probe), which is every
    /// path that matters.
    pub(crate) fn recover_orphans(&mut self, moves: &mut Vec<SlotMove>) {
        if self.jobs.len() == self.slot_jobs.len() {
            return;
        }
        let orphans: Vec<(JobId, JobRec)> = self
            .jobs
            .iter()
            .filter(|(id, rec)| self.slot_jobs.get(&rec.slot) != Some(id))
            .map(|(&id, &rec)| (id, rec))
            .collect();
        for (id, rec) in orphans {
            debug_assert!(rec.level >= 1, "base-cascade rollback is exact");
            let mut work = VecDeque::new();
            let replaced = self
                .place(id, rec.window, rec.level, Some(rec.slot), moves, &mut work)
                .and_then(|()| self.drain(&mut work, moves));
            if replaced.is_err() {
                self.rebuild_from_active();
                return;
            }
        }
    }

    /// Last-resort consistency restore: rebuilds the whole schedule from
    /// the active set, span-sorted (shorter windows first never displace
    /// anything). Only reachable when an orphan could not be re-placed —
    /// i.e. under a doubly violated underallocation precondition. Jobs
    /// the rebuild cannot place (the instance is over-packed beyond what
    /// the reservation machinery tolerates) are dropped rather than kept
    /// in an inconsistent schedule.
    fn rebuild_from_active(&mut self) {
        let mut jobs: Vec<(JobId, Window)> = self
            .jobs
            .iter()
            .map(|(&id, rec)| (id, rec.window))
            .collect();
        jobs.sort_by_key(|&(id, w)| (w.span(), w.start(), id));
        let mut fresh = ReservationScheduler::with_tower(self.tower.clone());
        for (level, lvl) in self.levels.iter().enumerate() {
            // Preserve high-water marks: standing-reservation reach only
            // ever grows, and keeping it avoids quota discontinuities.
            fresh.levels[level].high_water = lvl.high_water;
        }
        for &(id, w) in &jobs {
            let _ = fresh.insert(id, w);
        }
        *self = fresh;
    }

    /// Count of physically occupied slots (for tests).
    pub fn occupied_slots(&self) -> usize {
        self.slot_jobs.len()
    }

    /// Number of window states currently held (for memory tests).
    pub fn window_states(&self) -> usize {
        self.levels.iter().map(|l| l.windows.len()).sum()
    }

    /// Reclaims memory: drops the state of every window with no jobs,
    /// releasing its standing-reservation slots.
    ///
    /// Safe because the running invariant only requires assignments to
    /// never *exceed* quotas: un-backing an empty window's standing
    /// reservations is a lazy rise waiting to be re-claimed (by a later
    /// rebalance or hunt), and the freed slots can only help other
    /// windows. Call this at quiet points; cost is `O(state size)`.
    pub fn compact(&mut self) {
        for level in self.levels.iter_mut() {
            level.windows.retain(|_, ws| ws.x > 0);
        }
    }
}

impl Default for ReservationScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleMachineReallocator for ReservationScheduler {
    fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error> {
        if self.jobs.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        if !window.is_aligned() {
            return Err(Error::UnalignedWindow(window));
        }
        if window.end() > MAX_TIME {
            return Err(Error::UnsupportedJob {
                job: id,
                detail: format!("window end {} exceeds MAX_TIME 2^63", window.end()),
            });
        }
        let level = self.tower.level_of(window.span());
        let mut moves = Vec::new();
        // Reuse the pooled worklist (failed cascades may leave tasks
        // behind; clear before restoring).
        let mut work = std::mem::take(&mut self.scratch.work);
        debug_assert!(work.is_empty());
        let result = if level == 0 {
            self.insert_base(id, window, &mut moves, &mut work)
                .and_then(|()| self.drain(&mut work, &mut moves))
        } else {
            self.insert_leveled(id, window, level, &mut moves, &mut work)
        };
        work.clear();
        self.scratch.work = work;
        if result.is_err() {
            // A mid-cascade rejection may have orphaned one displaced
            // job; restore consistency before surfacing the error.
            self.recover_orphans(&mut moves);
        }
        result.map(|()| moves)
    }

    fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error> {
        let rec = *self.jobs.get(&id).ok_or(Error::UnknownJob(id))?;
        let mut moves = Vec::new();
        let mut work = std::mem::take(&mut self.scratch.work);
        debug_assert!(work.is_empty());
        let result = if rec.level == 0 {
            self.delete_base(id, rec, &mut moves);
            self.drain(&mut work, &mut moves)
        } else {
            self.delete_leveled(id, rec, &mut moves, &mut work)
        };
        work.clear();
        self.scratch.work = work;
        if result.is_err() {
            self.recover_orphans(&mut moves);
        }
        result.map(|()| moves)
    }

    fn slot_of(&self, id: JobId) -> Option<Slot> {
        self.jobs.get(&id).map(|r| r.slot)
    }

    fn assignments(&self) -> Vec<(JobId, Slot)> {
        self.jobs.iter().map(|(&id, r)| (id, r.slot)).collect()
    }

    fn active_count(&self) -> usize {
        self.jobs.len()
    }

    fn name(&self) -> &'static str {
        "reservation"
    }
}
