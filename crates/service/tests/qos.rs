//! End-to-end serving-tier proofs over real TCP:
//!
//! * protocol round trips (place/remove/window/metrics) through the
//!   workloads client;
//! * typed shedding — `overloaded <retry_after_ms>` on both the
//!   admission cap and a tenant's rate limit, with the connection
//!   surviving every shed;
//! * per-tenant rate limits honored within ±10% under sustained load;
//! * an online `rebalance()` racing mixed-tenant hotspot traffic with
//!   zero admitted requests lost;
//! * per-tenant p50/p95/p99 service times scrapeable over a live
//!   `ObsServer` during the run;
//! * silent clients reaped by the handler read timeout.

use realloc_engine::{BackendKind, Engine, EngineConfig, TenantId};
use realloc_service::{QosConfig, RateLimit, ServiceConfig, ServiceServer};
use realloc_telemetry::{fetch_metrics, parse_sample, ObsServer, Telemetry};
use realloc_workloads::driver::{drive_feed, QosClient, QosResponse};
use realloc_workloads::scenarios::{hotspot, HOTSPOT_WHALE};
use std::time::{Duration, Instant};

fn engine(shards: usize) -> Engine {
    Engine::new(EngineConfig {
        shards,
        machines_per_shard: 4,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    })
}

fn bind(config: ServiceConfig, telemetry: &Telemetry) -> ServiceServer {
    ServiceServer::bind("127.0.0.1:0", engine(4), config, telemetry).expect("bind service")
}

#[test]
fn protocol_round_trips_through_the_client() {
    let t = Telemetry::new();
    let server = bind(ServiceConfig::default(), &t);
    let mut client = QosClient::connect(server.addr()).unwrap();

    // Place: the reply carries the tenant-namespaced global id.
    let global = match client.place(3, 7, 10, 14).unwrap() {
        QosResponse::Placed(g) => g,
        other => panic!("place must be admitted: {other:?}"),
    };
    assert_eq!(global >> 48, 3, "global id carries the tenant");

    assert_eq!(client.window(3, 7).unwrap(), QosResponse::Window(10, 14));
    // Another tenant cannot see it: ids are tenant-scoped.
    assert_eq!(client.window(4, 7).unwrap(), QosResponse::WindowNone);

    match client.metrics().unwrap() {
        QosResponse::Metrics {
            requests, active, ..
        } => {
            assert_eq!(requests, 1);
            assert_eq!(active, 1);
        }
        other => panic!("metrics must answer: {other:?}"),
    }

    assert_eq!(client.remove(3, 7).unwrap(), QosResponse::Removed(global));
    assert_eq!(client.window(3, 7).unwrap(), QosResponse::WindowNone);

    // Engine rejections come back as typed refusals, not hangs: a
    // delete of a job that never existed.
    match client.remove(3, 99).unwrap() {
        QosResponse::Refused(detail) => {
            assert!(detail.contains("unknown"), "got: {detail}")
        }
        other => panic!("bad delete must be refused: {other:?}"),
    }
    // Tenant 0 is reserved.
    match client.place(0, 1, 0, 4).unwrap() {
        QosResponse::Refused(detail) => {
            assert!(detail.to_lowercase().contains("reserved"), "got: {detail}")
        }
        other => panic!("tenant 0 must be refused: {other:?}"),
    }
    // Garbage is an err reply on a healthy connection.
    match client.call("frobnicate 1 2 3").unwrap() {
        QosResponse::Refused(detail) => {
            assert!(detail.contains("unknown command"), "got: {detail}")
        }
        other => panic!("garbage must be refused: {other:?}"),
    }
    // The connection survived every refusal.
    assert!(matches!(
        client.metrics().unwrap(),
        QosResponse::Metrics { .. }
    ));
}

#[test]
fn the_admission_cap_sheds_typed_and_the_connection_survives() {
    let t = Telemetry::new();
    let server = bind(
        ServiceConfig {
            qos: QosConfig {
                admit_cap: 0, // shed every mutation
                retry_after: Duration::from_millis(250),
                ..QosConfig::default()
            },
            ..ServiceConfig::default()
        },
        &t,
    );
    let mut client = QosClient::connect(server.addr()).unwrap();

    for id in 0..10 {
        match client.place(1, id, 0, 4).unwrap() {
            QosResponse::Overloaded { retry_after_ms } => {
                assert_eq!(retry_after_ms, 250, "the configured hint is surfaced")
            }
            other => panic!("a full server must shed typed: {other:?}"),
        }
    }
    // Reads are never shed — the connection is alive and serving.
    assert_eq!(client.window(1, 0).unwrap(), QosResponse::WindowNone);
    match client.metrics().unwrap() {
        QosResponse::Metrics { requests, .. } => {
            assert_eq!(requests, 0, "nothing reached the engine")
        }
        other => panic!("metrics must answer: {other:?}"),
    }
    // The sheds are countable.
    assert_eq!(t.counter_value("service_shed_total"), Some(10));
}

#[test]
fn per_tenant_rate_limits_hold_within_ten_percent() {
    let t = Telemetry::new();
    let server = bind(
        ServiceConfig {
            qos: QosConfig {
                // Tenant 1 metered tight; tenant 2 unmetered.
                default_limit: None,
                tenant_limits: vec![(
                    1,
                    Some(RateLimit {
                        rate_per_sec: 200,
                        burst: 10,
                    }),
                )],
                ..QosConfig::default()
            },
            ..ServiceConfig::default()
        },
        &t,
    );
    let mut client = QosClient::connect(server.addr()).unwrap();

    // Hammer tenant 1 for a fixed wall-clock span, as fast as the
    // round trips allow; tenant 2 rides along unmetered.
    let span = Duration::from_millis(500);
    let started = Instant::now();
    let (mut admitted, mut shed, mut sent) = (0u64, 0u64, 0u64);
    let mut id = 0u64;
    while started.elapsed() < span {
        id += 1;
        sent += 1;
        // Disjoint windows per id so engine capacity never interferes
        // with the QoS measurement.
        let (start, end) = (id * 4, id * 4 + 4);
        match client.place(1, id, start, end).unwrap() {
            QosResponse::Placed(_) => admitted += 1,
            QosResponse::Overloaded { retry_after_ms } => {
                shed += 1;
                assert!(retry_after_ms >= 1, "rate sheds carry a real hint");
            }
            other => panic!("unexpected: {other:?}"),
        }
        match client.place(2, id, start, end).unwrap() {
            QosResponse::Placed(_) => {}
            other => panic!("unmetered tenant must always admit: {other:?}"),
        }
    }
    let elapsed = started.elapsed();
    assert!(shed > 0, "the load exceeded the limit ({sent} sent)");
    // Entitlement over the measured span: burst + rate × elapsed.
    let entitled = 10.0 + 200.0 * elapsed.as_secs_f64();
    let ratio = admitted as f64 / entitled;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "admitted {admitted} vs entitled {entitled:.1} (ratio {ratio:.3}, {sent} sent in {elapsed:?})"
    );
    // Per-tenant counters saw the same split.
    assert_eq!(
        t.counter_value(&realloc_telemetry::labeled(
            "service_admitted_total",
            "tenant",
            1
        )),
        Some(admitted)
    );
    assert_eq!(
        t.counter_value(&realloc_telemetry::labeled(
            "service_shed_total",
            "tenant",
            1
        )),
        Some(shed)
    );
}

/// The acceptance scenario: mixed-tenant hotspot load with a whale, an
/// online `rebalance()` mid-run, per-tenant quantiles scraped live over
/// the ObsServer — and zero admitted requests lost.
#[test]
fn hotspot_load_survives_an_online_rebalance_with_quantiles_scrapeable() {
    let t = Telemetry::new();
    let server = bind(ServiceConfig::default(), &t);
    let obs = ObsServer::bind("127.0.0.1:0", t.clone()).unwrap();
    let addr = server.addr();

    // 3 dwarf tenants + the whale, driven from a client thread.
    let driver = std::thread::spawn(move || {
        let mut feed = hotspot(3, 42);
        drive_feed(addr, &mut feed, 6, 40, 16).expect("drive")
    });

    // Rebalance while the traffic flows: the whale (well over half the
    // active jobs) gets isolated onto its own shard. Early in the run
    // it may not dominate yet (`Ok(None)`), so poll until it does.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut rebalanced = None;
    while rebalanced.is_none() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
        let engine = server.engine();
        let mut engine = engine.lock().unwrap();
        rebalanced = engine.rebalance().expect("rebalance under load");
    }

    // Scrape per-tenant quantiles over the ObsServer *during* the run.
    let text = fetch_metrics(obs.addr()).unwrap();
    let whale = HOTSPOT_WHALE;
    let p99 = parse_sample(
        &text,
        &format!("service_request_nanos{{tenant=\"{whale}\",quantile=\"0.99\"}}"),
    );
    let count = parse_sample(
        &text,
        &format!("service_request_nanos_count{{tenant=\"{whale}\"}}"),
    );
    assert!(
        p99.is_some() && count.unwrap_or(0) > 0,
        "whale p99 must be scrapeable mid-run:\n{text}"
    );

    let stats = driver.join().expect("driver thread");
    // No admitted request was lost or refused: the churn feed only
    // produces valid sequences, so with no rate limits every command
    // must come back `ok`.
    for (tenant, s) in &stats {
        assert!(s.sent > 0, "tenant {tenant} drove traffic");
        assert_eq!(
            (s.admitted, s.shed, s.refused),
            (s.sent, 0, 0),
            "tenant {tenant}: every sent command admitted (stats {s:?})"
        );
    }

    // The engine came through consistent, with the whale actually
    // isolated by the mid-run rebalance.
    let engine = server.engine();
    let engine = engine.lock().unwrap();
    engine.validate().expect("engine valid after the run");
    assert!(
        rebalanced.is_some(),
        "the whale dominated, so rebalance() must have acted"
    );
    let whale_active = engine.active_count_for(TenantId(whale));
    assert!(whale_active > 0, "whale jobs are live");
    // Dwarf quantiles are scrapeable too (all tenants instrumented).
    let text = fetch_metrics(obs.addr()).unwrap();
    for tenant in [2u16, 3, 4] {
        let count = parse_sample(
            &text,
            &format!("service_request_nanos_count{{tenant=\"{tenant}\"}}"),
        );
        assert!(count.unwrap_or(0) > 0, "tenant {tenant} histogram missing");
    }
}

#[test]
fn a_silent_service_client_is_reaped_by_the_read_timeout() {
    use std::io::Read as _;
    use std::net::TcpStream;

    let t = realloc_telemetry::disabled();
    let server = bind(
        ServiceConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..ServiceConfig::default()
        },
        &t,
    );

    let mut silent = TcpStream::connect(server.addr()).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    let n = silent.read(&mut buf).expect("server closes, not stalls");
    assert_eq!(n, 0, "expected EOF from the reaped handler");

    // The server is unharmed.
    let mut client = QosClient::connect(server.addr()).unwrap();
    assert!(matches!(
        client.place(1, 1, 0, 4).unwrap(),
        QosResponse::Placed(_)
    ));
}

#[test]
fn pipelined_commands_answer_in_order() {
    let t = realloc_telemetry::disabled();
    let server = bind(ServiceConfig::default(), &t);
    let mut client = QosClient::connect(server.addr()).unwrap();

    // A pipelined burst: 20 places, then the matching windows.
    for id in 0..20u64 {
        client
            .send_raw(&format!("place 5 {id} {} {}", id, id + 4))
            .unwrap();
    }
    for id in 0..20u64 {
        match client.recv().unwrap() {
            QosResponse::Placed(g) => assert_eq!(g & 0xffff_ffff, id, "in order"),
            other => panic!("pipelined place {id}: {other:?}"),
        }
    }
    for id in 0..20u64 {
        client.send_raw(&format!("window 5 {id}")).unwrap();
    }
    for id in 0..20u64 {
        assert_eq!(
            client.recv().unwrap(),
            QosResponse::Window(id, id + 4),
            "window {id} in order"
        );
    }
    assert_eq!(client.pending(), 0);
}
