//! # realloc-service
//!
//! The client-facing serving tier: a std-only request/response TCP
//! front-end over the workspace's length-prefixed framing, mapping a
//! four-verb text protocol onto [`realloc_engine::Engine`] with
//! per-tenant QoS in front.
//!
//! * [`proto`] — the wire protocol: `place`/`remove`/`window`/`metrics`
//!   commands, `ok …`/`overloaded …`/`err …` replies, one per frame;
//! * [`qos`] — admission control: per-tenant token buckets, a global
//!   in-service cap, typed shedding with a retry hint (never an
//!   unbounded queue);
//! * [`server`] — the accept loop and per-connection pipelined
//!   batching, in the `ReplicaServer`/`ObsServer` threading shape, with
//!   silent-client reaping and per-tenant service-time telemetry
//!   (`service_request_nanos{tenant="N"}` and friends — scrape them
//!   live over [`realloc_telemetry::ObsServer`]).
//!
//! ```no_run
//! use realloc_engine::{Engine, EngineConfig};
//! use realloc_service::{ServiceConfig, ServiceServer};
//! use realloc_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let server = ServiceServer::bind(
//!     "127.0.0.1:0",
//!     Engine::new(EngineConfig::default()),
//!     ServiceConfig::default(),
//!     &telemetry,
//! )
//! .unwrap();
//! println!("serving on {}", server.addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod qos;
pub mod server;
mod tele;

pub use proto::{Command, Reply};
pub use qos::{AdmitGuard, Qos, QosConfig, RateLimit};
pub use server::{ServiceConfig, ServiceServer};
