//! The serving tier's text protocol: one command per length-prefixed
//! frame in, one reply frame out, in command order.
//!
//! ```text
//! place <tenant> <id> <start> <end>   → ok placed <global> | ok queued <global>
//! remove <tenant> <id>                → ok removed <global> | ok queued <global>
//! window <tenant> <id>                → ok window <start> <end> | ok window none
//! metrics                             → ok metrics requests=… failed=… active=… epoch=… shards=…
//! any, while shedding                 → overloaded <retry_after_ms>
//! any, malformed or rejected         → err <detail>
//! ```
//!
//! Tenants are decimal `u16`s (`0` is reserved by the engine and
//! refused here); ids and window bounds are decimal `u64`s. `queued`
//! means *admitted under a coalescing flush policy*: the request is
//! accepted and will be serviced by a later flush, so its outcome (a
//! rare `duplicate`/`unknown`/`capacity` rejection) surfaces in the
//! engine journal and metrics rather than on this connection.

use realloc_core::{JobId, Request, Window};
use realloc_engine::{Metrics, TenantId};
use std::time::Duration;

/// One parsed client command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Place a job: admit, then `Engine::submit_for` an insert.
    Place {
        /// Requesting tenant.
        tenant: TenantId,
        /// Tenant-scoped job id.
        id: JobId,
        /// Requested window.
        window: Window,
    },
    /// Remove a job: admit, then `Engine::submit_for` a delete.
    Remove {
        /// Requesting tenant.
        tenant: TenantId,
        /// Tenant-scoped job id.
        id: JobId,
    },
    /// Read a job's original window (not rate limited).
    Window {
        /// Requesting tenant.
        tenant: TenantId,
        /// Tenant-scoped job id.
        id: JobId,
    },
    /// Read engine counters (not rate limited, not tenant-scoped).
    Metrics,
}

impl Command {
    /// Parses one command line. Errors are client-facing `err` details.
    pub fn parse(line: &str) -> Result<Command, String> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        fn tenant(s: &str) -> Result<TenantId, String> {
            let t: u16 = s
                .parse()
                .map_err(|_| format!("bad tenant '{s}' (decimal u16)"))?;
            Ok(TenantId(t))
        }
        fn num(s: &str, what: &str) -> Result<u64, String> {
            s.parse()
                .map_err(|_| format!("bad {what} '{s}' (decimal u64)"))
        }
        match fields.as_slice() {
            ["place", t, id, start, end] => {
                let (start, end) = (num(start, "start")?, num(end, "end")?);
                if end <= start {
                    return Err(format!("empty window [{start}, {end})"));
                }
                Ok(Command::Place {
                    tenant: tenant(t)?,
                    id: JobId(num(id, "id")?),
                    window: Window::new(start, end),
                })
            }
            ["remove", t, id] => Ok(Command::Remove {
                tenant: tenant(t)?,
                id: JobId(num(id, "id")?),
            }),
            ["window", t, id] => Ok(Command::Window {
                tenant: tenant(t)?,
                id: JobId(num(id, "id")?),
            }),
            ["metrics"] => Ok(Command::Metrics),
            [] => Err("empty command".to_string()),
            [verb, ..] => Err(format!(
                "unknown command '{verb}' (expected place/remove/window/metrics)"
            )),
        }
    }

    /// The tenant a command is billed to, when it has one.
    pub fn tenant(&self) -> Option<TenantId> {
        match self {
            Command::Place { tenant, .. }
            | Command::Remove { tenant, .. }
            | Command::Window { tenant, .. } => Some(*tenant),
            Command::Metrics => None,
        }
    }

    /// Whether the command mutates the schedule (and is therefore
    /// subject to rate limiting and the admission cap).
    pub fn is_mutation(&self) -> bool {
        matches!(self, Command::Place { .. } | Command::Remove { .. })
    }

    /// The engine request a mutation maps to (tenant-scoped ids; the
    /// engine namespaces them).
    pub fn to_request(&self) -> Option<(TenantId, Request)> {
        match *self {
            Command::Place { tenant, id, window } => Some((tenant, Request::Insert { id, window })),
            Command::Remove { tenant, id } => Some((tenant, Request::Delete { id })),
            _ => None,
        }
    }
}

/// One server reply, formatted onto the wire by [`Reply::to_text`].
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Insert admitted and serviced.
    Placed(JobId),
    /// Delete admitted and serviced.
    Removed(JobId),
    /// Admitted; deferred to a later coalesced flush.
    Queued(JobId),
    /// The job's original window.
    WindowIs(Window),
    /// The job is not active.
    WindowNone,
    /// Engine counters.
    MetricsIs(Metrics),
    /// Shed by QoS; retry after the given backoff.
    Overloaded(Duration),
    /// Refused (parse failure, reserved tenant, engine rejection code).
    Err(String),
}

impl Reply {
    /// The wire text for this reply.
    pub fn to_text(&self) -> String {
        match self {
            Reply::Placed(id) => format!("ok placed {}", id.0),
            Reply::Removed(id) => format!("ok removed {}", id.0),
            Reply::Queued(id) => format!("ok queued {}", id.0),
            Reply::WindowIs(w) => format!("ok window {} {}", w.start(), w.end()),
            Reply::WindowNone => "ok window none".to_string(),
            Reply::MetricsIs(m) => format!(
                "ok metrics requests={} failed={} active={} epoch={} shards={}",
                m.requests,
                m.failed,
                m.active_jobs,
                m.epoch,
                m.shards.len()
            ),
            Reply::Overloaded(d) => format!("overloaded {}", d.as_millis().max(1)),
            Reply::Err(detail) => format!("err {detail}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_and_refuse() {
        assert_eq!(
            Command::parse("place 3 7 10 14"),
            Ok(Command::Place {
                tenant: TenantId(3),
                id: JobId(7),
                window: Window::new(10, 14),
            })
        );
        assert_eq!(
            Command::parse("  remove 3 7  "),
            Ok(Command::Remove {
                tenant: TenantId(3),
                id: JobId(7),
            })
        );
        assert_eq!(
            Command::parse("window 3 7"),
            Ok(Command::Window {
                tenant: TenantId(3),
                id: JobId(7),
            })
        );
        assert_eq!(Command::parse("metrics"), Ok(Command::Metrics));
        assert!(Command::parse("place 3 7 14 10").is_err(), "empty window");
        assert!(
            Command::parse("place 99999999 7 1 2").is_err(),
            "tenant range"
        );
        assert!(Command::parse("bogus").is_err());
        assert!(Command::parse("").is_err());
        assert!(Command::parse("place 1 2").is_err(), "arity");
    }

    #[test]
    fn replies_format() {
        assert_eq!(Reply::Placed(JobId(9)).to_text(), "ok placed 9");
        assert_eq!(Reply::Queued(JobId(9)).to_text(), "ok queued 9");
        assert_eq!(
            Reply::WindowIs(Window::new(10, 14)).to_text(),
            "ok window 10 14"
        );
        assert_eq!(Reply::WindowNone.to_text(), "ok window none");
        assert_eq!(
            Reply::Overloaded(Duration::from_millis(250)).to_text(),
            "overloaded 250"
        );
        // A sub-millisecond backoff still tells the client to wait.
        assert_eq!(
            Reply::Overloaded(Duration::from_micros(10)).to_text(),
            "overloaded 1"
        );
        assert_eq!(Reply::Err("duplicate".into()).to_text(), "err duplicate");
    }
}
