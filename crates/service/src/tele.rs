//! The service's instrument bundle: global handles resolved once at
//! bind time, per-tenant labeled handles resolved once per tenant (the
//! first command a tenant sends pays the registry lookup; every later
//! command reuses the cached handles).
//!
//! # Metric names
//!
//! * `service_connections_total` — connections accepted.
//! * `service_requests_total` — commands served (any verb, any outcome).
//! * `service_shed_total` — commands shed by QoS (also per tenant).
//! * `service_refused_total` — commands refused with `err`.
//! * `service_request_nanos{tenant="N"}` — per-tenant service time,
//!   receipt to response; rendered as a summary, so
//!   `service_request_nanos{tenant="N",quantile="0.99"}` is the
//!   scrapeable p99 (with `0.5`/`0.95` siblings and `_sum`/`_count`/
//!   `_max` companions).
//! * `service_admitted_total{tenant="N"}` — admitted commands.
//! * `service_shed_total{tenant="N"}` — shed commands.

use realloc_telemetry::{labeled, Counter, Histo, Telemetry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cached per-tenant instrument handles.
#[derive(Clone, Debug)]
pub(crate) struct TenantTele {
    pub request_nanos: Histo,
    pub admitted_total: Counter,
    pub shed_total: Counter,
}

/// Service-level instruments; absent on servers without telemetry.
#[derive(Debug)]
pub(crate) struct ServiceTele {
    /// The attached telemetry (clock + registry).
    pub t: Telemetry,
    pub connections_total: Counter,
    pub requests_total: Counter,
    pub shed_total: Counter,
    pub refused_total: Counter,
    tenants: Mutex<HashMap<u16, TenantTele>>,
}

impl ServiceTele {
    /// Resolves the global instruments; `None` when `t` is disabled.
    pub fn build(t: &Telemetry) -> Option<Arc<ServiceTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Arc::new(ServiceTele {
            connections_total: t.counter("service_connections_total"),
            requests_total: t.counter("service_requests_total"),
            shed_total: t.counter("service_shed_total"),
            refused_total: t.counter("service_refused_total"),
            tenants: Mutex::new(HashMap::new()),
            t: t.clone(),
        }))
    }

    /// The cached handle bundle for `tenant`, resolving on first use.
    pub fn tenant(&self, tenant: u16) -> TenantTele {
        let mut map = self.tenants.lock().expect("tenant tele lock");
        map.entry(tenant)
            .or_insert_with(|| TenantTele {
                request_nanos: self
                    .t
                    .histogram(labeled("service_request_nanos", "tenant", tenant)),
                admitted_total: self
                    .t
                    .counter(labeled("service_admitted_total", "tenant", tenant)),
                shed_total: self
                    .t
                    .counter(labeled("service_shed_total", "tenant", tenant)),
            })
            .clone()
    }
}
