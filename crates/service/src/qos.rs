//! Admission control: per-tenant token buckets plus a global
//! in-service cap, shedding with an explicit retry hint instead of
//! queueing unboundedly.
//!
//! # Semantics
//!
//! * **Token buckets** meter *mutating* commands (`place`/`remove`) per
//!   tenant: a bucket refills continuously at
//!   [`RateLimit::rate_per_sec`] tokens per second up to
//!   [`RateLimit::burst`], and each admitted mutation spends one token.
//!   An empty bucket sheds with `retry_after` = the exact time until
//!   one token accrues — clients that honor the hint converge on the
//!   configured rate without coordination. Reads (`window`/`metrics`)
//!   are never metered.
//! * **The admission cap** bounds mutating commands *in service* —
//!   admitted but not yet responded to — across all connections and
//!   tenants. A full server sheds with the configured
//!   [`QosConfig::retry_after`] instead of letting the engine queue
//!   grow without bound. Admissions are RAII: an [`AdmitGuard`]
//!   releases its slot on drop, so a panicking handler can never leak
//!   capacity.
//!
//! Token accounting is integer-only (nano-tokens), on the workspace
//! [`Clock`] — a manual clock makes every admission decision, including
//! the retry hints, deterministic under test.

use realloc_core::clock::Clock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One token, in the nano-token fixed-point scale the buckets use.
const TOKEN: u64 = 1_000_000_000;

/// A per-tenant token-bucket rate limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained admissions per second (must be ≥ 1).
    pub rate_per_sec: u64,
    /// Bucket capacity: mutations admitted instantaneously from idle
    /// (treated as at least 1).
    pub burst: u64,
}

/// QoS policy for a service endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QosConfig {
    /// Rate limit applied to tenants without an explicit entry;
    /// `None` = unmetered.
    pub default_limit: Option<RateLimit>,
    /// Per-tenant overrides; `None` = that tenant is unmetered.
    pub tenant_limits: Vec<(u16, Option<RateLimit>)>,
    /// Cap on mutating commands in service (admitted, not yet
    /// responded) across all connections; `0` sheds every mutation.
    pub admit_cap: usize,
    /// Retry hint attached to cap sheds (bucket sheds compute the
    /// exact refill time instead).
    pub retry_after: Duration,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            default_limit: None,
            tenant_limits: Vec::new(),
            admit_cap: 4096,
            retry_after: Duration::from_millis(100),
        }
    }
}

/// One tenant's bucket: nano-tokens and the last refill instant.
#[derive(Debug)]
struct Bucket {
    nano_tokens: u64,
    refilled_at: u64,
}

/// Shared admission state (one per server, shared by every handler).
#[derive(Debug)]
pub struct Qos {
    config: QosConfig,
    clock: Clock,
    buckets: Mutex<HashMap<u16, Bucket>>,
    in_service: Arc<AtomicUsize>,
}

/// RAII admission slot: holding it counts toward the admission cap;
/// dropping it (after the response is written) releases the slot.
#[derive(Debug)]
pub struct AdmitGuard {
    in_service: Arc<AtomicUsize>,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.in_service.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Qos {
    /// Builds the admission state on `clock` (monotonic in production;
    /// manual under test for deterministic refill arithmetic).
    pub fn new(config: QosConfig, clock: Clock) -> Qos {
        Qos {
            config,
            clock,
            buckets: Mutex::new(HashMap::new()),
            in_service: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The effective limit for `tenant` (explicit entry, else default).
    fn limit_of(&self, tenant: u16) -> Option<RateLimit> {
        self.config
            .tenant_limits
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, l)| *l)
            .unwrap_or(self.config.default_limit)
    }

    /// Admits one mutating command for `tenant`, or sheds with a retry
    /// hint. Checks the global cap first (cheapest), then the tenant's
    /// bucket; a cap shed never spends the tenant's tokens.
    pub fn try_admit(&self, tenant: u16) -> Result<AdmitGuard, Duration> {
        // Reserve a cap slot optimistically; back out on either shed.
        let prev = self.in_service.fetch_add(1, Ordering::SeqCst);
        if prev >= self.config.admit_cap {
            self.in_service.fetch_sub(1, Ordering::SeqCst);
            return Err(self.config.retry_after);
        }
        if let Some(limit) = self.limit_of(tenant) {
            if let Err(wait) = self.spend_token(tenant, limit) {
                self.in_service.fetch_sub(1, Ordering::SeqCst);
                return Err(wait);
            }
        }
        Ok(AdmitGuard {
            in_service: Arc::clone(&self.in_service),
        })
    }

    /// Refills `tenant`'s bucket to now and spends one token, or
    /// reports how long until one accrues.
    fn spend_token(&self, tenant: u16, limit: RateLimit) -> Result<(), Duration> {
        let rate = limit.rate_per_sec.max(1);
        let cap = limit.burst.max(1).saturating_mul(TOKEN);
        let now = self.clock.now_nanos();
        let mut buckets = self.buckets.lock().expect("qos bucket lock");
        let bucket = buckets.entry(tenant).or_insert(Bucket {
            nano_tokens: cap,
            refilled_at: now,
        });
        // Continuous refill: rate tokens/s ≡ rate nano-tokens/nano.
        let elapsed = now.saturating_sub(bucket.refilled_at);
        bucket.nano_tokens = bucket
            .nano_tokens
            .saturating_add(elapsed.saturating_mul(rate))
            .min(cap);
        bucket.refilled_at = now;
        if bucket.nano_tokens >= TOKEN {
            bucket.nano_tokens -= TOKEN;
            Ok(())
        } else {
            let deficit = TOKEN - bucket.nano_tokens;
            Err(Duration::from_nanos(deficit.div_ceil(rate)))
        }
    }

    /// Mutating commands currently in service (cap occupancy).
    pub fn in_service(&self) -> usize {
        self.in_service.load(Ordering::SeqCst)
    }

    /// The configured policy.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qos(config: QosConfig) -> (Qos, Clock) {
        let clock = Clock::manual();
        (Qos::new(config, clock.clone()), clock)
    }

    #[test]
    fn bucket_admits_burst_then_exactly_the_rate() {
        let (qos, clock) = qos(QosConfig {
            default_limit: Some(RateLimit {
                rate_per_sec: 50,
                burst: 5,
            }),
            ..QosConfig::default()
        });

        // The full burst admits from idle.
        for _ in 0..5 {
            qos.try_admit(1).expect("burst admits");
        }
        // The sixth sheds, with the exact one-token refill hint: 1/50 s.
        let wait = qos.try_admit(1).expect_err("empty bucket sheds");
        assert_eq!(wait, Duration::from_millis(20));

        // Over one simulated second at 50/s, exactly 50 admissions —
        // the ±10% SLO holds with zero slack on a deterministic clock.
        let mut admitted = 0;
        for _ in 0..1000 {
            clock.advance(1_000_000); // 1 ms per tick
            if qos.try_admit(1).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 50);
    }

    #[test]
    fn tenants_have_independent_buckets_and_overrides() {
        let (qos, _clock) = qos(QosConfig {
            default_limit: Some(RateLimit {
                rate_per_sec: 10,
                burst: 1,
            }),
            tenant_limits: vec![
                (
                    7,
                    Some(RateLimit {
                        rate_per_sec: 10,
                        burst: 3,
                    }),
                ),
                (8, None),
            ],
            ..QosConfig::default()
        });
        // Default tenant: burst 1.
        assert!(qos.try_admit(1).is_ok());
        assert!(qos.try_admit(1).is_err());
        // Tenant 1 exhausting its bucket does not touch tenant 2's.
        assert!(qos.try_admit(2).is_ok());
        // Override: burst 3.
        for _ in 0..3 {
            assert!(qos.try_admit(7).is_ok());
        }
        assert!(qos.try_admit(7).is_err());
        // Unmetered override: never sheds on rate.
        for _ in 0..100 {
            assert!(qos.try_admit(8).is_ok());
        }
    }

    #[test]
    fn cap_sheds_and_guards_release_on_drop() {
        let (qos, _clock) = qos(QosConfig {
            admit_cap: 2,
            retry_after: Duration::from_millis(250),
            ..QosConfig::default()
        });
        let g1 = qos.try_admit(1).expect("slot 1");
        let g2 = qos.try_admit(2).expect("slot 2");
        assert_eq!(qos.in_service(), 2);
        let wait = qos.try_admit(3).expect_err("cap sheds");
        assert_eq!(wait, Duration::from_millis(250));
        // A cap shed never leaks occupancy.
        assert_eq!(qos.in_service(), 2);
        drop(g1);
        assert_eq!(qos.in_service(), 1);
        qos.try_admit(3).expect("freed slot admits");
        drop(g2);
    }

    #[test]
    fn a_zero_cap_sheds_everything() {
        let (qos, _clock) = qos(QosConfig {
            admit_cap: 0,
            ..QosConfig::default()
        });
        assert!(qos.try_admit(1).is_err());
        assert_eq!(qos.in_service(), 0);
    }

    #[test]
    fn cap_shed_does_not_spend_tokens() {
        let (qos, _clock) = qos(QosConfig {
            default_limit: Some(RateLimit {
                rate_per_sec: 1,
                burst: 1,
            }),
            admit_cap: 1,
            ..QosConfig::default()
        });
        let g = qos.try_admit(1).expect("admits");
        // Cap-shed while the slot is held…
        assert!(qos.try_admit(1).is_err());
        drop(g);
        // …must not have spent the token the bucket no longer has.
        // (The first admit spent the burst; this shed is a rate shed.)
        let wait = qos.try_admit(1).expect_err("rate sheds");
        assert!(wait > Duration::ZERO);
    }
}
