//! The serving loop: a threaded accept loop in the `ReplicaServer` /
//! `ObsServer` shape, per-connection pipelined batching, QoS in front
//! of the engine, one reply frame per command in command order.
//!
//! # Threading
//!
//! [`ServiceServer::bind`] spawns one accept-loop thread; each accepted
//! connection gets a detached handler thread with the configured read
//! timeout (a silent client is reaped, never pinned — the ObsServer
//! lesson applied from day one). Handlers share the engine behind one
//! mutex: a batch holds the lock for its submits plus one flush, so
//! client batches interleave with embedder calls (`rebalance`,
//! `resize`, checkpoints) at batch granularity and a rebalance never
//! tears an admitted batch.
//!
//! # Batching
//!
//! A handler blocks for the first command frame, then drains whatever
//! complete frames are already buffered (up to
//! [`ServiceConfig::max_batch`]) into one engine flush — pipelining
//! clients get one lock acquisition and one flush per wire burst, the
//! same shape as the cluster's replication batches.

use crate::proto::{Command, Reply};
use crate::qos::{AdmitGuard, Qos};
use crate::tele::ServiceTele;
use realloc_core::clock::Clock;
use realloc_core::textio::{read_frame, write_frame};
use realloc_core::Request;
use realloc_engine::{Engine, FlushMode, TenantId};
use realloc_telemetry::{Severity, Telemetry, TraceCtx};
use std::io::{BufRead as _, BufReader, BufWriter, ErrorKind, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on one command frame (a short text line).
const MAX_COMMAND_BYTES: u32 = 4096;

/// Service endpoint policy.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Admission policy (rate limits, cap, shed hint).
    pub qos: crate::qos::QosConfig,
    /// Handler read timeout: how long a connection may sit silent
    /// before it is reaped. `None` disables reaping (trusted clients).
    pub read_timeout: Option<Duration>,
    /// Most commands serviced under one engine lock hold (one flush);
    /// frames beyond this form the next batch. Treated as at least 1.
    pub max_batch: usize,
    /// How batches are flushed: [`FlushMode::Immediate`] answers every
    /// mutation with its outcome; [`FlushMode::Coalesced`] may answer
    /// `ok queued …` and service later; [`FlushMode::Durable`] group-
    /// commits to the attached store before answering.
    pub flush: FlushMode,
    /// Causal-trace sampling: every Nth batch that admits a mutation
    /// mints a [`realloc_telemetry::TraceCtx`] at receipt, threads it
    /// through the engine flush (and, when the engine is replicated,
    /// onto the shipped frame as an out-of-band annotation), and
    /// suffixes the admitted replies with ` trace <id>` so the client
    /// can correlate its request with every node's trace ring. `0`
    /// disables tracing (the default); `1` traces every batch. Needs
    /// enabled telemetry to have any effect.
    pub trace_sample_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            qos: crate::qos::QosConfig::default(),
            read_timeout: Some(Duration::from_secs(60)),
            max_batch: 128,
            flush: FlushMode::Immediate,
            trace_sample_every: 0,
        }
    }
}

/// What the handler shares across connections.
struct Shared {
    engine: Arc<Mutex<Engine>>,
    qos: Qos,
    tele: Option<Arc<ServiceTele>>,
    clock: Clock,
    config: ServiceConfig,
    /// Monotone batch counter driving trace sampling (and salting the
    /// minted ids, so two batches in the same nanosecond still differ).
    trace_seq: AtomicU64,
}

/// The serving front-end: owns the accept loop and the shared engine.
pub struct ServiceServer {
    engine: Arc<Mutex<Engine>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServiceServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `engine` under
    /// `config`. Service instruments register in `telemetry` when it is
    /// enabled (pair with an `ObsServer` on the same registry to scrape
    /// per-tenant latencies during a run).
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Engine,
        config: ServiceConfig,
        telemetry: &Telemetry,
    ) -> std::io::Result<ServiceServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Mutex::new(engine));
        let stop = Arc::new(AtomicBool::new(false));
        let clock = telemetry.clock().unwrap_or_else(Clock::monotonic);
        let shared = Arc::new(Shared {
            engine: Arc::clone(&engine),
            qos: Qos::new(config.qos.clone(), clock.clone()),
            tele: ServiceTele::build(telemetry),
            clock,
            config,
            trace_seq: AtomicU64::new(0),
        });
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("service-accept-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Replies are small; Nagle + delayed-ACK would add
                    // an RTT timer to every pipelined burst.
                    stream.set_nodelay(true).ok();
                    // Reap silent clients (the ObsServer bug, fixed
                    // here by construction).
                    let _ = stream.set_read_timeout(shared.config.read_timeout);
                    if let Some(tele) = &shared.tele {
                        tele.connections_total.inc();
                    }
                    let conn_shared = Arc::clone(&shared);
                    // Detached: handlers exit on disconnect or timeout.
                    let _ = std::thread::Builder::new()
                        .name("service-conn".to_string())
                        .spawn(move || serve_connection(stream, conn_shared));
                }
            })?;
        Ok(ServiceServer {
            engine,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine — lock it for embedder operations
    /// (`rebalance`, `resize`, `checkpoint`, validation). Handlers hold
    /// the lock per batch, so embedder calls interleave at batch
    /// granularity.
    pub fn engine(&self) -> Arc<Mutex<Engine>> {
        Arc::clone(&self.engine)
    }

    /// Stops the accept loop and joins it. Live connection handlers
    /// finish their current peers' streams and exit on disconnect or
    /// read timeout.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServiceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// What the handler found probing for more buffered work.
enum Pending {
    Frame(Vec<u8>),
    NotYet,
    Gone,
}

/// Consumes the next command frame **only if it is already fully
/// buffered** (or lands on a single non-blocking refill); never blocks
/// and never leaves the stream mid-frame (the `ReplicaServer` probe,
/// same invariants).
fn next_pending_frame(reader: &mut BufReader<TcpStream>) -> Pending {
    loop {
        let buf = reader.buffer();
        if buf.len() >= 4 {
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
            if len > MAX_COMMAND_BYTES || (buf.len() - 4) < len as usize {
                return Pending::NotYet;
            }
            return match read_frame(reader, MAX_COMMAND_BYTES) {
                Ok(Some(p)) => Pending::Frame(p),
                Ok(None) | Err(_) => Pending::Gone,
            };
        }
        if !buf.is_empty() {
            return Pending::NotYet; // partial length prefix
        }
        if reader.get_ref().set_nonblocking(true).is_err() {
            return Pending::Gone;
        }
        let refill = reader.fill_buf().map(|b| b.len());
        if reader.get_ref().set_nonblocking(false).is_err() {
            return Pending::Gone;
        }
        match refill {
            Ok(0) => return Pending::Gone,
            Ok(_) => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Pending::NotYet
            }
            Err(_) => return Pending::Gone,
        }
    }
}

/// One connection: block for a command (bounded by the read timeout),
/// batch up whatever else is buffered, service the batch under one
/// engine lock hold, reply in command order.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        // Block for the first frame of a batch; a timeout here is the
        // reap path for a silent client.
        let first = match read_frame(&mut reader, MAX_COMMAND_BYTES) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let mut frames = vec![first];
        let mut gone = false;
        while frames.len() < shared.config.max_batch.max(1) {
            match next_pending_frame(&mut reader) {
                Pending::Frame(p) => frames.push(p),
                Pending::NotYet => break,
                Pending::Gone => {
                    gone = true;
                    break;
                }
            }
        }
        // Serve what we have even if the peer is mid-disconnect: the
        // writes below fail harmlessly if it is truly gone.
        if serve_batch(&frames, &mut writer, &shared).is_err() || gone {
            return;
        }
    }
}

/// One admitted mutation awaiting its flush outcome.
struct InFlight {
    /// Index into the batch's reply vector.
    slot: usize,
    /// The namespaced request as the engine journals it.
    request: Request,
    _guard: AdmitGuard,
}

/// Services one batch of command frames: QoS, submits + one flush
/// under the engine lock, failure mapping, replies in order.
fn serve_batch(
    frames: &[Vec<u8>],
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) -> std::io::Result<()> {
    let t0 = shared.clock.now_nanos();
    let mut replies: Vec<Option<Reply>> = vec![None; frames.len()];
    let mut commands: Vec<Option<Command>> = Vec::with_capacity(frames.len());
    for (i, payload) in frames.iter().enumerate() {
        match std::str::from_utf8(payload)
            .map_err(|e| format!("command is not UTF-8: {e}"))
            .and_then(Command::parse)
        {
            Ok(c) => commands.push(Some(c)),
            Err(detail) => {
                replies[i] = Some(Reply::Err(detail));
                commands.push(None);
            }
        }
    }

    // QoS in front of the engine: admit or shed every mutation before
    // touching the lock, so a shed burst costs no engine time at all.
    let mut to_submit: Vec<(usize, TenantId, Request, AdmitGuard)> = Vec::new();
    let mut pending_reads: Vec<(usize, Command)> = Vec::new();
    for (i, cmd) in commands.iter().enumerate() {
        let Some(cmd) = cmd else { continue };
        if cmd.is_mutation() {
            let (tenant, request) = cmd.to_request().expect("mutations map to requests");
            match shared.qos.try_admit(tenant.0) {
                Ok(guard) => to_submit.push((i, tenant, request, guard)),
                Err(retry_after) => replies[i] = Some(Reply::Overloaded(retry_after)),
            }
        } else {
            pending_reads.push((i, *cmd));
        }
    }

    // Mint the causal trace at receipt: every Nth batch that admits at
    // least one mutation gets a sampled context, recorded here (receipt
    // and admission outcome) and threaded through the flush as batch
    // metadata — the same id later shows up on the engine's flush/fsync
    // spans, the shipped replication frame, the replicas' apply events,
    // and the client's annotated replies.
    let trace = match &shared.tele {
        Some(tele) if shared.config.trace_sample_every > 0 && !to_submit.is_empty() => {
            let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed);
            seq.is_multiple_of(shared.config.trace_sample_every)
                .then(|| {
                    let tc = TraceCtx::mint(t0, seq);
                    tele.t
                        .point_in(tc, Severity::Debug, "receipt", frames.len() as u64, t0);
                    let shed = replies
                        .iter()
                        .filter(|r| matches!(r, Some(Reply::Overloaded(_))))
                        .count();
                    tele.t.point_in(
                        tc,
                        Severity::Debug,
                        "admit",
                        to_submit.len() as u64,
                        shed as u64,
                    );
                    tc
                })
        }
        _ => None,
    };

    let mut admitted: Vec<InFlight> = Vec::new();
    {
        let mut engine = match shared.engine.lock() {
            Ok(g) => g,
            Err(_) => return Err(std::io::Error::other("engine lock poisoned")),
        };
        for (i, tenant, request, guard) in to_submit {
            match engine.submit_for(tenant, request) {
                Ok(global) => {
                    // Provisional: refined by the flush outcome.
                    replies[i] = Some(match request {
                        Request::Insert { .. } => Reply::Placed(global),
                        Request::Delete { .. } => Reply::Removed(global),
                    });
                    let namespaced = match request {
                        Request::Insert { window, .. } => Request::Insert { id: global, window },
                        Request::Delete { .. } => Request::Delete { id: global },
                    };
                    admitted.push(InFlight {
                        slot: i,
                        request: namespaced,
                        _guard: guard,
                    });
                }
                Err(e) => replies[i] = Some(Reply::Err(e.to_string())),
            }
        }

        if !admitted.is_empty() {
            match engine.flush_batch_traced(shared.config.flush, trace) {
                Ok(Some(report)) => {
                    // Map this batch's failures back onto their
                    // commands: first unconsumed failure matching the
                    // namespaced request, in submission order. Failures
                    // of *earlier* coalesced batches (already answered
                    // `queued`) stay unmatched by construction — their
                    // requests are not in this `admitted` set.
                    let mut consumed = vec![false; report.failures.len()];
                    for inflight in &admitted {
                        let hit = report
                            .failures
                            .iter()
                            .enumerate()
                            .find(|(j, (_, req, _))| !consumed[*j] && *req == inflight.request);
                        if let Some((j, (_, _, code))) = hit {
                            consumed[j] = true;
                            replies[inflight.slot] = Some(Reply::Err(code.as_str().to_string()));
                        }
                    }
                }
                Ok(None) => {
                    // Deferred by coalescing: accepted, serviced later.
                    for inflight in &admitted {
                        if let Some(Reply::Placed(id) | Reply::Removed(id)) = replies[inflight.slot]
                        {
                            replies[inflight.slot] = Some(Reply::Queued(id));
                        }
                    }
                }
                Err(sink_error) => {
                    // A durable flush failed: the in-memory flush still
                    // happened, but durability was promised and not
                    // delivered — every admitted mutation is refused.
                    for inflight in &admitted {
                        replies[inflight.slot] =
                            Some(Reply::Err(format!("durability: {sink_error}")));
                    }
                }
            }
        }

        // Reads under the same lock hold see the batch they rode with.
        for (i, cmd) in &pending_reads {
            replies[*i] = Some(match cmd {
                Command::Window { tenant, id } => match engine.window_of_for(*tenant, *id) {
                    Ok(Some(w)) => Reply::WindowIs(w),
                    Ok(None) => Reply::WindowNone,
                    Err(e) => Reply::Err(e.to_string()),
                },
                Command::Metrics => Reply::MetricsIs(engine.metrics()),
                _ => Reply::Err("unreachable read".to_string()),
            });
        }
    } // engine lock released; admission guards still held until replied

    // Replies in command order, one writer flush for the whole batch.
    // A traced batch suffixes its admitted mutations' replies with
    // ` trace <id>` — clients correlate, untraced replies are untouched.
    for (i, reply) in replies.iter().enumerate() {
        let Some(reply) = reply else { continue };
        let mut text = reply.to_text();
        if let Some(tc) = trace {
            if matches!(
                reply,
                Reply::Placed(_) | Reply::Removed(_) | Reply::Queued(_)
            ) && admitted.iter().any(|f| f.slot == i)
            {
                use std::fmt::Write as _;
                write!(text, " trace {}", tc.id).expect("string write");
            }
        }
        write_frame(writer, text.as_bytes())?;
    }
    writer.flush()?;

    // Bookkeeping after the bytes are out: service time is
    // receipt-to-response, and guards release only now (the admission
    // cap covers a command until its reply ships).
    if let Some(tele) = &shared.tele {
        let elapsed = shared.clock.now_nanos().saturating_sub(t0);
        tele.requests_total.add(frames.len() as u64);
        for (i, cmd) in commands.iter().enumerate() {
            let Some(cmd) = cmd else {
                tele.refused_total.inc();
                continue;
            };
            let Some(reply) = &replies[i] else { continue };
            if let Some(tenant) = cmd.tenant() {
                let tt = tele.tenant(tenant.0);
                tt.request_nanos.record(elapsed);
                match reply {
                    Reply::Overloaded(_) => {
                        tt.shed_total.inc();
                        tele.shed_total.inc();
                    }
                    Reply::Err(_) => tele.refused_total.inc(),
                    _ => tt.admitted_total.inc(),
                }
            }
        }
    }
    drop(admitted);
    Ok(())
}
