//! Checkpoint / recovery properties: snapshot round-trip equivalence for
//! every backend, O(tail) recovery vs. full genesis replay, segment
//! truncation bounds, and graceful journal parsing on malformed input.

use proptest::prelude::*;
use realloc_core::{Request, RequestSeq, Restorable};
use realloc_engine::{BackendKind, Engine, EngineConfig, Journal, RecoverError, ReplayError};
use realloc_workloads::{ChurnConfig, ChurnGenerator};

const ALL_BACKENDS: [BackendKind; 6] = [
    BackendKind::Reservation,
    BackendKind::TheoremOne { gamma: 8 },
    BackendKind::Deamortized { gamma: 8 },
    BackendKind::Naive,
    BackendKind::Edf,
    BackendKind::Llf,
];

fn config(shards: usize, backend: BackendKind) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend,
        parallel: false,
        journal: true,
        ..EngineConfig::default()
    }
}

/// Aligned churn with spans ≥ 4 so every backend (including deamortized,
/// which needs spans ≥ 2) accepts the stream shape.
fn churn(seed: u64, shards: usize, len: usize) -> RequestSeq {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: shards,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![4, 16, 64],
            target_active: 32 * shards,
            insert_bias: 0.6,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len)
}

fn ingest(engine: &mut Engine, requests: &[Request], batch: usize) {
    for chunk in requests.chunks(batch) {
        for &r in chunk {
            engine.submit(r);
        }
        engine.flush();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract, per backend: `restore(snapshot(s))`
    /// followed by a churn suffix produces byte-identical journal
    /// records (and placements, and telemetry) vs. the uninterrupted
    /// engine.
    #[test]
    fn snapshot_restore_is_behaviorally_invisible(seed in 0u64..200) {
        for kind in ALL_BACKENDS {
            let seq = churn(seed, 4, 360);
            let (prefix, suffix) = seq.requests().split_at(180);

            let mut a = Engine::new(config(4, kind));
            ingest(&mut a, prefix, 64);
            let recorded_prefix = a.journal().unwrap().event_count();

            let text = a.snapshot_text();
            let mut b = Engine::restore_snapshot(&text)
                .unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));
            prop_assert_eq!(b.placements(), a.placements(), "{} prefix state", kind);
            prop_assert_eq!(b.metrics(), a.metrics(), "{} prefix metrics", kind);
            prop_assert_eq!(b.batches(), a.batches(), "{} batches", kind);

            ingest(&mut a, suffix, 64);
            ingest(&mut b, suffix, 64);

            // The restored engine's journal holds exactly the suffix; the
            // uninterrupted engine's journal ends with the same events —
            // batch numbers included, since the snapshot restores the
            // flush counter.
            let a_events: Vec<_> = a.journal().unwrap().iter_events().copied().collect();
            let b_events: Vec<_> = b.journal().unwrap().iter_events().copied().collect();
            prop_assert_eq!(
                &a_events[recorded_prefix..],
                &b_events[..],
                "{} suffix journal records", kind
            );
            prop_assert_eq!(b.placements(), a.placements(), "{} final state", kind);
            prop_assert_eq!(b.metrics(), a.metrics(), "{} final metrics", kind);
            prop_assert_eq!(b.total_costs(), a.total_costs(), "{} costs", kind);
        }
    }

    /// Recovery from checkpoint + tail is outcome-identical to the
    /// original engine and to a full replay of the retained journal.
    #[test]
    fn recover_matches_original_and_replay(seed in 0u64..200, shards in 1usize..5) {
        let seq = churn(seed, shards, 500);
        let mut cfg = config(shards, BackendKind::TheoremOne { gamma: 8 });
        cfg.retained_segments = 2;
        let mut original = Engine::new(cfg);
        for (i, chunk) in seq.requests().chunks(64).enumerate() {
            for &r in chunk {
                original.submit(r);
            }
            original.flush();
            if i % 3 == 2 {
                prop_assert!(original.checkpoint());
            }
        }
        let text = original.journal().unwrap().to_text();

        // Crash → recover from the serialized journal.
        let recovered = Engine::recover(text.as_bytes()).unwrap();
        prop_assert_eq!(recovered.placements(), original.placements());
        prop_assert_eq!(recovered.metrics(), original.metrics());
        prop_assert_eq!(recovered.batches(), original.batches());
        prop_assert_eq!(recovered.total_costs(), original.total_costs());

        // The audit path (replay from the earliest retained state)
        // reaches the same final state.
        let replayed = Journal::from_text(&text).unwrap().replay().unwrap();
        prop_assert_eq!(replayed.placements(), original.placements());

        // Recording continues seamlessly: the recovered engine's journal
        // is the original's, byte for byte.
        prop_assert_eq!(
            recovered.journal().unwrap().to_text(),
            original.journal().unwrap().to_text()
        );
    }
}

#[test]
fn checkpoints_bound_journal_memory() {
    let mut cfg = config(2, BackendKind::TheoremOne { gamma: 8 });
    cfg.retained_segments = 3;
    let mut engine = Engine::new(cfg);
    let seq = churn(11, 2, 800);
    let mut checkpoints = 0usize;
    for chunk in seq.requests().chunks(40) {
        for &r in chunk {
            engine.submit(r);
        }
        engine.flush();
        assert!(engine.checkpoint());
        checkpoints += 1;
        let journal = engine.journal().unwrap();
        assert!(
            journal.segment_count() <= 3 + 1,
            "retained {} segments with cap 3",
            journal.segment_count()
        );
    }
    let journal = engine.journal().unwrap();
    assert!(checkpoints > 4, "test must actually truncate");
    assert_eq!(journal.dropped_segments(), (checkpoints - 4) as u64 + 1);
    assert!(journal.dropped_events() > 0, "dropped segments held events");
    // The truncated journal still round-trips and recovers exactly.
    let text = journal.to_text();
    let parsed = Journal::from_text(&text).unwrap();
    assert!(parsed.iter_events().eq(journal.iter_events()));
    assert_eq!(parsed.dropped_segments(), journal.dropped_segments());
    assert_eq!(parsed.dropped_events(), journal.dropped_events());
    let recovered = Engine::recover(text.as_bytes()).unwrap();
    assert_eq!(recovered.placements(), engine.placements());
    assert_eq!(recovered.metrics(), engine.metrics());
}

#[test]
fn recovery_is_o_tail_not_o_history() {
    // Not a wall-clock benchmark (that's BENCH_engine_recovery.json) —
    // this pins the *structural* guarantee: recovery replays only the
    // events after the last checkpoint, however long history is.
    let mut cfg = config(2, BackendKind::TheoremOne { gamma: 8 });
    cfg.retained_segments = 64;
    let mut engine = Engine::new(cfg);
    let seq = churn(5, 2, 600);
    let (history, tail) = seq.requests().split_at(520);
    ingest(&mut engine, history, 64);
    engine.checkpoint();
    ingest(&mut engine, tail, 64);

    let journal = engine.journal().unwrap();
    let cp = journal.latest_checkpoint().expect("checkpointed");
    assert_eq!(cp.events_before, 520);
    let tail_len = journal.event_count() as u64 - cp.events_before;
    assert_eq!(tail_len, 80);
    // Full audit replay covers everything; recovery only the tail. Both
    // land on the same state.
    let recovered = journal.clone().recover_engine().unwrap();
    let replayed = journal.replay().unwrap();
    assert_eq!(recovered.placements(), engine.placements());
    assert_eq!(replayed.placements(), engine.placements());
}

#[test]
fn tampered_checkpoint_tail_is_detected() {
    let mut engine = Engine::new(config(2, BackendKind::Reservation));
    let seq = churn(3, 2, 200);
    ingest(&mut engine, &seq.requests()[..120], 40);
    engine.checkpoint();
    ingest(&mut engine, &seq.requests()[120..], 40);
    let text = engine.journal().unwrap().to_text();

    // Flip a recorded outcome in the tail: recovery must diverge.
    let tail_start = text.rfind("!end").expect("snapshot framing");
    let tail = &text[tail_start..];
    let tampered = if tail.contains(" ok 0 0") {
        format!(
            "{}{}",
            &text[..tail_start],
            tail.replacen(" ok 0 0", " ok 9 0", 1)
        )
    } else {
        format!(
            "{}{}",
            &text[..tail_start],
            tail.replacen(" ok 1 0", " ok 8 0", 1)
        )
    };
    assert_ne!(tampered, text, "tampering must hit a tail record");
    match Engine::recover(tampered.as_bytes()) {
        Err(RecoverError::Replay(ReplayError::Divergence(_))) => {}
        other => panic!("expected tail divergence, got {other:?}"),
    }
}

#[test]
fn malformed_journals_error_gracefully() {
    let mut engine = Engine::new(config(2, BackendKind::TheoremOne { gamma: 8 }));
    let seq = churn(9, 2, 150);
    ingest(&mut engine, &seq.requests()[..100], 50);
    engine.checkpoint();
    ingest(&mut engine, &seq.requests()[100..], 50);
    let text = engine.journal().unwrap().to_text();

    // Sanity: the untampered journal parses and recovers.
    assert!(Journal::from_text(&text).is_ok());
    assert!(Engine::recover(text.as_bytes()).is_ok());

    // Truncated anywhere — including inside the embedded snapshot —
    // parse errors or parses a shorter-but-valid prefix; never panics.
    for cut in (0..text.len()).step_by(97) {
        let _ = Journal::from_text(&text[..cut]);
    }
    // Truncation inside the checkpoint body specifically is an error
    // (the record promises more lines than remain).
    let snap_start = text.find("\ns ").expect("has a checkpoint record");
    let cut = &text[..snap_start + 40];
    let e = Journal::from_text(cut).unwrap_err();
    assert!(e.message.contains("truncated"), "got: {e}");

    // Garbage op line.
    let garbage = text.replacen("b 0", "quantum 7", 1);
    assert!(Journal::from_text(&garbage).is_err());

    // Duplicate config header.
    let dup = text.replacen("c 2 1 theorem1:8", "c 2 1 theorem1:8\nc 2 1 theorem1:8", 1);
    let e = Journal::from_text(&dup).unwrap_err();
    assert!(e.message.contains("duplicate 'c'"), "got: {e}");

    // Degenerate configs are rejected up front instead of panicking in
    // Engine::new during replay.
    for bad in ["c 0 1 theorem1:8", "c 2 0 theorem1:8", "c 2 1 warp:3"] {
        let broken = text.replacen("c 2 1 theorem1:8", bad, 1);
        assert!(Journal::from_text(&broken).is_err(), "accepted {bad}");
    }

    // Bad outcome tag and bad error code.
    for (from, to) in [(" ok 0 0", " maybe 0 0"), (" ok 0 0", " err gremlins")] {
        if text.contains(from) {
            let broken = text.replacen(from, to, 1);
            assert!(Journal::from_text(&broken).is_err());
        }
    }

    // A corrupted checkpoint body is caught at recovery time with a
    // graceful error (the line count still matches, so it parses).
    let corrupted = text.replacen("!begin shard 0", "!begin shard 9", 1);
    match Engine::recover(corrupted.as_bytes()) {
        Err(RecoverError::Replay(ReplayError::Corrupt(_))) => {}
        other => panic!("expected corrupt-checkpoint error, got {other:?}"),
    }

    // A truncation marker with no checkpoint to recover from.
    let orphan_t =
        "# realloc-engine journal v2\nc 2 1 theorem1:8\nT 1 100\nb 0\n+ 0 1 0 8 ok 0 0\n";
    assert!(Journal::from_text(orphan_t).is_err());
}

#[test]
fn multi_machine_shards_round_trip_with_migrations() {
    // machines_per_shard > 1 exercises the §3 delegation state in the
    // snapshot: rotation starts, per-machine membership, and the
    // deterministic migration-victim choice must all survive restore —
    // deletes after the round trip drive real cross-machine migrations
    // on both sides and must match move for move.
    for kind in [
        BackendKind::Reservation,
        BackendKind::TheoremOne { gamma: 8 },
        BackendKind::Deamortized { gamma: 8 },
        BackendKind::Naive,
    ] {
        let mut cfg = config(2, kind);
        cfg.machines_per_shard = 3;
        let seq = churn(41, 6, 400);
        let (prefix, suffix) = seq.requests().split_at(240);

        let mut a = Engine::new(cfg);
        ingest(&mut a, prefix, 64);
        let recorded_prefix = a.journal().unwrap().event_count();

        let mut b = Engine::restore_snapshot(&a.snapshot_text())
            .unwrap_or_else(|e| panic!("{kind} m=3: restore failed: {e}"));
        assert_eq!(b.placements(), a.placements(), "{kind} m=3 prefix");

        // Delete-heavy suffix: the §3 rebalance migrates jobs off the
        // rotation tail, which is where restored per-machine state and
        // victim determinism matter.
        let deletes: Vec<Request> = a
            .placements()
            .iter()
            .step_by(2)
            .map(|&(id, _, _)| Request::Delete { id })
            .collect();
        ingest(&mut a, &deletes, 32);
        ingest(&mut b, &deletes, 32);
        ingest(&mut a, suffix, 64);
        ingest(&mut b, suffix, 64);

        let a_events: Vec<_> = a.journal().unwrap().iter_events().copied().collect();
        let b_events: Vec<_> = b.journal().unwrap().iter_events().copied().collect();
        assert_eq!(
            &a_events[recorded_prefix..],
            &b_events[..],
            "{kind} m=3 suffix journal records (migration costs included)"
        );
        assert!(
            a_events[recorded_prefix..]
                .iter()
                .any(|e| matches!(e.result, Ok(c) if c.migrations > 0)),
            "{kind} m=3: suffix must exercise real migrations"
        );
        assert_eq!(b.placements(), a.placements(), "{kind} m=3 final");
        assert_eq!(b.metrics(), a.metrics(), "{kind} m=3 metrics");
    }
}

#[test]
fn snapshot_preserves_pending_queues() {
    // Migration may snapshot between submit() and flush(); the queued
    // requests must survive the ship.
    let mut a = Engine::new(config(3, BackendKind::TheoremOne { gamma: 8 }));
    let seq = churn(23, 3, 120);
    ingest(&mut a, &seq.requests()[..80], 40);
    for &r in &seq.requests()[80..] {
        a.submit(r);
    }
    assert!(a.queued() > 0);

    let mut b = Engine::restore_snapshot(&a.snapshot_text()).unwrap();
    assert_eq!(b.queued(), a.queued(), "pending queue shipped");
    let ra = a.flush();
    let rb = b.flush();
    assert_eq!(rb.processed(), ra.processed());
    assert_eq!(b.placements(), a.placements());
    assert_eq!(b.metrics(), a.metrics());
}

#[test]
fn empty_flushes_do_not_corrupt_post_recovery_batches() {
    // An empty flush before the crash leaves no events, so replay's
    // flush counter lags the recorded batch numbers; resuming recording
    // must not reuse a batch number that already has events (a later
    // audit replay would merge the two flushes and report a spurious
    // divergence).
    let mut engine = Engine::new(config(2, BackendKind::Reservation));
    let seq = churn(31, 2, 160);
    ingest(&mut engine, &seq.requests()[..60], 30);
    engine.checkpoint();
    engine.flush(); // empty: recorded nowhere
    ingest(&mut engine, &seq.requests()[60..120], 30);
    let text = engine.journal().unwrap().to_text();

    let mut recovered = Engine::recover(text.as_bytes()).unwrap();
    ingest(&mut recovered, &seq.requests()[120..], 30);
    // The continued journal must replay cleanly end to end.
    let continued = recovered.journal().unwrap().to_text();
    Journal::from_text(&continued)
        .unwrap()
        .replay()
        .expect("no spurious divergence from batch-number reuse");
}

#[test]
fn recovered_engine_keeps_its_retention_cap() {
    // The serialized 'c' header only carries shards/machines/backend;
    // the recovered engine must still truncate with the checkpointed
    // configuration's retained_segments, not the parser default.
    let mut cfg = config(2, BackendKind::TheoremOne { gamma: 8 });
    cfg.retained_segments = 1;
    let mut engine = Engine::new(cfg);
    let seq = churn(37, 2, 400);
    for chunk in seq.requests()[..200].chunks(40) {
        for &r in chunk {
            engine.submit(r);
        }
        engine.flush();
        engine.checkpoint();
    }
    let text = engine.journal().unwrap().to_text();
    let mut recovered = Engine::recover(text.as_bytes()).unwrap();
    assert_eq!(recovered.config().retained_segments, 1);

    // The cap survives even with no checkpoint to carry it (the journal
    // header records it).
    let mut fresh_cfg = config(2, BackendKind::TheoremOne { gamma: 8 });
    fresh_cfg.retained_segments = 1;
    let mut no_cp = Engine::new(fresh_cfg);
    ingest(&mut no_cp, &seq.requests()[..40], 40);
    let genesis_text = no_cp.journal().unwrap().to_text();
    let genesis_rec = Engine::recover(genesis_text.as_bytes()).unwrap();
    assert_eq!(genesis_rec.config().retained_segments, 1);
    for chunk in seq.requests()[200..].chunks(40) {
        for &r in chunk {
            recovered.submit(r);
        }
        recovered.flush();
        recovered.checkpoint();
        assert!(
            recovered.journal().unwrap().segment_count() <= 2,
            "post-recovery checkpoints must honor retained_segments = 1"
        );
    }
}

#[test]
fn malformed_epoch_records_error_gracefully() {
    // Build a journal that legitimately crosses two resizes (one with a
    // tenant pin), then hand-corrupt its epoch records every way the
    // wire can: each corpus entry must yield a graceful ParseError from
    // Journal::from_text — never a panic, never silent acceptance.
    use realloc_engine::TenantId;
    let mut engine = Engine::new(config(2, BackendKind::TheoremOne { gamma: 8 }));
    let seq = churn(51, 1, 240);
    ingest(&mut engine, &seq.requests()[..80], 40);
    engine.resize(3).unwrap();
    ingest(&mut engine, &seq.requests()[80..160], 40);
    engine
        .submit_for(
            TenantId(5),
            Request::Insert {
                id: realloc_core::JobId(1),
                window: realloc_core::Window::new(0, 64),
            },
        )
        .unwrap();
    engine.flush();
    engine.rebalance().unwrap(); // may or may not fire; resize again to be sure
    engine.resize(4).unwrap();
    ingest(&mut engine, &seq.requests()[160..], 40);

    let text = engine.journal().unwrap().to_text();
    assert!(
        text.contains("\nE 1 3\n"),
        "journal: missing first epoch record"
    );
    assert!(text.contains("\nE "), "journal must carry epoch records");
    // Sanity: the untampered journal parses, replays, and recovers.
    Journal::from_text(&text).unwrap().replay().unwrap();
    Engine::recover(text.as_bytes()).unwrap();

    let corpus: Vec<(&str, String)> = vec![
        (
            "duplicate epoch",
            text.replacen("\nE 1 3\n", "\nE 1 3\nE 1 3\n", 1),
        ),
        (
            "regressing epoch",
            // Second record rewound to epoch 1.
            {
                let first = text.find("\nE 1 3\n").unwrap();
                let rest = &text[first + 1..];
                let second = rest.find("\nE ").unwrap() + first + 1;
                let line_end = text[second + 1..].find('\n').unwrap() + second + 1;
                format!("{}\nE 1 9{}", &text[..second], &text[line_end..])
            },
        ),
        (
            "shard count zero",
            text.replacen("\nE 1 3\n", "\nE 1 0\n", 1),
        ),
        (
            "truncated router table (odd pin tokens)",
            text.replacen("\nE 1 3\n", "\nE 1 3 7\n", 1),
        ),
        (
            "pin out of range",
            text.replacen("\nE 1 3\n", "\nE 1 3 7 9\n", 1),
        ),
        (
            "tenant pinned twice",
            text.replacen("\nE 1 3\n", "\nE 1 3 7 0 7 1\n", 1),
        ),
        (
            "pins cover every shard",
            text.replacen("\nE 1 3\n", "\nE 1 3 7 0 8 1 9 2\n", 1),
        ),
        (
            "garbage epoch number",
            text.replacen("\nE 1 3\n", "\nE x 3\n", 1),
        ),
    ];
    for (what, bad) in &corpus {
        assert_ne!(
            bad, &text,
            "corpus entry '{what}' did not modify the journal"
        );
        match Journal::from_text(bad) {
            Err(_) => {}
            Ok(_) => panic!("corpus entry '{what}' parsed successfully"),
        }
    }

    // Epoch record mid-batch: splice an E record between two events of
    // the same batch (the engine only reshards between flushes, so this
    // can only be tampering).
    let mut lines: Vec<&str> = text.lines().collect();
    let mut spliced_at = None;
    for i in 0..lines.len() - 1 {
        let a = lines[i].starts_with("+ ") || lines[i].starts_with("- ");
        let b = lines[i + 1].starts_with("+ ") || lines[i + 1].starts_with("- ");
        if a && b {
            spliced_at = Some(i + 1);
            break;
        }
    }
    let at = spliced_at.expect("journal has a multi-event batch");
    lines.insert(at, "E 40 5");
    let mid_batch = lines.join("\n");
    let e = Journal::from_text(&mid_batch).unwrap_err();
    assert!(
        e.message.contains("middle of batch"),
        "mid-batch epoch record not caught: {e}"
    );

    // Deleting an epoch record altogether parses (the framing is
    // self-consistent) but replay detects the divergence: without the
    // resize, every later event routes differently.
    let missing = text.replacen("\nE 1 3\n", "\n", 1);
    let parsed = Journal::from_text(&missing).expect("framing still parses");
    assert!(
        parsed.replay().is_err(),
        "replay must diverge when a resize is excised from history"
    );
}

#[test]
fn shard_migration_via_snapshot_ship_restore() {
    // The migration recipe from the README: serialize a whole engine on
    // one "host", restore it on another, and keep serving — no journal
    // replay involved.
    let mut source = Engine::new(config(3, BackendKind::TheoremOne { gamma: 8 }));
    let seq = churn(17, 3, 300);
    ingest(&mut source, &seq.requests()[..200], 50);

    let shipped = source.snapshot_text();
    let mut target = Engine::restore_snapshot(&shipped).unwrap();
    assert_eq!(target.placements(), source.placements());

    // Both engines keep serving identically.
    ingest(&mut source, &seq.requests()[200..], 50);
    ingest(&mut target, &seq.requests()[200..], 50);
    assert_eq!(target.placements(), source.placements());
    assert_eq!(target.metrics(), source.metrics());
}
