//! Elastic resharding properties — the differential harness.
//!
//! The load-bearing comparisons, in order of strength:
//!
//! 1. **Differential vs. a fixed-size engine**: for any request stream
//!    with interleaved `resize` calls, the elastic engine ends with the
//!    same serviced/failed totals and the *same active job set on every
//!    shard* as a fixed-size engine (at the final size) fed the same
//!    stream, and both pass full placement-validity invariants. (Exact
//!    slot-for-slot equality is deliberately not asserted: placements
//!    are history-dependent — the paper's Observation 7 guarantees
//!    history independence of *fulfillment*, not of physical slots — so
//!    two engines with different resize histories legitimately differ
//!    in slots while serving identical sets.)
//! 2. **Self-consistency through the journal** (the acceptance bar): a
//!    journal recorded across ≥ 2 resizes replays — and recovers via
//!    checkpoint + tail — to byte-identical placements and metrics vs.
//!    the live engine.
//! 3. **No loss**: resizing a loaded engine preserves every queued
//!    request and every active job, and a refused resize leaves the
//!    engine untouched.

use proptest::prelude::*;
use realloc_core::{JobId, Request, RequestSeq, Restorable as _, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig, Journal, ResizeError};
use realloc_workloads::{ChurnConfig, ChurnGenerator};

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        ..EngineConfig::default()
    }
}

/// Churn whose density budget is provisioned for a SINGLE machine. Any
/// sub-multiset of a γ-dense set is γ-dense (removing jobs only lowers
/// window counts), so however the router partitions this stream — any
/// shard count, any pin table, any resize history — every shard sees a
/// stream its one-machine backend accepts. That makes "zero rejections"
/// an invariant of the *stream*, not of the sharding, which is what lets
/// the differential test compare engines with different resize
/// histories.
fn elastic_churn(seed: u64, len: usize) -> RequestSeq {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![1, 4, 16, 64],
            target_active: 48,
            insert_bias: 0.65,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len)
}

fn ingest(engine: &mut Engine, requests: &[Request], batch: usize) -> (usize, usize) {
    let (mut ok, mut failed) = (0usize, 0usize);
    for chunk in requests.chunks(batch) {
        for &r in chunk {
            engine.submit(r);
        }
        let report = engine.flush();
        ok += report.processed();
        failed += report.failed();
    }
    (ok, failed)
}

/// Sorted `(shard, id, window)` triples — the order-invariant view of
/// "which jobs live where" that must match across resize histories.
fn active_by_shard(engine: &Engine) -> Vec<(usize, JobId, Window)> {
    let mut out: Vec<(usize, JobId, Window)> = engine
        .placements()
        .into_iter()
        .map(|(id, shard, _)| {
            let window = engine
                .window_of(id)
                .expect("placed job has a recorded window");
            (shard, id, window)
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: the differential comparison. A resize plan is a list
    /// of (batch index, new size) pairs; sizes walk 1..=6 in arbitrary
    /// order, ending wherever the plan ends — the fixed engine runs at
    /// that final size from genesis.
    #[test]
    fn elastic_engine_matches_fixed_size_engine(
        seed in 0u64..300,
        plan in prop::collection::vec((0usize..10, 1usize..7), 1..5),
    ) {
        let seq = elastic_churn(seed, 400);
        let batches: Vec<&[Request]> = seq.requests().chunks(40).collect();

        let mut elastic = Engine::new(config(3));
        let (mut ok, mut failed) = (0usize, 0usize);
        let mut final_size = 3usize;
        for (i, chunk) in batches.iter().enumerate() {
            for &(at, size) in &plan {
                if at == i {
                    match elastic.resize(size) {
                        Ok(report) => {
                            prop_assert_eq!(report.to_shards, size);
                            final_size = size;
                        }
                        Err(e) => prop_assert!(false, "resize refused on dense stream: {e}"),
                    }
                    prop_assert!(elastic.validate().is_ok(), "invariants after resize");
                }
            }
            for &r in *chunk {
                elastic.submit(r);
            }
            let report = elastic.flush();
            ok += report.processed();
            failed += report.failed();
        }

        let mut fixed = Engine::new(config(final_size));
        let (fixed_ok, fixed_failed) = ingest(&mut fixed, seq.requests(), 40);

        // Nothing lost, nothing rejected, on either side.
        prop_assert_eq!(failed, 0, "elastic rejected requests of a 1-machine-dense stream");
        prop_assert_eq!((ok, failed), (fixed_ok, fixed_failed));
        prop_assert_eq!(ok, seq.len());

        // Same jobs on the same shards (routing at the final epoch is
        // the same pure function for both engines).
        prop_assert_eq!(active_by_shard(&elastic), active_by_shard(&fixed));

        // Lifetime totals survived every reshard.
        let (em, fm) = (elastic.metrics(), fixed.metrics());
        prop_assert_eq!(em.requests, fm.requests);
        prop_assert_eq!(em.failed, fm.failed);
        prop_assert_eq!(em.active_jobs, fm.active_jobs);
        prop_assert_eq!(em.epoch, plan.iter().filter(|&&(at, _)| at < batches.len()).count() as u64);

        // Both engines are internally valid.
        prop_assert!(elastic.validate().is_ok());
        prop_assert!(fixed.validate().is_ok());
    }

    /// Property 2 — the acceptance bar: a journal recorded across >= 2
    /// resizes (and a checkpoint in between) replays AND recovers to
    /// byte-identical placements and metrics vs. the live engine, and
    /// the recovered engine's serialized journal is byte-identical to
    /// the original's.
    #[test]
    fn journal_across_resizes_replays_and_recovers_byte_identically(
        seed in 0u64..300,
        sizes in prop::collection::vec(1usize..7, 2..5),
    ) {
        let seq = elastic_churn(seed, 360);
        let batches: Vec<&[Request]> = seq.requests().chunks(30).collect();
        let mut cfg = config(2);
        cfg.retained_segments = usize::MAX; // keep genesis: full replay must work too
        let mut engine = Engine::new(cfg);

        // Spread the resizes evenly through the stream; checkpoint after
        // the first one so recovery crosses both a checkpoint and at
        // least one post-checkpoint epoch record.
        let stride = batches.len() / (sizes.len() + 1);
        for (i, chunk) in batches.iter().enumerate() {
            if stride > 0 && i % stride == stride - 1 {
                let k = i / stride;
                if k < sizes.len() {
                    engine.resize(sizes[k]).expect("dense stream resize");
                    if k == 0 {
                        assert!(engine.checkpoint());
                    }
                }
            }
            for &r in *chunk {
                engine.submit(r);
            }
            engine.flush();
        }
        prop_assert!(engine.epoch() >= 2, "plan must actually resize twice");
        let records = engine.journal().unwrap().epoch_records();
        prop_assert_eq!(records.len() as u64, engine.epoch(), "every resize journaled");
        prop_assert_eq!(records.last().unwrap().epoch, engine.epoch());
        let text = engine.journal().unwrap().to_text();

        // Full audit replay from genesis crosses every epoch record.
        let replayed = Journal::from_text(&text).unwrap().replay().unwrap();
        prop_assert_eq!(replayed.placements(), engine.placements());
        prop_assert_eq!(replayed.metrics(), engine.metrics());
        prop_assert_eq!(replayed.epoch(), engine.epoch());

        // Crash recovery: latest checkpoint + tail (which contains the
        // later epoch records).
        let recovered = Engine::recover(text.as_bytes()).unwrap();
        prop_assert_eq!(recovered.placements(), engine.placements());
        prop_assert_eq!(recovered.metrics(), engine.metrics());
        prop_assert_eq!(recovered.epoch(), engine.epoch());
        prop_assert_eq!(recovered.batches(), engine.batches());
        prop_assert_eq!(
            recovered.journal().unwrap().to_text(),
            engine.journal().unwrap().to_text()
        );
        prop_assert!(recovered.validate().is_ok());
    }

    /// Property 3: a resize with pending (unflushed) queues loses no
    /// queued request — everything still services, in per-job order.
    #[test]
    fn resize_preserves_pending_queues(seed in 0u64..300, new_size in 1usize..7) {
        let seq = elastic_churn(seed, 240);
        let (warm, pending) = seq.requests().split_at(160);
        let mut engine = Engine::new(config(4));
        ingest(&mut engine, warm, 40);

        for &r in pending {
            engine.submit(r);
        }
        let queued = engine.queued();
        prop_assert!(queued > 0);

        let report = engine.resize(new_size).expect("dense stream resize");
        prop_assert_eq!(report.queued_preserved, queued);
        prop_assert_eq!(engine.queued(), queued, "resize dropped queued requests");

        let flush = engine.flush();
        prop_assert_eq!(flush.processed(), queued, "failures: {:?}", flush.failures);
        prop_assert!(engine.validate().is_ok());

        // The journal (epoch record included) still replays cleanly.
        let text = engine.journal().unwrap().to_text();
        let replayed = Journal::from_text(&text).unwrap().replay().unwrap();
        prop_assert_eq!(replayed.placements(), engine.placements());
    }
}

#[test]
fn resize_carries_telemetry_and_reports_movement() {
    let mut engine = Engine::new(config(2));
    let seq = elastic_churn(7, 200);
    ingest(&mut engine, seq.requests(), 50);
    let before = engine.metrics();
    assert!(before.requests > 0);

    let report = engine.resize(5).unwrap();
    assert_eq!(report.from_shards, 2);
    assert_eq!(report.to_shards, 5);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.jobs, engine.active_count());
    assert!(report.jobs_moved > 0, "growing 2→5 must re-home jobs");
    assert!(report.jobs_moved <= report.jobs);

    let after = engine.metrics();
    assert_eq!(after.requests, before.requests, "resize zeroed telemetry");
    assert_eq!(after.failed, before.failed);
    assert_eq!(after.reallocations, before.reallocations);
    assert_eq!(after.migrations, before.migrations);
    assert_eq!(after.cost, before.cost, "histograms must carry over");
    assert_eq!(after.active_jobs, before.active_jobs);
    assert_eq!(after.epoch, 1);
    assert_eq!(after.shards.len(), 5);
    let costs = engine.total_costs();
    assert_eq!(costs.reallocations, before.reallocations);
    assert_eq!(costs.migrations, before.migrations);
}

#[test]
fn tampered_carryover_is_rejected_at_restore() {
    // Untrusted-snapshot arithmetic must error at restore, not overflow
    // later in metrics()/total_costs() aggregation.
    let mut engine = Engine::new(config(2));
    let seq = elastic_churn(3, 160);
    ingest(&mut engine, seq.requests(), 40);
    engine.resize(3).unwrap(); // non-trivial carryover
    let text = engine.snapshot_text();
    assert!(Engine::restore_snapshot(&text).is_ok());

    let t_line = text
        .lines()
        .find(|l| l.starts_with("t "))
        .expect("snapshot has a carryover line")
        .to_string();
    let huge = format!("t {} 0 0 0", u64::MAX);
    for (what, bad) in [
        ("forged huge requests", text.replacen(&t_line, &huge, 1)),
        (
            "requests != histogram count",
            text.replacen(&t_line, "t 1 0 0 0", 1),
        ),
        (
            "orphan carryover totals",
            text.replacen(&format!("{t_line}\n"), "", 1),
        ),
    ] {
        assert_ne!(bad, text, "{what}: tamper missed");
        assert!(
            Engine::restore_snapshot(&bad).is_err(),
            "{what}: accepted a corrupt carryover"
        );
    }
}

#[test]
fn infeasible_shrink_is_all_or_nothing() {
    // Two unit-window jobs competing for the same slot can coexist only
    // on different shards; shrinking to one shard must be refused and
    // must leave the engine exactly as it was.
    let mut engine = Engine::new(config(4));
    let mut placed: Vec<JobId> = Vec::new();
    for id in 0..64u64 {
        if placed.len() == 2 {
            break;
        }
        let shard = engine.shard_of(JobId(id));
        if placed.iter().all(|&p| engine.shard_of(p) != shard) {
            engine.submit(Request::Insert {
                id: JobId(id),
                window: Window::new(0, 1),
            });
            placed.push(JobId(id));
        }
    }
    assert_eq!(placed.len(), 2, "need two ids on distinct shards");
    let report = engine.flush();
    assert_eq!(report.processed(), 2);

    let placements = engine.placements();
    let text_before = engine.journal().unwrap().to_text();
    match engine.resize(1) {
        Err(ResizeError::Infeasible { .. }) => {}
        other => panic!("expected infeasible shrink, got {other:?}"),
    }
    assert_eq!(engine.epoch(), 0, "failed resize must not bump the epoch");
    assert_eq!(
        engine.placements(),
        placements,
        "failed resize mutated state"
    );
    assert_eq!(
        engine.journal().unwrap().to_text(),
        text_before,
        "failed resize must not journal an epoch record"
    );
    assert_eq!(engine.config().shards, 4);

    // And the engine still serves.
    engine.submit(Request::Delete { id: placed[0] });
    assert_eq!(engine.flush().processed(), 1);
    engine.resize(1).expect("now it fits");
    assert_eq!(engine.config().shards, 1);
    assert!(engine.validate().is_ok());
}

#[test]
fn resize_to_same_size_is_an_epoch_bump_with_no_movement() {
    let mut engine = Engine::new(config(3));
    let seq = elastic_churn(11, 150);
    ingest(&mut engine, seq.requests(), 50);
    let before = active_by_shard_ids(&engine);
    let report = engine.resize(3).unwrap();
    assert_eq!(report.jobs_moved, 0, "same table, same homes");
    assert_eq!(engine.epoch(), 1);
    assert_eq!(active_by_shard_ids(&engine), before);
    assert!(engine.validate().is_ok());
}

#[test]
fn rebalance_isolates_the_whale_tenant() {
    use realloc_engine::TenantId;
    use realloc_workloads::{hotspot, HOTSPOT_WHALE};

    let mut engine = Engine::new(config(2));
    let mut feed = hotspot(3, 5);
    for _ in 0..30 {
        let Some(batch) = feed.next_batch(8) else {
            break;
        };
        for (tenant, request) in batch {
            engine.submit_for(TenantId(tenant), request).unwrap();
        }
        engine.flush();
    }
    // Balanced traffic earlier in life would have been a no-op; by now
    // the whale dominates and rebalance must fire.
    let report = engine
        .rebalance()
        .expect("whale stream fits one shard")
        .expect("dominant tenant must trigger a rebalance");
    assert_eq!(report.from_shards, 2);
    assert_eq!(report.to_shards, 3);
    assert_eq!(engine.epoch(), 1);
    assert_eq!(engine.router().pin_of(HOTSPOT_WHALE as u64), Some(2));
    assert!(engine.validate().is_ok());

    // Isolation is total: the whale's jobs all live on the dedicated
    // shard, and nobody else's do.
    for (id, shard, _) in engine.placements() {
        let tenant = id.0 >> realloc_engine::TENANT_SHIFT;
        if tenant == HOTSPOT_WHALE as u64 {
            assert_eq!(shard, 2, "whale job off its dedicated shard");
        } else {
            assert_ne!(shard, 2, "tenant {tenant} leaked onto the whale shard");
        }
    }

    // A second rebalance is a no-op (the whale is already pinned)…
    assert_eq!(engine.rebalance().unwrap(), None);

    // …serving continues across the pin, and the journal (with its
    // pinned-epoch record) replays to byte-identical placements.
    for _ in 0..10 {
        let Some(batch) = feed.next_batch(8) else {
            break;
        };
        for (tenant, request) in batch {
            engine.submit_for(TenantId(tenant), request).unwrap();
        }
        engine.flush();
    }
    assert!(engine.validate().is_ok());
    let text = engine.journal().unwrap().to_text();
    let replayed = Journal::from_text(&text).unwrap().replay().unwrap();
    assert_eq!(replayed.placements(), engine.placements());
    assert_eq!(replayed.metrics(), engine.metrics());
    let recovered = Engine::recover(text.as_bytes()).unwrap();
    assert_eq!(recovered.router().pin_of(HOTSPOT_WHALE as u64), Some(2));
    assert_eq!(recovered.placements(), engine.placements());
}

fn active_by_shard_ids(engine: &Engine) -> Vec<(usize, JobId)> {
    let mut out: Vec<(usize, JobId)> = engine
        .placements()
        .into_iter()
        .map(|(id, shard, _)| (shard, id))
        .collect();
    out.sort();
    out
}
