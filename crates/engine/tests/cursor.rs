//! The incremental journal cursor ([`Journal::records_since`]) and the
//! engine state digest — the streaming primitives the cluster layer's
//! replication is built on.

use realloc_core::snapshot::{digest64, Restorable as _};
use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig, JournalCursor, JournalRecord};

fn journaled(shards: usize, retained_segments: usize) -> Engine {
    Engine::new(EngineConfig {
        shards,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments,
    })
}

fn churn(engine: &mut Engine, ids: std::ops::Range<u64>) {
    for i in ids {
        engine.submit(Request::Insert {
            id: JobId(i),
            window: Window::new(0, 1 << 12),
        });
    }
    engine.flush();
}

#[test]
fn records_since_interleaves_events_and_epochs_in_order() {
    let mut e = journaled(2, usize::MAX);
    churn(&mut e, 0..10);
    e.resize(3).unwrap();
    churn(&mut e, 10..20);
    e.resize(4).unwrap();

    let journal = e.journal().unwrap();
    let records: Vec<_> = journal
        .records_since(JournalCursor::default())
        .expect("genesis cursor is always retained here")
        .collect();
    // 20 events + 2 epoch records, in recording order.
    assert_eq!(records.len(), 22);
    let epochs_at: Vec<usize> = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r, JournalRecord::Epoch(_)).then_some(i))
        .collect();
    assert_eq!(
        epochs_at,
        vec![10, 21],
        "epochs sit at their exact positions"
    );

    // The event projection matches the borrowing iterator, which
    // matches the allocating `events()`.
    let via_cursor: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::Event(e) => Some(**e),
            JournalRecord::Epoch(_) => None,
        })
        .collect();
    let via_iter: Vec<_> = journal.iter_events().copied().collect();
    assert_eq!(via_cursor, via_iter);
    // The deprecated allocating accessor must stay equivalent for as
    // long as it exists; this is its one remaining caller.
    #[allow(deprecated)]
    {
        assert_eq!(via_iter, journal.events());
    }
}

#[test]
fn cursor_resumes_mid_stream_without_recloning_history() {
    let mut e = journaled(2, usize::MAX);
    churn(&mut e, 0..8);
    let journal = e.journal().unwrap();
    let mut cursor = JournalCursor::default();
    for r in journal.records_since(cursor).unwrap() {
        cursor.advance(&r);
    }
    assert_eq!(cursor.events_seen, 8);
    assert_eq!(cursor, JournalCursor::at_end_of(journal));
    assert_eq!(journal.records_since(cursor).unwrap().count(), 0);

    // New traffic + a resize appear past the cursor, nothing earlier.
    e.resize(3).unwrap();
    churn(&mut e, 8..11);
    let journal = e.journal().unwrap();
    let fresh: Vec<_> = journal.records_since(cursor).unwrap().collect();
    assert_eq!(fresh.len(), 4); // 1 epoch + 3 events
    assert!(matches!(fresh[0], JournalRecord::Epoch(r) if r.epoch == 1));
    for r in &fresh {
        cursor.advance(r);
    }
    assert_eq!(cursor.events_seen, 11);
    assert_eq!(cursor.last_epoch, 1);
}

#[test]
fn truncated_history_invalidates_stale_cursors_only() {
    let mut e = journaled(2, 0); // keep only the latest checkpoint + tail
    churn(&mut e, 0..6);
    e.checkpoint();
    churn(&mut e, 6..12);
    let live = JournalCursor::at_end_of(e.journal().unwrap());
    e.checkpoint(); // seals + truncates the first segment's 6 events
    churn(&mut e, 12..15);

    let journal = e.journal().unwrap();
    assert_eq!(journal.total_events(), 15);
    assert!(journal.dropped_events() > 0);
    // A cursor from before the truncation horizon is refused, not
    // silently skipped past.
    assert!(journal.records_since(JournalCursor::default()).is_none());
    // A cursor still within retained history keeps streaming exactly.
    let tail: Vec<_> = journal.records_since(live).unwrap().collect();
    assert_eq!(tail.len(), 3);
    // A cursor beyond the end (from some other journal) is refused too.
    let bogus = JournalCursor {
        events_seen: 99,
        last_epoch: 0,
    };
    assert!(journal.records_since(bogus).is_none());
}

#[test]
fn state_digest_tracks_snapshot_text_exactly() {
    let mut a = journaled(2, 4);
    let mut b = journaled(2, 4);
    churn(&mut a, 0..32);
    churn(&mut b, 0..32);
    assert_eq!(a.state_digest(), b.state_digest());
    assert_eq!(a.state_digest(), digest64(&a.snapshot_text()));

    // Any divergence — even one extra serviced request — changes it.
    b.submit(Request::Delete { id: JobId(0) });
    b.flush();
    assert_ne!(a.state_digest(), b.state_digest());

    // Restore of the snapshot reproduces the digest (digest is a pure
    // function of state, not of history).
    let restored = Engine::restore_snapshot(&a.snapshot_text()).unwrap();
    assert_eq!(restored.state_digest(), a.state_digest());
}

#[test]
fn apply_recorded_batch_replicates_and_rejects_corruption() {
    // The replication apply path at the engine level: a follower fed
    // recorded batches is byte-identical; malformed slices are graceful
    // errors.
    let mut primary = journaled(2, usize::MAX);
    let mut follower = journaled(2, usize::MAX);
    churn(&mut primary, 0..16);
    primary.resize(3).unwrap();
    churn(&mut primary, 16..24);

    let journal = primary.journal().unwrap();
    let mut batches: Vec<Vec<realloc_engine::JournalEvent>> = Vec::new();
    let mut records = journal.records_since(JournalCursor::default()).unwrap();
    let mut epochs = Vec::new();
    let mut positions = Vec::new();
    for r in &mut records {
        match r {
            JournalRecord::Event(e) => match batches.last_mut() {
                Some(b) if b[0].batch == e.batch => b.push(*e),
                _ => batches.push(vec![*e]),
            },
            JournalRecord::Epoch(rec) => {
                epochs.push(rec.clone());
                positions.push(batches.len());
            }
        }
    }
    let mut ep = 0;
    for (i, batch) in batches.iter().enumerate() {
        while ep < epochs.len() && positions[ep] == i {
            follower.apply_epoch_record(&epochs[ep]).unwrap();
            ep += 1;
        }
        follower.apply_recorded_batch(batch).unwrap();
    }
    while ep < epochs.len() {
        follower.apply_epoch_record(&epochs[ep]).unwrap();
        ep += 1;
    }
    assert_eq!(follower.snapshot_text(), primary.snapshot_text());

    // Corruption classes: empty, mixed batches, regressing batch, and a
    // batch number that would overflow the flush counter.
    assert!(follower.apply_recorded_batch(&[]).is_err());
    let mut mixed = batches[0].clone();
    mixed.extend(batches[1].iter().copied());
    assert!(follower.apply_recorded_batch(&mixed).is_err());
    assert!(
        follower.apply_recorded_batch(&batches[0]).is_err(),
        "already-consumed batch number must be refused"
    );
    let mut hostile = batches[0].clone();
    for e in &mut hostile {
        e.batch = u64::MAX;
    }
    assert!(
        follower.apply_recorded_batch(&hostile).is_err(),
        "u64::MAX batch must be a graceful error, not a counter overflow"
    );
}
