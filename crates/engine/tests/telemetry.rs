//! Engine ↔ telemetry integration properties:
//!
//! * an attached registry counts exactly what the exact-metrics path
//!   reports, across resizes (engine-level counters never reset),
//! * instrumentation never perturbs scheduling outcomes (placements,
//!   costs, journal bytes, and the state digest are identical with and
//!   without telemetry),
//! * registry contents snapshot → restore → replay **byte-identically**
//!   under a deterministic manual clock: re-running the same workload on
//!   a fresh engine + registry reproduces the same snapshot text, and
//!   restoring a snapshot into a fresh registry reproduces it verbatim.

use proptest::prelude::*;
use realloc_core::RequestSeq;
use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_telemetry::{parse_sample, Clock, Telemetry};
use realloc_workloads::{ChurnConfig, ChurnGenerator};

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        ..EngineConfig::default()
    }
}

fn churn(seed: u64, shards: usize, len: usize) -> RequestSeq {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: shards,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![1, 4, 16, 64],
            target_active: 48 * shards,
            insert_bias: 0.6,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len)
}

/// Drives one engine through ingest → resize → ingest with a fresh
/// manual-clock registry attached; returns the telemetry handle and the
/// engine. The manual clock never advances, so every duration sample is
/// exactly zero and the registry is a pure function of the event stream.
fn instrumented_run(seed: u64, shards: usize, len: usize) -> (Telemetry, Engine) {
    let tel = Telemetry::with_clock(Clock::manual(), 256);
    let mut engine = Engine::new(config(shards));
    engine.attach_telemetry(&tel);
    let seq = churn(seed, shards, len);
    engine.ingest(&seq, 64);
    engine
        .resize(shards + 2)
        .expect("growing is always feasible");
    let tail = churn(seed.wrapping_add(1), shards, len / 2);
    engine.ingest(&tail, 32);
    engine.checkpoint();
    (tel, engine)
}

#[test]
fn registry_matches_exact_metrics_across_resize() {
    let (tel, engine) = instrumented_run(7, 4, 400);
    let m = engine.metrics();
    assert_eq!(tel.counter_value("engine_requests_total"), Some(m.requests));
    assert_eq!(tel.counter_value("engine_failed_total"), Some(m.failed));
    assert_eq!(
        tel.counter_value("engine_reallocations_total"),
        Some(m.reallocations)
    );
    assert_eq!(
        tel.counter_value("engine_migrations_total"),
        Some(m.migrations)
    );
    assert_eq!(tel.counter_value("engine_resizes_total"), Some(1));
    assert_eq!(tel.counter_value("engine_checkpoints_total"), Some(1));
    assert_eq!(tel.gauge_value("engine_epoch"), Some(engine.epoch()));
    assert_eq!(tel.gauge_value("engine_shards"), Some(6));
    assert_eq!(
        tel.gauge_value("engine_active_jobs"),
        Some(engine.active_count() as u64)
    );
    // The adapted exact-cost gauges agree with the Metrics percentiles.
    assert_eq!(tel.gauge_value("engine_realloc_cost_p50"), Some(m.cost.p50));
    assert_eq!(tel.gauge_value("engine_realloc_cost_p99"), Some(m.cost.p99));
    // One flush-events sample per flush; their sum is every record.
    let events = tel
        .histogram_snapshot("engine_flush_events")
        .expect("flushes recorded");
    assert_eq!(events.count(), engine.batches());
    assert_eq!(events.sum(), m.requests + m.failed);
    // The rendered exposition carries the same numbers.
    let text = tel.render_text();
    assert_eq!(
        parse_sample(&text, "engine_requests_total"),
        Some(m.requests)
    );
    assert_eq!(
        parse_sample(&text, "engine_flush_events_count"),
        Some(engine.batches())
    );
    // The flush trace is populated (span begin/end pairs).
    let trace = tel.trace_events();
    assert!(trace.iter().any(|e| e.key == "flush"), "flush spans traced");
    assert!(trace.iter().any(|e| e.key == "epoch"), "resize traced");
    assert!(
        trace.iter().any(|e| e.key == "checkpoint"),
        "checkpoint traced"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Telemetry must be a pure observer: with and without it, the
    /// engine produces identical placements, costs, journal bytes, and
    /// state digest.
    #[test]
    fn instrumentation_never_perturbs_outcomes(seed in 0u64..200) {
        let shards = 3 + (seed as usize % 3);
        let seq = churn(seed, shards, 300);
        let run = |instrument: bool| {
            let tel = Telemetry::new();
            let mut e = Engine::new(config(shards));
            if instrument {
                e.attach_telemetry(&tel);
            }
            e.ingest(&seq, 48);
            e.resize(shards + 1).expect("grow");
            e.ingest(&churn(seed + 1, shards, 100), 48);
            e
        };
        let plain = run(false);
        let instrumented = run(true);
        prop_assert_eq!(plain.placements(), instrumented.placements());
        prop_assert_eq!(plain.total_costs(), instrumented.total_costs());
        prop_assert_eq!(plain.state_digest(), instrumented.state_digest());
        prop_assert_eq!(
            plain.journal().unwrap().to_text(),
            instrumented.journal().unwrap().to_text()
        );
    }

    /// Under a deterministic manual clock the registry is a pure
    /// function of the workload: snapshot → restore is byte-identical,
    /// and replaying the same workload (fresh engine, fresh registry,
    /// resize included) reproduces the same snapshot text.
    #[test]
    fn registry_snapshot_restore_replay_byte_identical(seed in 0u64..200) {
        let (tel_a, _engine_a) = instrumented_run(seed, 4, 240);
        let snapshot = tel_a.snapshot_text();

        // Restore into a fresh registry: byte-identical round trip.
        let tel_b = Telemetry::with_clock(Clock::manual(), 256);
        tel_b.restore_registry(&snapshot).expect("snapshot restores");
        prop_assert_eq!(tel_b.snapshot_text(), snapshot.clone());
        prop_assert_eq!(tel_b.render_text(), tel_a.render_text());

        // Replay the workload end-to-end: same registry bytes.
        let (tel_c, _engine_c) = instrumented_run(seed, 4, 240);
        prop_assert_eq!(tel_c.snapshot_text(), snapshot);
    }
}
