//! Engine-level properties: routing determinism/stability, single-shard
//! equivalence with the bare §4 scheduler, journal round-trip + replay,
//! and parallel/sequential flush agreement — all over churn workloads
//! generated with the Lemma 2 density guarantee.

use proptest::prelude::*;
use realloc_core::{JobId, Request, RequestSeq, SingleMachineReallocator, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig, Journal, TenantId};
use realloc_reservation::ReservationScheduler;
use realloc_workloads::{ChurnConfig, ChurnGenerator};

fn config(shards: usize, backend: BackendKind) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend,
        parallel: false,
        journal: true,
        ..EngineConfig::default()
    }
}

/// Aligned single-machine churn at γ = 8 — accepted verbatim by the bare
/// reservation scheduler, so engine and scheduler see identical streams.
fn aligned_churn(seed: u64, len: usize) -> RequestSeq {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![1, 4, 16, 64, 256],
            target_active: 96,
            insert_bias: 0.6,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len)
}

/// Multi-shard churn: the density budget is provisioned for `shards`
/// single-machine backends.
fn sharded_churn(seed: u64, shards: usize, len: usize) -> RequestSeq {
    let mut gen = ChurnGenerator::new(
        ChurnConfig {
            machines: shards,
            gamma: 8,
            horizon: 1 << 12,
            spans: vec![1, 4, 16, 64],
            target_active: 48 * shards,
            insert_bias: 0.6,
            unaligned: false,
        },
        seed,
    );
    gen.generate(len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---------------- routing ----------------

    #[test]
    fn routing_is_deterministic_and_stable(
        ids in prop::collection::vec(0u64..1_000_000, 1..200),
        shards in 1usize..16,
    ) {
        let a = Engine::new(config(shards, BackendKind::Reservation));
        let mut b = Engine::new(config(shards, BackendKind::Reservation));
        // Give engine b a history before querying: routing must not
        // depend on traffic, only on the id and the shard count.
        for i in 0..50u64 {
            b.submit(Request::Insert {
                id: JobId(2_000_000 + i),
                window: Window::new(0, 1 << 10),
            });
        }
        b.flush();
        for &id in &ids {
            let shard = a.shard_of(JobId(id));
            prop_assert!(shard < shards);
            prop_assert_eq!(shard, b.shard_of(JobId(id)), "routing drifted");
            // Stable under repeated queries.
            prop_assert_eq!(shard, a.shard_of(JobId(id)));
        }
    }

    // ---------------- single-shard equivalence ----------------

    #[test]
    fn single_shard_engine_matches_bare_reservation(seed in 0u64..500) {
        let seq = aligned_churn(seed, 400);

        let mut engine = Engine::new(config(1, BackendKind::Reservation));
        let (ok, failed) = engine.ingest(&seq, 64);
        prop_assert_eq!(failed, 0, "density-certified stream rejected");
        prop_assert_eq!(ok, seq.len());

        let mut bare = ReservationScheduler::new();
        let mut bare_reallocs = 0u64;
        for &r in seq.requests() {
            let moves = match r {
                Request::Insert { id, window } => bare.insert(id, window).unwrap(),
                Request::Delete { id } => bare.delete(id).unwrap(),
            };
            // Net per request, as the engine's meter does.
            let outcome = realloc_core::RequestOutcome {
                moves: moves.iter().map(|m| m.on_machine(0)).collect(),
            };
            bare_reallocs += outcome.netted().reallocation_cost();
        }

        // Identical placements…
        let engine_placements: Vec<(JobId, u64)> = engine
            .placements()
            .into_iter()
            .map(|(id, shard, p)| {
                assert_eq!(shard, 0);
                assert_eq!(p.machine, 0);
                (id, p.slot)
            })
            .collect();
        let mut bare_placements: Vec<(JobId, u64)> = bare.assignments();
        bare_placements.sort_by_key(|&(id, _)| id);
        prop_assert_eq!(engine_placements, bare_placements);

        // …and identical total reallocation cost.
        prop_assert_eq!(engine.total_costs().reallocations, bare_reallocs);
    }

    // ---------------- sharded conservation + parallel agreement ----------------

    #[test]
    fn sharded_engine_conserves_and_parallel_agrees(
        seed in 0u64..300,
        shards in 2usize..9,
    ) {
        let seq = sharded_churn(seed, shards, 600);
        let inserts = seq.iter().filter(|r| r.is_insert()).count();
        let deletes = seq.len() - inserts;

        let run = |parallel: bool| {
            let mut cfg = config(shards, BackendKind::Reservation);
            cfg.parallel = parallel;
            let mut e = Engine::new(cfg);
            if parallel {
                // Exercise the real worker pool even on single-core CI
                // hosts, where the engine would otherwise drain inline.
                e.force_parallel_pool();
                assert!(e.uses_pool());
            }
            let (ok, failed) = e.ingest(&seq, 128);
            (e, ok, failed)
        };
        let (seq_engine, ok, failed) = run(false);
        prop_assert_eq!(failed, 0, "density-certified stream rejected");
        prop_assert_eq!(ok, seq.len());
        prop_assert_eq!(seq_engine.active_count(), inserts - deletes);

        let m = seq_engine.metrics();
        prop_assert_eq!(m.requests, seq.len() as u64);
        prop_assert_eq!(
            m.shards.iter().map(|s| s.active_jobs).sum::<u64>(),
            (inserts - deletes) as u64
        );

        let (par_engine, par_ok, par_failed) = run(true);
        prop_assert_eq!((par_ok, par_failed), (ok, failed));
        prop_assert_eq!(par_engine.placements(), seq_engine.placements());
        prop_assert!(par_engine
            .journal()
            .unwrap()
            .iter_events()
            .eq(seq_engine.journal().unwrap().iter_events()));
        // Stronger than event equality: the serialized journals are
        // byte-identical — a pool-drained engine is indistinguishable
        // from a sequential one even at the recording layer.
        prop_assert_eq!(
            par_engine.journal().unwrap().to_text(),
            seq_engine.journal().unwrap().to_text()
        );
    }

    // ---------------- journal ----------------

    #[test]
    fn journal_text_round_trips_and_replays(seed in 0u64..300) {
        let seq = sharded_churn(seed, 4, 400);
        let mut engine = Engine::new(config(4, BackendKind::TheoremOne { gamma: 8 }));
        engine.ingest(&seq, 64);

        let journal = engine.journal().unwrap();
        prop_assert_eq!(journal.iter_events().count(), seq.len());

        // Text round trip preserves config and every event.
        let text = journal.to_text();
        let parsed = Journal::from_text(&text).unwrap();
        prop_assert_eq!(parsed.config().shards, 4);
        prop_assert_eq!(parsed.config().backend, BackendKind::TheoremOne { gamma: 8 });
        prop_assert!(parsed.iter_events().eq(journal.iter_events()));

        // Deterministic replay reproduces outcomes and final state.
        let replayed = parsed.replay().unwrap();
        prop_assert_eq!(replayed.placements(), engine.placements());
        prop_assert_eq!(replayed.total_costs(), engine.total_costs());
    }
}

#[test]
fn pool_flushes_journal_byte_identical_to_sequential() {
    // Deterministic multi-batch run with interleaved failures
    // (duplicates, unknown deletes): the pool-drained journal must be
    // byte-for-byte the sequential journal, across every batch boundary.
    let stream: Vec<Request> = (0..400u64)
        .map(|i| match i % 5 {
            0..=2 => Request::Insert {
                id: JobId(i / 5 * 3 + i % 5),
                window: Window::new((i % 8) * 512, (i % 8) * 512 + 512),
            },
            3 => Request::Insert {
                id: JobId(i / 5 * 3), // duplicate → rejected, journaled
                window: Window::new(0, 512),
            },
            _ => Request::Delete {
                id: JobId(if i % 10 == 4 { i / 5 * 3 } else { 999_999 + i }),
            },
        })
        .collect();
    let run = |parallel: bool| {
        let mut e = Engine::new(config(8, BackendKind::TheoremOne { gamma: 8 }));
        if parallel {
            e.force_parallel_pool();
            assert!(e.uses_pool());
        }
        for chunk in stream.chunks(64) {
            for &r in chunk {
                e.submit(r);
            }
            e.flush();
        }
        e
    };
    let sequential = run(false);
    let pooled = run(true);
    assert!(!sequential.uses_pool());
    assert_eq!(
        pooled.journal().unwrap().to_text(),
        sequential.journal().unwrap().to_text(),
        "pool drain must be byte-identical at the journal layer"
    );
    assert_eq!(pooled.placements(), sequential.placements());
    assert_eq!(pooled.batches(), sequential.batches());
}

#[test]
fn journal_records_failures_and_replay_detects_tampering() {
    let mut engine = Engine::new(config(2, BackendKind::Reservation));
    engine.submit(Request::Insert {
        id: JobId(1),
        window: Window::new(0, 8),
    });
    engine.submit(Request::Insert {
        id: JobId(1), // duplicate → rejected, but journaled
        window: Window::new(0, 8),
    });
    engine.flush();
    let text = engine.journal().unwrap().to_text();
    assert!(text.contains("err duplicate"), "journal: {text}");
    assert!(Journal::from_text(&text).unwrap().replay().is_ok());

    // Flip the recorded cost of the first insert: replay must diverge.
    let tampered = text.replace("ok 0 0", "ok 7 0");
    let error = Journal::from_text(&tampered)
        .unwrap()
        .replay()
        .expect_err("tampered journal must not replay cleanly");
    match error {
        realloc_engine::ReplayError::Divergence(d) => assert_eq!(d.index, 0),
        other => panic!("expected a divergence, got {other}"),
    }
}

#[test]
fn tenants_share_the_engine_without_collisions() {
    let mut engine = Engine::new(config(4, BackendKind::TheoremOne { gamma: 8 }));
    let mut feed = realloc_workloads::TenantFeed::new(
        (0u16..3)
            .map(|t| {
                (
                    t + 1,
                    ChurnGenerator::new(
                        ChurnConfig {
                            machines: 2,
                            gamma: 8,
                            horizon: 1 << 10,
                            spans: vec![1, 4, 16],
                            target_active: 32,
                            insert_bias: 0.6,
                            unaligned: false,
                        },
                        t as u64,
                    ),
                )
            })
            .collect(),
    );
    let mut submitted = 0usize;
    while let Some(batch) = feed.next_batch(16) {
        for (tenant, request) in &batch {
            engine.submit_for(TenantId(*tenant), *request).unwrap();
        }
        submitted += batch.len();
        engine.flush();
        if submitted >= 600 {
            break;
        }
    }
    let m = engine.metrics();
    assert_eq!(m.requests + m.failed, submitted as u64);
    assert_eq!(
        m.failed, 0,
        "tenant streams are density-certified per tenant"
    );
    // All three tenants' jobs are live simultaneously in disjoint id slices.
    let mut tenants_seen: Vec<u64> = engine
        .placements()
        .iter()
        .map(|(id, _, _)| id.0 >> 48)
        .collect();
    tenants_seen.sort_unstable();
    tenants_seen.dedup();
    assert_eq!(tenants_seen, vec![1, 2, 3]);
}
