//! # realloc-engine
//!
//! A sharded, batched scheduling *service* over the SPAA'13 reallocation
//! schedulers — the serving layer that turns the algorithm crates into a
//! system:
//!
//! * **Sharding** — requests are routed across `S` independent shards by
//!   a stable hash of the (tenant-resolved) job id ([`Engine::shard_of`]).
//!   Each shard owns one full scheduler ([`backend`]): a machine group
//!   driven through the §3/§5 wrapper, or a natively multi-machine
//!   baseline. Shards share no state, so a flush drains them
//!   concurrently with plain disjoint borrows ([`shard`]).
//! * **Batching** — [`Engine::submit`] only enqueues (per-shard FIFO
//!   queues); [`Engine::flush`] services everything queued and returns a
//!   [`batch::BatchReport`]. Rejected requests are reported, never fatal:
//!   a multi-tenant service keeps serving the rest of the stream.
//! * **Multi-tenancy** — [`Engine::submit_for`] namespaces each tenant's
//!   job ids into disjoint ranges of the global id space, so tenants
//!   cannot collide (or address each other's jobs) as long as untrusted
//!   callers are only ever handed `submit_for`; the raw [`Engine::submit`]
//!   interface spans the whole id space and is for trusted embedders and
//!   journal replay.
//! * **Telemetry** — per-shard [`realloc_core::CostMeter`]s aggregate
//!   into a [`metrics::Metrics`] snapshot: totals, per-request
//!   reallocation-cost p50/p95/p99, and router balance.
//! * **Durability** — an optional segmented journal ([`journal::Journal`])
//!   records every request and its netted outcome; [`Engine::checkpoint`]
//!   snapshots the full engine state (every layer implements
//!   [`realloc_core::Restorable`]) into the journal and truncates sealed
//!   segments beyond [`EngineConfig::retained_segments`], so
//!   [`Engine::recover`] rebuilds the exact pre-crash engine from the
//!   latest checkpoint plus the journal *tail* — O(tail), not
//!   O(history) — while [`journal::Journal::replay`] keeps the full
//!   audit path with divergence detection. Shard/engine migration is
//!   "snapshot, ship, restore" ([`Engine::restore_snapshot`]).
//! * **Elasticity** — a hot engine grows and shrinks **online**:
//!   [`Engine::resize`] snapshot-ships every affected job onto a freshly
//!   routed shard set without dropping queued requests or zeroing
//!   telemetry, and [`Engine::rebalance`] isolates a dominant tenant
//!   onto a dedicated shard. The router is epoch-versioned
//!   ([`realloc_core::router::Router`]); every resize appends an epoch
//!   record to the journal (v3 framing), so replay and recovery
//!   re-apply the same routing changes at the same positions and land
//!   on byte-identical placements.
//!
//! # Quickstart
//!
//! ```
//! use realloc_engine::{BackendKind, Engine, EngineConfig};
//! use realloc_core::{JobId, Request, Window};
//!
//! let mut engine = Engine::new(EngineConfig {
//!     shards: 4,
//!     backend: BackendKind::TheoremOne { gamma: 8 },
//!     ..EngineConfig::default()
//! });
//!
//! for i in 0..64u64 {
//!     engine.submit(Request::Insert {
//!         id: JobId(i),
//!         window: Window::new(0, 1 << 10),
//!     });
//! }
//! let report = engine.flush();
//! assert_eq!(report.processed(), 64);
//! assert_eq!(engine.active_count(), 64);
//!
//! let m = engine.metrics();
//! assert_eq!(m.requests, 64);
//! assert!(m.shards.iter().all(|s| s.active_jobs > 0), "all shards used");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod journal;
pub mod metrics;
pub mod pool;
pub mod shard;
mod tele;

pub use backend::{Backend, BackendKind};
pub use batch::BatchReport;
pub use journal::{
    Checkpoint, EpochRecord, Journal, JournalCursor, JournalEvent, JournalRecord, Records,
    ReplayDivergence, ReplayError,
};
pub use metrics::{Carryover, Metrics};
pub use realloc_core::router::Router as EngineRouter;

use crate::journal::Costs;
use crate::pool::WorkerPool;
use crate::shard::{Shard, ShardDrain};
use crate::tele::EngineTele;
use realloc_core::cost::Placement;
use realloc_core::router::{tenant_of, Router, RouterError};
use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, Request, RequestSeq, ValidationError, Window};
use realloc_telemetry::{Histogram, Severity, Telemetry, TraceCtx};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks one shard cell (uncontended outside a concurrent flush).
pub(crate) fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().expect("shard mutex poisoned")
}

/// A tenant namespace. Each tenant's external job ids live in a disjoint
/// slice of the global [`JobId`] space (see [`Engine::submit_for`]).
///
/// `TenantId(0)` is **reserved**: its slice coincides with the low ids of
/// the direct [`Engine::submit`] space, so handing it to `submit_for`
/// would let a "tenant" address direct submitters' jobs. `submit_for`
/// rejects it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

/// Bits of the global job-id space reserved for the external id; the
/// tenant id occupies the bits above. (Defined in `realloc_core::router`
/// so routing tables can pin tenants without depending on this crate.)
pub use realloc_core::router::TENANT_SHIFT;

/// A durable tee under the in-memory journal: everything the journal
/// records — batches of events, epoch records, checkpoints — is also
/// handed to the attached sink, and [`Engine::flush_durable`] calls
/// [`DurabilitySink::sync`] once per flush (group commit) so its `Ok`
/// means *on stable storage*, not just *in memory*.
///
/// The on-disk implementation lives in `realloc-store` (this crate
/// cannot depend on it — the store decodes through [`Journal`], so the
/// dependency points the other way). Error strings are sticky at the
/// engine level: after the first sink failure the engine stops teeing
/// and [`Engine::durability_error`] reports the cause, while in-memory
/// serving continues unaffected.
pub trait DurabilitySink: Send + std::fmt::Debug {
    /// Appends one flush's events (all share one batch number). Called
    /// once per non-empty flush; ordering across calls matches the
    /// journal's record order.
    fn append_batch(&mut self, events: &[JournalEvent]) -> Result<(), String>;

    /// Appends an epoch record at its position in the stream.
    fn append_epoch(&mut self, record: &EpochRecord) -> Result<(), String>;

    /// Persists a checkpoint and seals the current on-disk segment. The
    /// implementation must make this atomic and durable on its own
    /// (temp + fsync + rename) — the engine does not follow up with a
    /// [`DurabilitySink::sync`].
    fn checkpoint(&mut self, checkpoint: &Checkpoint) -> Result<(), String>;

    /// Group-commit barrier: everything appended so far must be on
    /// stable storage when this returns `Ok`.
    fn sync(&mut self) -> Result<(), String>;
}

/// Flush-coalescing policy ([`Engine::set_flush_coalescing`]): lets a
/// periodic flusher defer small batches so downstream consumers of the
/// recorded stream — the durable tee, replication frames — see fewer,
/// larger batches. A flush is deferred while fewer than `min_batch`
/// requests are queued **and** fewer than `max_defer` consecutive
/// flushes have already been deferred; the cap bounds added latency, so
/// a trickle of requests still lands within `max_defer + 1` ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Queue depth at which a flush always proceeds.
    pub min_batch: usize,
    /// Consecutive deferrals before a flush proceeds regardless.
    pub max_defer: u32,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            min_batch: 64,
            max_defer: 4,
        }
    }
}

/// How a caller wants its queued requests serviced — the flush
/// scheduling hook used by front-ends ([`Engine::flush_batch`]) so the
/// policy choice lives in configuration rather than in three different
/// call sites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlushMode {
    /// [`Engine::flush`]: drain now, report every outcome.
    #[default]
    Immediate,
    /// [`Engine::flush_coalesced`]: may defer under the installed
    /// [`CoalesceConfig`]; `None` means *accepted, not yet serviced*.
    Coalesced,
    /// [`Engine::flush_durable`]: drain now and group-commit to the
    /// attached durable sink before reporting success.
    Durable,
}

/// Engine configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of independent shards (`>= 1`).
    pub shards: usize,
    /// Machines per shard backend.
    pub machines_per_shard: usize,
    /// Scheduler each shard runs.
    pub backend: BackendKind,
    /// Drain shards on a **persistent worker pool** during
    /// [`Engine::flush`]: `min(shards, available_parallelism)` long-lived
    /// threads spawned at construction, each draining a contiguous chunk
    /// of shards (inline when the host offers no parallelism — enabling
    /// this is never a pessimization). Results are identical either way
    /// (shards are independent and the flush is a full barrier); this
    /// only trades a channel round-trip per flush against parallel drain
    /// time. See `BENCH_engine_ingest.json`.
    pub parallel: bool,
    /// Record every serviced request into an in-memory [`Journal`].
    pub journal: bool,
    /// How many **sealed** journal segments to retain after a
    /// checkpoint (the open tail is always kept). Each
    /// [`Engine::checkpoint`] seals the current segment; once a
    /// checkpoint exists, older segments are redundant for recovery, so
    /// anything beyond this cap is dropped — bounding the journal's
    /// memory instead of growing without bound from genesis. `0` keeps
    /// only the latest checkpoint plus the tail (minimum-footprint
    /// recovery); larger values keep audit/replay depth.
    pub retained_segments: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            machines_per_shard: 1,
            backend: BackendKind::TheoremOne { gamma: 8 },
            parallel: false,
            journal: false,
            retained_segments: 4,
        }
    }
}

/// The sharded, batched scheduling service. See the crate docs.
///
/// Shards live behind `Arc<Mutex<_>>` so the persistent worker pool can
/// drain them without `unsafe`; every mutex is uncontended outside a
/// concurrent flush (the engine is the only other lock holder).
pub struct Engine {
    cfg: EngineConfig,
    /// Versioned routing table; `cfg.shards` always equals
    /// `router.shards()` (both track the *current* size after resizes).
    router: Router,
    shards: Vec<Arc<Mutex<Shard>>>,
    /// Telemetry inherited from shards retired by resizes.
    carry: Carryover,
    /// Persistent drain workers, present iff `cfg.parallel` with > 1 shard.
    pool: Option<WorkerPool>,
    /// `force_parallel_pool` was called: reshards rebuild a forced pool
    /// too, so the test hook survives resizes.
    pool_forced: bool,
    journal: Option<Journal>,
    batches: u64,
    /// Optional durable tee under the journal
    /// ([`Engine::attach_durability`]). Runtime-only, like telemetry:
    /// never part of snapshots.
    sink: Option<Box<dyn DurabilitySink>>,
    /// First sink failure, sticky: teeing stops, serving continues, and
    /// [`Engine::flush_durable`] keeps failing until a fresh sink is
    /// attached.
    durability_error: Option<String>,
    /// Resolved observability instruments, present iff
    /// [`Engine::attach_telemetry`] was given an enabled registry.
    /// Runtime-only: excluded from snapshots so replication digests stay
    /// a pure function of the replayed event stream.
    tele: Option<Box<EngineTele>>,
    /// Flush-coalescing policy ([`Engine::set_flush_coalescing`]).
    /// Runtime-only, like the sink and telemetry: never part of
    /// snapshots — the recorded stream stays a pure function of which
    /// flushes actually happened.
    coalesce: Option<CoalesceConfig>,
    /// Consecutive [`Engine::flush_coalesced`] calls deferred so far.
    deferred: u32,
    /// Causal trace context for the *next* serviced flush (set by
    /// [`Engine::flush_batch_traced`]). Runtime metadata only: it tags
    /// trace-ring events and replication-frame annotations, never
    /// journal text or digested state. Survives coalescing deferrals —
    /// a deferred tick leaves it armed for the flush that actually
    /// services the queue.
    pending_trace: Option<TraceCtx>,
    /// Trace contexts of recently serviced batches, by batch number
    /// (bounded to the newest [`FLUSH_TRACE_WINDOW`]): lets replication
    /// stamping and the durable-fsync span look a batch's trace back up
    /// after the flush consumed `pending_trace`.
    flush_traces: BTreeMap<u64, TraceCtx>,
}

/// How many recent batches keep their trace context for lookup by
/// [`Engine::trace_of_batch`].
const FLUSH_TRACE_WINDOW: usize = 16;

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.cfg)
            .field("batches", &self.batches)
            .field("queued", &self.queued())
            .field("active", &self.active_count())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine: `cfg.shards` shards, each running a fresh
    /// `cfg.backend` on `cfg.machines_per_shard` machines.
    pub fn new(cfg: EngineConfig) -> Self {
        assert!(cfg.shards >= 1, "engine needs at least one shard");
        assert!(
            cfg.machines_per_shard >= 1,
            "shards need at least one machine"
        );
        let shards: Vec<Arc<Mutex<Shard>>> = (0..cfg.shards)
            .map(|i| {
                Arc::new(Mutex::new(Shard::new(
                    i,
                    cfg.backend,
                    cfg.machines_per_shard,
                )))
            })
            .collect();
        let pool = Self::build_pool(&cfg, &shards);
        let journal = cfg.journal.then(|| Journal::new(cfg.clone()));
        Engine {
            router: Router::new(cfg.shards),
            cfg,
            shards,
            carry: Carryover::default(),
            pool,
            pool_forced: false,
            journal,
            batches: 0,
            sink: None,
            durability_error: None,
            tele: None,
            coalesce: None,
            deferred: 0,
            pending_trace: None,
            flush_traces: BTreeMap::new(),
        }
    }

    /// Attaches a telemetry registry: resolves every engine instrument
    /// once (hot paths never touch the registry's name map again),
    /// installs drain-path handles on every shard, and publishes the
    /// current gauges. Attaching [`realloc_telemetry::disabled`] (or any
    /// disabled handle) detaches — the engine reverts to zero-overhead
    /// uninstrumented paths.
    ///
    /// Survives resizes: counters/histograms accumulate at the engine
    /// level and fresh shards get handles re-installed, so lifetime
    /// totals keep counting across [`Engine::resize`] exactly like the
    /// exact-metrics [`Carryover`] path. Telemetry state is **not** part
    /// of engine snapshots — restore/recovery paths start uninstrumented
    /// and embedders re-attach (persist the registry itself with
    /// [`realloc_telemetry::Telemetry::snapshot_text`] if continuity
    /// across restarts is wanted).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = EngineTele::build(telemetry);
        self.apply_shard_tele();
        if let Some(tele) = &self.tele {
            tele.epoch.set(self.router.epoch());
            tele.shards.set(self.router.shards() as u64);
            tele.active_jobs.set(self.active_count() as u64);
        }
    }

    /// Installs the current drain-path instrument bundle on every live
    /// shard (re-run after reshards swap in fresh shards).
    fn apply_shard_tele(&self) {
        let bundle = self.tele.as_ref().map(|t| t.shard_tele());
        for cell in &self.shards {
            lock(cell).set_telemetry(bundle.clone());
        }
    }

    /// A pool with fewer than two hardware threads behind it can only
    /// add context switches — degrade to inline drains so `parallel`
    /// is never a pessimization. (Shared by `new` and snapshot restore.)
    fn build_pool(cfg: &EngineConfig, shards: &[Arc<Mutex<Shard>>]) -> Option<WorkerPool> {
        (cfg.parallel && cfg.shards > 1 && WorkerPool::threads_for(cfg.shards) > 1)
            .then(|| WorkerPool::new(shards))
    }

    /// The forced (test-hook) pool: production sizing floored at two
    /// workers, so cross-worker chunking is exercised even when the
    /// host's parallelism would drain inline. Shared by
    /// [`Engine::force_parallel_pool`] and the reshard rebuild so the
    /// two can never drift apart. `None` with a single shard.
    fn forced_pool(shards: &[Arc<Mutex<Shard>>]) -> Option<WorkerPool> {
        (shards.len() > 1).then(|| {
            let threads = WorkerPool::threads_for(shards.len()).max(2);
            WorkerPool::with_threads(shards, threads)
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Test hook: build the persistent worker pool — with **multiple
    /// workers** — even when the host's available parallelism would make
    /// the engine drain inline (see [`EngineConfig::parallel`]). Lets
    /// the pool/journal equivalence property tests exercise the real
    /// cross-worker barrier and chunk reassembly on single-core CI
    /// runners. Thread count is derived from [`WorkerPool::threads_for`]
    /// — the production sizing — floored at two workers so the hook
    /// still forces real cross-thread chunking on single-core hosts;
    /// on multi-core hosts it therefore matches what
    /// `EngineConfig::parallel` would build. Sticky: reshards rebuild a
    /// forced pool too. No-op with a single shard.
    #[doc(hidden)]
    pub fn force_parallel_pool(&mut self) {
        self.pool_forced = true;
        if self.pool.is_none() {
            self.pool = Self::forced_pool(&self.shards);
        }
    }

    /// Whether flushes currently drain on the worker pool.
    pub fn uses_pool(&self) -> bool {
        self.pool.is_some()
    }

    /// The shard a job id routes to — a pure function of the id and the
    /// current routing table ([`Router`]: FNV-1a hash over the unpinned
    /// shards, tenant pins honored first), so routing is deterministic,
    /// stable across engine instances at the same epoch, and maps a
    /// job's delete to the shard that serviced its insert. Resizes swap
    /// the table ([`Engine::resize`]) and physically re-home every
    /// affected job, so the invariant holds across epochs too.
    pub fn shard_of(&self, id: JobId) -> usize {
        self.router.route(id)
    }

    /// The current routing table.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The current routing epoch (0 until the first resize/rebalance).
    pub fn epoch(&self) -> u64 {
        self.router.epoch()
    }

    /// Enqueues a request for the next flush, addressing the **raw
    /// global id space** — including every tenant's slice.
    ///
    /// This is the privileged interface for trusted callers (embedders
    /// driving a single id space, harnesses, and [`Journal::replay`],
    /// which must restore tenant-namespaced ids verbatim). Code serving
    /// untrusted tenants must go through [`Engine::submit_for`], which
    /// confines each tenant to its own slice; handing tenants `submit`
    /// would let them address each other's jobs.
    pub fn submit(&mut self, request: Request) {
        if let Some(tele) = &mut self.tele {
            // Queue-wait phase start: one clock read per batch (the
            // branch below is the only per-request telemetry cost).
            if tele.first_enqueue_at.is_none() {
                tele.first_enqueue_at = Some(tele.now());
            }
        }
        let shard = self.shard_of(request.job_id());
        lock(&self.shards[shard]).enqueue(request);
    }

    /// Enqueues every request of a sequence (raw id space; see
    /// [`Engine::submit`]).
    pub fn submit_seq(&mut self, seq: &RequestSeq) {
        for &r in seq.requests() {
            self.submit(r);
        }
    }

    /// Translates a tenant's external job id into its slice of the
    /// global id space — the pure half of [`Engine::submit_for`], also
    /// used by read-side entry points ([`Engine::window_of_for`]) and by
    /// serving front-ends that need the global id before deciding
    /// whether to submit at all.
    ///
    /// Fails if `tenant` is the reserved [`TenantId`]`(0)` or the
    /// external id does not fit the per-tenant id space (`2^48` ids per
    /// tenant).
    pub fn global_id_of(tenant: TenantId, external: JobId) -> Result<JobId, Error> {
        if tenant.0 == 0 {
            return Err(Error::UnsupportedJob {
                job: external,
                detail: "TenantId(0) is reserved (it aliases the direct submit() id space)"
                    .to_string(),
            });
        }
        if external.0 >> TENANT_SHIFT != 0 {
            return Err(Error::UnsupportedJob {
                job: external,
                detail: format!(
                    "external id {} exceeds the {}-bit per-tenant id space",
                    external.0, TENANT_SHIFT
                ),
            });
        }
        Ok(JobId(((tenant.0 as u64) << TENANT_SHIFT) | external.0))
    }

    /// Enqueues a request on behalf of `tenant`, translating its external
    /// job id into the tenant's slice of the global id space. Returns the
    /// global id (for correlating journal entries and placements).
    ///
    /// Fails under the [`Engine::global_id_of`] rules: the reserved
    /// [`TenantId`]`(0)`, or an external id outside the per-tenant space.
    pub fn submit_for(&mut self, tenant: TenantId, request: Request) -> Result<JobId, Error> {
        let global = Self::global_id_of(tenant, request.job_id())?;
        let namespaced = match request {
            Request::Insert { window, .. } => Request::Insert { id: global, window },
            Request::Delete { .. } => Request::Delete { id: global },
        };
        self.submit(namespaced);
        Ok(global)
    }

    /// Original window of a tenant's active job, addressed by its
    /// **external** id — the read-side companion of
    /// [`Engine::submit_for`], confined to the tenant's own slice of the
    /// id space exactly like the write path.
    pub fn window_of_for(
        &self,
        tenant: TenantId,
        external: JobId,
    ) -> Result<Option<Window>, Error> {
        let global = Self::global_id_of(tenant, external)?;
        Ok(self.window_of(global))
    }

    /// Jobs currently scheduled for one tenant, across all shards (the
    /// per-tenant slice of [`Engine::active_count`]; used by serving
    /// front-ends to report tenant occupancy).
    pub fn active_count_for(&self, tenant: TenantId) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .active_jobs()
                    .iter()
                    .filter(|(id, _)| tenant_of(*id) == tenant.0 as u64)
                    .count()
            })
            .sum()
    }

    /// Requests queued across all shards, waiting for the next flush.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| lock(s).queued()).sum()
    }

    /// Services every queued request. Shards drain concurrently on the
    /// persistent worker pool when the engine is configured `parallel`;
    /// each shard processes its own queue in FIFO order either way, so
    /// results are identical.
    pub fn flush(&mut self) -> BatchReport {
        // Any serviced flush breaks the chain of *consecutive*
        // deferrals the coalescing policy counts: after a barrier
        // (explicit flush, checkpoint, flush_durable) consumed the
        // queue, the deferral budget starts fresh.
        self.deferred = 0;
        let trace = self.pending_trace.take();
        if let Some(tc) = trace {
            self.remember_trace(self.batches, tc);
        }
        if self.tele.is_some() {
            return self.flush_instrumented(trace);
        }
        let mut drains: Vec<ShardDrain> = Vec::with_capacity(self.shards.len());
        match &self.pool {
            Some(pool) => pool.drain_all(&mut drains),
            None => drains.extend(self.shards.iter().map(|s| lock(s).drain())),
        }
        let batch = self.batches;
        self.batches += 1;
        self.append_drains(batch, &drains);
        BatchReport::from_drains(batch, &drains)
    }

    /// Installs (or with `None` removes) the flush-coalescing policy
    /// consulted by [`Engine::flush_coalesced`]. Plain [`Engine::flush`]
    /// is never deferred — explicit flushes, checkpoints, and barriers
    /// always proceed. Runtime-only state: never part of snapshots.
    pub fn set_flush_coalescing(&mut self, cfg: Option<CoalesceConfig>) {
        self.coalesce = cfg;
        self.deferred = 0;
    }

    /// The installed flush-coalescing policy, if any.
    pub fn flush_coalescing(&self) -> Option<CoalesceConfig> {
        self.coalesce
    }

    /// A flush that may *defer*: under the installed [`CoalesceConfig`],
    /// a tick with fewer than `min_batch` requests queued returns `None`
    /// (nothing drained, nothing journaled) until `max_defer`
    /// consecutive deferrals have accumulated — so periodic flushers
    /// produce fewer, larger batches for the journal, the durable tee,
    /// and replication frames. Without a policy this is exactly
    /// [`Engine::flush`]. An empty queue always returns `None` without
    /// consuming a deferral (there is nothing to coalesce — and an
    /// empty flush would still bump the batch counter, which is
    /// digested state).
    pub fn flush_coalesced(&mut self) -> Option<BatchReport> {
        if self.queued() == 0 {
            return None;
        }
        if let Some(cfg) = self.coalesce {
            if self.queued() < cfg.min_batch && self.deferred < cfg.max_defer {
                self.deferred += 1;
                return None;
            }
        }
        self.deferred = 0;
        Some(self.flush())
    }

    /// The journal-append step of a flush (shared by the plain and
    /// instrumented paths so the recorded stream is identical), with the
    /// durable tee: when a sink is attached (and healthy), the same
    /// events are handed to it as one batch.
    fn append_drains(&mut self, batch: u64, drains: &[ShardDrain]) {
        let Some(journal) = &mut self.journal else {
            return;
        };
        let tee = self.sink.is_some() && self.durability_error.is_none();
        let mut teed: Vec<JournalEvent> = Vec::new();
        for (shard, drain) in drains.iter().enumerate() {
            for &(request, result) in &drain.records {
                let event = JournalEvent {
                    batch,
                    shard,
                    request,
                    result,
                };
                journal.append(event);
                if tee {
                    teed.push(event);
                }
            }
        }
        if tee && !teed.is_empty() {
            let result = self
                .sink
                .as_mut()
                .expect("tee checked presence")
                .append_batch(&teed);
            if let Err(e) = result {
                self.durability_fail(e);
            }
        }
    }

    /// Records the first sink failure: teeing stops (the on-disk stream
    /// must not continue past a hole), in-memory serving continues.
    fn durability_fail(&mut self, message: String) {
        if let Some(tele) = &self.tele {
            // An incident, not a plain point: fires the registered
            // flight-recorder hook so the ring around the failure is
            // dumped before it scrolls away.
            tele.t.incident("durability_error", 0, 0);
        }
        if self.durability_error.is_none() {
            self.durability_error = Some(message);
        }
    }

    /// Remembers a serviced batch's trace context for later lookup,
    /// keeping only the newest [`FLUSH_TRACE_WINDOW`] entries.
    fn remember_trace(&mut self, batch: u64, tc: TraceCtx) {
        self.flush_traces.insert(batch, tc);
        while self.flush_traces.len() > FLUSH_TRACE_WINDOW {
            self.flush_traces.pop_first();
        }
    }

    /// The causal trace context recorded for `batch`, when that batch
    /// was traced and recent (the engine keeps the newest
    /// [`FLUSH_TRACE_WINDOW`] entries). Replication stamping uses this
    /// to annotate the frame that ships a traced batch.
    pub fn trace_of_batch(&self, batch: u64) -> Option<TraceCtx> {
        self.flush_traces.get(&batch).copied()
    }

    /// [`Engine::flush`] with the telemetry bracketing: phase timings
    /// (queue wait → barrier → journal → total), a `flush` trace span,
    /// lifetime counters, and the exact-cost adaptation. Identical
    /// scheduling outcomes to the plain path — instrumentation only ever
    /// reads the drains.
    fn flush_instrumented(&mut self, trace: Option<TraceCtx>) -> BatchReport {
        let mut tele = self.tele.take().expect("flush checked tele presence");
        let start = tele.now();
        let span = match trace {
            Some(tc) => tele.t.span_in(tc, "flush", self.batches),
            None => tele.t.span("flush", self.batches),
        };
        if let Some(at) = tele.first_enqueue_at.take() {
            let wait = start.saturating_sub(at);
            tele.queue_wait.record(wait);
            if let Some(tc) = trace {
                tele.t
                    .point_in(tc, Severity::Debug, "queue", self.batches, wait);
            }
        }
        let mut drains: Vec<ShardDrain> = Vec::with_capacity(self.shards.len());
        match &self.pool {
            Some(pool) => pool.drain_all(&mut drains),
            None => drains.extend(self.shards.iter().map(|s| lock(s).drain())),
        }
        let after_drain = tele.now();
        tele.barrier.record(after_drain.saturating_sub(start));
        let batch = self.batches;
        self.batches += 1;
        self.append_drains(batch, &drains);
        if self.journal.is_some() {
            tele.journal_append
                .record(tele.now().saturating_sub(after_drain));
        }
        // Post-pass over the drain records: lifetime counters plus the
        // exact cost histogram adapted into the registry (gauges for the
        // exact percentiles, log buckets for the summary).
        let (mut ok, mut failed) = (0u64, 0u64);
        let (mut reallocations, mut migrations) = (0u64, 0u64);
        let mut costs_local = Histogram::new();
        for drain in &drains {
            for (_, result) in &drain.records {
                match result {
                    Ok(costs) => {
                        ok += 1;
                        reallocations += costs.reallocations;
                        migrations += costs.migrations;
                        tele.cost_exact.record(costs.reallocations);
                        costs_local.record(costs.reallocations);
                    }
                    Err(_) => failed += 1,
                }
            }
        }
        tele.requests_total.add(ok);
        tele.failed_total.add(failed);
        tele.reallocations_total.add(reallocations);
        tele.migrations_total.add(migrations);
        tele.flushes_total.inc();
        tele.flush_events.record(ok + failed);
        if !costs_local.is_empty() {
            tele.realloc_cost.merge(&costs_local);
        }
        tele.publish_cost_gauges();
        tele.active_jobs.set(self.active_count() as u64);
        tele.flush_total.record(tele.now().saturating_sub(start));
        drop(span);
        self.tele = Some(tele);
        BatchReport::from_drains(batch, &drains)
    }

    /// Submits a whole sequence in `batch_size`-request batches, flushing
    /// between batches. Returns `(processed, failed)` totals.
    pub fn ingest(&mut self, seq: &RequestSeq, batch_size: usize) -> (usize, usize) {
        assert!(batch_size >= 1);
        let (mut ok, mut failed) = (0usize, 0usize);
        for chunk in seq.requests().chunks(batch_size) {
            let route_start = self.tele.as_ref().map(|t| t.now());
            for &r in chunk {
                self.submit(r);
            }
            if let Some(t0) = route_start {
                let tele = self.tele.as_mut().expect("stamped above");
                let took = tele.now().saturating_sub(t0);
                tele.route.record(took);
            }
            let report = self.flush();
            ok += report.processed();
            failed += report.failed();
        }
        (ok, failed)
    }

    /// Jobs currently scheduled, across all shards.
    pub fn active_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).active_count()).sum()
    }

    /// Original window of an active job (on whichever shard holds it).
    pub fn window_of(&self, id: JobId) -> Option<Window> {
        lock(&self.shards[self.router.route(id)]).window_of(id)
    }

    /// Completed flushes.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Point-in-time telemetry snapshot. Lifetime totals include shards
    /// retired by resizes (the carryover); per-shard rows are live
    /// shards only.
    pub fn metrics(&self) -> Metrics {
        Metrics::collect(&self.shards, &self.carry, self.router.epoch())
    }

    /// The journal, when enabled in the config.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    // ------------------------------------------------------------------
    // Durable tee (see `DurabilitySink`)
    // ------------------------------------------------------------------

    /// Attaches a durable store under the journal: from now on every
    /// flushed batch, epoch record, and checkpoint is tee'd to `sink`,
    /// and [`Engine::flush_durable`] group-commits. Requires the
    /// in-memory journal ([`EngineConfig::journal`]) — the sink mirrors
    /// its stream. Replaces any previous sink and clears a sticky
    /// durability error.
    pub fn attach_durability(&mut self, sink: Box<dyn DurabilitySink>) -> Result<(), String> {
        if self.journal.is_none() {
            return Err(
                "durable store requires the in-memory journal (EngineConfig::journal)".to_string(),
            );
        }
        self.sink = Some(sink);
        self.durability_error = None;
        Ok(())
    }

    /// Detaches and returns the durable sink (e.g. to inspect or close
    /// it); the engine reverts to in-memory-only journaling.
    pub fn detach_durability(&mut self) -> Option<Box<dyn DurabilitySink>> {
        self.sink.take()
    }

    /// Whether a durable sink is currently attached.
    pub fn has_durability(&self) -> bool {
        self.sink.is_some()
    }

    /// The first durable-sink failure, if any. Sticky: once set, teeing
    /// has stopped and [`Engine::flush_durable`] fails until a fresh
    /// sink is attached. In-memory serving is unaffected.
    pub fn durability_error(&self) -> Option<&str> {
        self.durability_error.as_deref()
    }

    /// [`Engine::flush`] with a durability barrier: services everything
    /// queued, tees the batch to the attached sink, and group-commits
    /// ([`DurabilitySink::sync`] — one fsync per flush, however many
    /// events it carried). `Ok` therefore means *this batch survives a
    /// crash*. Fails when no sink is attached, when a previous tee
    /// already failed (sticky), or when the sync itself fails; the
    /// in-memory flush still happened in every error case.
    pub fn flush_durable(&mut self) -> Result<BatchReport, String> {
        let report = self.flush();
        if self.sink.is_none() {
            return Err("no durable store attached (Engine::attach_durability)".to_string());
        }
        if let Some(e) = &self.durability_error {
            return Err(e.clone());
        }
        // The flush consumed `pending_trace`; look the batch's context
        // back up so the group-commit fsync lands in the same trace.
        let trace = self.trace_of_batch(report.batch);
        let span = self.tele.as_ref().map(|tele| match trace {
            Some(tc) => tele.t.span_in(tc, "fsync", report.batch),
            None => tele.t.span("fsync", report.batch),
        });
        let synced = self.sink.as_mut().expect("checked above").sync();
        drop(span);
        if let Err(e) = synced {
            self.durability_fail(e.clone());
            return Err(e);
        }
        Ok(report)
    }

    /// Dispatches on [`FlushMode`] — one entry point for front-ends
    /// whose flush policy is configuration. `Ok(None)` only occurs in
    /// [`FlushMode::Coalesced`] and means the queued requests were
    /// accepted but deferred to a later flush; `Err` only occurs in
    /// [`FlushMode::Durable`] and carries the sink failure (the
    /// in-memory flush still happened).
    pub fn flush_batch(&mut self, mode: FlushMode) -> Result<Option<BatchReport>, String> {
        match mode {
            FlushMode::Immediate => Ok(Some(self.flush())),
            FlushMode::Coalesced => Ok(self.flush_coalesced()),
            FlushMode::Durable => self.flush_durable().map(Some),
        }
    }

    /// [`Engine::flush_batch`] carrying a sampled request's causal
    /// trace context as batch *metadata*: the flush's trace-ring spans
    /// (`queue`/`flush`/`fsync`) record under the trace id, and
    /// replication stamping annotates the frame that ships the batch.
    /// The context is runtime-only — it never enters journal text,
    /// snapshots, or digested state, so traced and untraced runs are
    /// byte-identical on the replication wire's digested content. A
    /// coalescing deferral keeps the context armed for the flush that
    /// eventually services the queue.
    pub fn flush_batch_traced(
        &mut self,
        mode: FlushMode,
        trace: Option<TraceCtx>,
    ) -> Result<Option<BatchReport>, String> {
        if let Some(tc) = trace {
            self.arm_trace(tc);
        }
        self.flush_batch(mode)
    }

    /// Arms a causal trace context for the next flush without flushing —
    /// for embedders whose flush is driven elsewhere (e.g. a replication
    /// group wrapping this engine). Equivalent to the trace half of
    /// [`Engine::flush_batch_traced`]; a later arm before the flush
    /// happens replaces the earlier context.
    pub fn arm_trace(&mut self, trace: TraceCtx) {
        self.pending_trace = Some(trace);
    }

    /// Every active job's `(shard, machine, slot)` placement, sorted by
    /// job id — the global schedule view used by equivalence tests and
    /// debugging tools.
    pub fn placements(&self) -> Vec<(JobId, usize, Placement)> {
        let mut out: Vec<(JobId, usize, Placement)> = self
            .shards
            .iter()
            .flat_map(|s| {
                let s = lock(s);
                s.snapshot()
                    .iter()
                    .map(|(id, p)| (id, s.id(), p))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|&(id, _, _)| id);
        out
    }

    /// Total netted costs serviced across shards (journal-free view of
    /// the headline numbers), resize carryover included.
    pub fn total_costs(&self) -> Costs {
        Costs {
            reallocations: self.carry.reallocations
                + self
                    .shards
                    .iter()
                    .map(|s| lock(s).total_reallocations())
                    .sum::<u64>(),
            migrations: self.carry.migrations
                + self
                    .shards
                    .iter()
                    .map(|s| lock(s).total_migrations())
                    .sum::<u64>(),
        }
    }

    /// Full engine invariant check: every shard's schedule validates
    /// against its active windows (placements in-window, no collisions,
    /// machines in range — [`realloc_core::schedule::validate`]) and
    /// every active job routes to the shard that holds it under the
    /// current table. The post-condition of every flush and every resize.
    pub fn validate(&self) -> Result<(), String> {
        for (i, cell) in self.shards.iter().enumerate() {
            let shard = lock(cell);
            let active: BTreeMap<JobId, Window> = shard.active_jobs().into_iter().collect();
            realloc_core::schedule::validate(
                &shard.snapshot(),
                &active,
                self.cfg.machines_per_shard,
            )
            .map_err(|e: ValidationError| format!("shard {i}: {e}"))?;
            for &id in active.keys() {
                let routed = self.router.route(id);
                if routed != i {
                    return Err(format!(
                        "job {id} lives on shard {i} but routes to {routed} at epoch {}",
                        self.router.epoch()
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Elastic resharding
    // ------------------------------------------------------------------

    /// Resizes the engine to `new_shards` shards **online**: every active
    /// job is snapshot-shipped into the shard the new routing table
    /// assigns it, pending (unflushed) queue entries are re-routed
    /// without loss, telemetry totals are carried over, the worker pool
    /// is rebuilt for the new shard count, and — when the journal is
    /// enabled — an epoch record is appended so replay and recovery
    /// re-apply the same resize at the same position.
    ///
    /// Tenant pins that still fit the new shard range are kept; pins to
    /// shards `>= new_shards` are dropped (those tenants fall back to
    /// hash routing).
    ///
    /// The rebuild is **all-or-nothing**: jobs are re-placed into a fresh
    /// shard set in a canonical order (ascending window span, then start,
    /// then id — the order with the strongest acceptance guarantee for
    /// the reservation schedulers), and if any job cannot be placed (a
    /// shrink can concentrate load beyond a shard's capacity) the engine
    /// is left exactly as it was and [`ResizeError::Infeasible`] is
    /// returned.
    pub fn resize(&mut self, new_shards: usize) -> Result<ResizeReport, ResizeError> {
        let table = self.router.retarget(new_shards)?;
        self.reshard(table)
    }

    /// Tenant-aware rebalancing: when one tenant dominates the active set
    /// (≥ [`Engine::REBALANCE_SHARE`] of all active jobs) and is not
    /// already pinned, grows the engine by one shard and pins that
    /// tenant to it. The whale's jobs stop consuming the density budgets
    /// of every hash shard (under hash routing a heavy tenant's jobs
    /// spread everywhere, crowding other tenants toward capacity
    /// rejections), and hash traffic keeps the old shards to itself.
    ///
    /// Returns `Ok(None)` when no tenant qualifies — rebalancing is a
    /// no-op on balanced traffic, so it is safe to call periodically.
    pub fn rebalance(&mut self) -> Result<Option<ResizeReport>, ResizeError> {
        let mut per_tenant: BTreeMap<u64, usize> = BTreeMap::new();
        let mut total = 0usize;
        for cell in &self.shards {
            for (id, _) in lock(cell).active_jobs() {
                *per_tenant.entry(tenant_of(id)).or_insert(0) += 1;
                total += 1;
            }
        }
        // Largest tenant; ties broken toward the smallest id (BTreeMap
        // iteration order + strict `>`), so the choice is deterministic.
        let Some((&whale, &count)) = per_tenant
            .iter()
            .max_by(|a, b| (a.1, std::cmp::Reverse(a.0)).cmp(&(b.1, std::cmp::Reverse(b.0))))
        else {
            return Ok(None);
        };
        if (count as f64) < Self::REBALANCE_SHARE * total as f64 {
            return Ok(None);
        }
        if self.router.pin_of(whale).is_some() {
            return Ok(None); // already isolated
        }
        let dedicated = self.router.shards();
        let table = self
            .router
            .retarget(dedicated + 1)?
            .with_pin(whale, dedicated)?;
        let report = self.reshard(table)?;
        if let Some(tele) = &mut self.tele {
            tele.rebalance_pins_total.inc();
            // A whale pin is worth surfacing: it reshapes routing for
            // everyone else.
            tele.t
                .point(Severity::Warn, "rebalance_pin", whale, dedicated as u64);
        }
        Ok(Some(report))
    }

    /// Active-set share above which [`Engine::rebalance`] isolates a
    /// tenant onto a dedicated shard.
    pub const REBALANCE_SHARE: f64 = 0.5;

    /// Adopts `table` (epoch bumped past the current one) and physically
    /// re-homes all state. See [`Engine::resize`] for the contract; this
    /// is also the replay path for journal epoch records, which is why
    /// everything here must be a pure function of the engine state and
    /// the table.
    fn reshard(&mut self, mut table: Router) -> Result<ResizeReport, ResizeError> {
        table.commit(&self.router);
        self.reshard_at(table)
    }

    /// [`Engine::reshard`] with the epoch taken from `table` verbatim
    /// (journal replay re-applies recorded epochs rather than
    /// recounting).
    fn reshard_at(&mut self, table: Router) -> Result<ResizeReport, ResizeError> {
        // Gather every active job with its current home, then re-place
        // into a fresh shard set in canonical order. The old shards stay
        // untouched until the rebuild fully succeeds.
        let mut jobs: Vec<(JobId, Window, usize)> = Vec::new();
        for (i, cell) in self.shards.iter().enumerate() {
            for (id, w) in lock(cell).active_jobs() {
                jobs.push((id, w, i));
            }
        }
        jobs.sort_by_key(|&(id, w, _)| (w.span(), w.start(), id));
        let mut fresh: Vec<Shard> = (0..table.shards())
            .map(|i| Shard::new(i, self.cfg.backend, self.cfg.machines_per_shard))
            .collect();
        let mut moved = 0usize;
        for &(id, window, old_home) in &jobs {
            let home = table.route(id);
            fresh[home]
                .adopt(id, window)
                .map_err(|source| ResizeError::Infeasible {
                    job: id,
                    shard: home,
                    detail: source.to_string(),
                })?;
            if home != old_home {
                moved += 1;
            }
        }
        // Re-route pending queue entries: old shards in index order, each
        // queue FIFO. Two requests for the same job were queued on the
        // same old shard (routing is per-id), so their relative order —
        // the only order that affects outcomes — survives.
        let mut queued = 0usize;
        for cell in &self.shards {
            for request in lock(cell).take_queue() {
                fresh[table.route(request.job_id())].enqueue(request);
                queued += 1;
            }
        }
        // Point of no return: retire the old shards into the carryover
        // and swap in the new set, table, and pool.
        for cell in &self.shards {
            self.carry.absorb(&lock(cell));
        }
        let report = ResizeReport {
            epoch: table.epoch(),
            from_shards: self.router.shards(),
            to_shards: table.shards(),
            jobs: jobs.len(),
            jobs_moved: moved,
            queued_preserved: queued,
        };
        self.shards = fresh.into_iter().map(|s| Arc::new(Mutex::new(s))).collect();
        self.cfg.shards = table.shards();
        self.router = table;
        self.pool = Self::build_pool(&self.cfg, &self.shards);
        if self.pool.is_none() && self.pool_forced {
            self.pool = Self::forced_pool(&self.shards);
        }
        if let Some(journal) = &mut self.journal {
            journal.append_epoch(EpochRecord::of(&self.router));
            if self.sink.is_some() && self.durability_error.is_none() {
                let record = EpochRecord::of(&self.router);
                let result = self
                    .sink
                    .as_mut()
                    .expect("checked presence")
                    .append_epoch(&record);
                if let Err(e) = result {
                    self.durability_fail(e);
                }
            }
        }
        // Fresh shards start uninstrumented: re-install drain handles
        // and publish the resize before returning.
        self.apply_shard_tele();
        if let Some(tele) = &mut self.tele {
            tele.resizes_total.inc();
            tele.epoch.set(report.epoch);
            tele.shards.set(report.to_shards as u64);
            tele.active_jobs.set(report.jobs as u64);
            tele.t.point(
                Severity::Info,
                "epoch",
                report.epoch,
                report.to_shards as u64,
            );
        }
        Ok(report)
    }

    /// Applies a recorded epoch record: validates that the epoch
    /// advances, rebuilds the routing table, and reshards exactly as the
    /// engine that recorded it did. This is the replication/replay apply
    /// path — journal replay and cluster replicas both re-apply resizes
    /// through it, so a stream that crosses a resize lands on
    /// byte-identical placements.
    pub fn apply_epoch_record(&mut self, record: &EpochRecord) -> Result<(), ReplayError> {
        self.apply_epoch(record)
            .map_err(|message| ReplayError::Corrupt(ParseError { line: 0, message }))
    }

    /// Applies one recorded **batch** of journal events, exactly as a
    /// replica or replay must: every event of one flush, in recorded
    /// order, serviced at the recorded batch number, with each produced
    /// outcome verified against the recording (shard routing, request,
    /// and netted costs — any mismatch is a [`ReplayError::Divergence`],
    /// whose `index` is the offset *within this slice*).
    ///
    /// Preconditions (violations are graceful [`ReplayError::Corrupt`]
    /// errors, never panics — frames arrive over the network):
    /// * the journal is enabled (outcome verification reads it back),
    /// * `recorded` is non-empty and single-batch, at a batch number not
    ///   yet used by this engine (batch numbers only move forward),
    /// * no locally queued requests (they would be swept into the
    ///   recorded batch and corrupt the comparison).
    pub fn apply_recorded_batch(&mut self, recorded: &[JournalEvent]) -> Result<(), ReplayError> {
        let corrupt = |message: String| ReplayError::Corrupt(ParseError { line: 0, message });
        let Some(first) = recorded.first() else {
            return Err(corrupt("recorded batch is empty".to_string()));
        };
        if self.journal.is_none() {
            return Err(corrupt(
                "recorded batches need the journal enabled to verify outcomes".to_string(),
            ));
        }
        let batch = first.batch;
        if recorded.iter().any(|e| e.batch != batch) {
            return Err(corrupt(format!(
                "recorded batch mixes flush numbers (first is {batch})"
            )));
        }
        if batch < self.batches {
            return Err(corrupt(format!(
                "recorded batch {batch} regresses the flush counter {}",
                self.batches
            )));
        }
        if batch == u64::MAX {
            // Servicing at this number would overflow the counter's
            // post-flush increment; no honest recording gets here.
            return Err(corrupt(
                "recorded batch number overflows the flush counter".to_string(),
            ));
        }
        if self.queued() > 0 {
            return Err(corrupt(format!(
                "{} locally queued requests would be swept into recorded batch {batch}",
                self.queued()
            )));
        }
        // Service the batch at the recorded flush number, then verify
        // what the journal appended against the recording.
        self.batches = batch;
        for e in recorded {
            self.submit(e.request);
        }
        self.flush();
        let journal = self.journal.as_ref().expect("checked above");
        let tail = journal.tail_events();
        debug_assert!(
            tail.len() >= recorded.len(),
            "flush appends one event per submit"
        );
        let replayed = &tail[tail.len() - recorded.len()..];
        for (i, (rec, got)) in recorded.iter().zip(replayed).enumerate() {
            if rec != got {
                return Err(ReplayError::Divergence(Box::new(ReplayDivergence {
                    index: i,
                    recorded: *rec,
                    replayed: Some(*got),
                })));
            }
        }
        Ok(())
    }

    /// Cheap, stable 64-bit digest of the full engine state: FNV-1a over
    /// the canonical snapshot text ([`realloc_core::snapshot::digest64`]).
    /// Two engines with byte-identical state have equal digests, so a
    /// replica can verify it has not diverged from its primary by
    /// comparing 8 bytes per checkpoint instead of shipping snapshots.
    /// Detects drift and corruption; not an authenticator.
    pub fn state_digest(&self) -> u64 {
        realloc_core::snapshot::digest64(&self.snapshot_text())
    }

    /// Applies a journal epoch record during replay/recovery: validates
    /// the epoch advances, rebuilds the table, and reshards exactly as
    /// the recorded engine did.
    pub(crate) fn apply_epoch(&mut self, record: &EpochRecord) -> Result<(), String> {
        if record.epoch <= self.router.epoch() {
            return Err(format!(
                "epoch record {} does not advance the current epoch {}",
                record.epoch,
                self.router.epoch()
            ));
        }
        let table = Router::from_parts(record.epoch, record.shards, record.pins.iter().copied())
            .map_err(|e| e.to_string())?;
        self.reshard_at(table).map_err(|e| e.to_string())?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpointing & recovery
    // ------------------------------------------------------------------

    /// Takes a checkpoint: flushes anything still queued (recorded as an
    /// ordinary batch), snapshots the **full engine state** — every
    /// shard's scheduler, active set, and telemetry — into the journal
    /// as a checkpoint record, and drops sealed journal segments beyond
    /// [`EngineConfig::retained_segments`].
    ///
    /// After a checkpoint, [`Engine::recover`] rebuilds this exact state
    /// from the serialized journal by restoring the snapshot and
    /// replaying only the tail — O(tail) instead of O(history). No-op
    /// when the journal is disabled (there is nowhere to anchor the
    /// checkpoint). Returns whether a checkpoint was recorded.
    pub fn checkpoint(&mut self) -> bool {
        if self.journal.is_none() {
            return false;
        }
        let t0 = self.tele.as_ref().map(|t| t.now());
        if self.queued() > 0 {
            self.flush();
        }
        let snapshot = self.snapshot_text();
        let batches = self.batches;
        self.journal
            .as_mut()
            .expect("checked above")
            .checkpoint(snapshot, batches);
        if self.sink.is_some() && self.durability_error.is_none() {
            // Tee the checkpoint the journal just cut (borrowed, not
            // cloned — snapshots run to megabytes).
            let failed = {
                let journal = self.journal.as_ref().expect("checked above");
                let cp = journal
                    .latest_checkpoint()
                    .expect("checkpoint() just sealed one");
                self.sink
                    .as_mut()
                    .expect("checked presence")
                    .checkpoint(cp)
                    .err()
            };
            if let Some(e) = failed {
                self.durability_fail(e);
            }
        }
        if let Some(tele) = &mut self.tele {
            let took = tele.now().saturating_sub(t0.expect("stamped above"));
            tele.checkpoints_total.inc();
            tele.checkpoint_nanos.record(took);
            tele.t.point(Severity::Info, "checkpoint", batches, took);
        }
        true
    }

    /// Restores an engine from a snapshot document produced by
    /// [`realloc_core::Restorable::snapshot_text`] — the "snapshot,
    /// ship, restore" path for shard/engine migration.
    pub fn restore_snapshot(text: &str) -> Result<Engine, ParseError> {
        <Engine as Restorable>::restore(text)
    }

    /// Recovers an engine from serialized journal text read from
    /// `reader`: parse, restore the latest checkpoint, replay only the
    /// tail with full divergence detection, and resume with the journal
    /// attached (recording continues where the recording left off).
    ///
    /// Equivalent to a full [`Journal::replay`] in outcome — placements,
    /// metrics, and telemetry are byte-identical — but O(tail) in time.
    pub fn recover<R: std::io::Read>(mut reader: R) -> Result<Engine, RecoverError> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let journal = Journal::from_text(&text)?;
        Ok(journal.recover_engine()?)
    }

    /// Replaces the journal with a fresh, empty one (replay bookkeeping).
    /// An engine already past epoch 0 seeds the new journal with an
    /// epoch record at position zero, so the fresh recording is
    /// self-describing: its replay starts at the journal header's shard
    /// count and immediately applies the live routing table (a no-op
    /// re-home of an empty genesis engine).
    pub(crate) fn reset_journal(&mut self) {
        let mut cfg = self.cfg.clone();
        cfg.journal = true;
        self.cfg.journal = true;
        let mut journal = Journal::new(cfg);
        if !self.router.is_genesis() {
            journal.append_epoch(EpochRecord::of(&self.router));
        }
        self.journal = Some(journal);
    }

    /// Attaches an existing journal (recovery hands the recovered engine
    /// its own history so recording continues seamlessly). Truncation
    /// behavior must follow the restored configuration — the serialized
    /// journal header's retention cap, not the parser's default — so the
    /// cap is re-anchored here; the journal's own config (the *genesis*
    /// shard count, which can differ from the current one after resizes)
    /// is otherwise left alone.
    pub(crate) fn attach_journal(&mut self, mut journal: Journal) {
        self.cfg.journal = true;
        journal.set_retention(self.cfg.retained_segments);
        self.journal = Some(journal);
    }

    /// Ensures the flush counter is strictly past `batch`, so the next
    /// flush never reuses a batch number that already has recorded
    /// events (see `Journal::replay_from`).
    pub(crate) fn bump_batches_past(&mut self, batch: u64) {
        self.batches = self.batches.max(batch.saturating_add(1));
    }
}

/// What one [`Engine::resize`] / [`Engine::rebalance`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResizeReport {
    /// The routing epoch the engine now serves at.
    pub epoch: u64,
    /// Shard count before the resize.
    pub from_shards: usize,
    /// Shard count after.
    pub to_shards: usize,
    /// Active jobs re-placed during the rebuild.
    pub jobs: usize,
    /// Jobs whose home shard actually changed.
    pub jobs_moved: usize,
    /// Pending queue entries carried across (never dropped).
    pub queued_preserved: usize,
}

/// Why a resize was refused. The engine is left exactly as it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResizeError {
    /// The requested routing table was invalid (zero shards, pins out of
    /// range or covering every shard).
    Router(RouterError),
    /// A job could not be re-placed on its new shard (shrinking
    /// concentrated more load than the shard's backend can hold).
    Infeasible {
        /// The job that failed to place.
        job: JobId,
        /// The shard it routed to.
        shard: usize,
        /// The backend's rejection.
        detail: String,
    },
}

impl From<RouterError> for ResizeError {
    fn from(e: RouterError) -> Self {
        ResizeError::Router(e)
    }
}

impl std::fmt::Display for ResizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResizeError::Router(e) => write!(f, "resize rejected: {e}"),
            ResizeError::Infeasible { job, shard, detail } => write!(
                f,
                "resize infeasible: job {job} does not fit shard {shard} ({detail}); \
                 engine unchanged"
            ),
        }
    }
}

impl std::error::Error for ResizeError {}

/// Why [`Engine::recover`] failed.
#[derive(Debug)]
pub enum RecoverError {
    /// The reader failed.
    Io(std::io::Error),
    /// The journal text failed to parse.
    Journal(ParseError),
    /// The checkpoint was corrupt or the tail replay diverged.
    Replay(ReplayError),
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<ParseError> for RecoverError {
    fn from(e: ParseError) -> Self {
        RecoverError::Journal(e)
    }
}

impl From<ReplayError> for RecoverError {
    fn from(e: ReplayError) -> Self {
        RecoverError::Replay(e)
    }
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery read failed: {e}"),
            RecoverError::Journal(e) => write!(f, "journal parse failed: {e}"),
            RecoverError::Replay(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RecoverError {}

impl Restorable for Engine {
    const SNAPSHOT_KIND: &'static str = "engine";

    fn write_state(&self, w: &mut SnapshotWriter) {
        w.line(format_args!(
            "c {} {} {} {} {} {} {}",
            self.cfg.shards,
            self.cfg.machines_per_shard,
            self.cfg.backend,
            self.cfg.parallel as u8,
            self.cfg.journal as u8,
            self.cfg.retained_segments,
            self.batches
        ));
        // Resize carryover: totals line + histogram (header + non-empty
        // buckets), mirroring the per-shard telemetry encoding.
        w.line(format_args!(
            "t {} {} {} {}",
            self.carry.requests, self.carry.failed, self.carry.reallocations, self.carry.migrations
        ));
        let (count, sum, max, overflow) = self.carry.hist.parts();
        w.line(format_args!("h {count} {sum} {max} {overflow}"));
        for (cost, n) in self.carry.hist.nonzero_buckets() {
            w.line(format_args!("hb {cost} {n}"));
        }
        w.child(&self.router);
        for shard in &self.shards {
            lock(shard).write_state(w);
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut header: Option<(EngineConfig, u64)> = None;
        // Carryover lines are optional: snapshots recorded before elastic
        // resharding existed have neither, and restore to zero carryover.
        let mut carry_totals: Option<(u64, u64, u64, u64)> = None;
        let mut carry_hist: Option<(u64, u64, u64, u64)> = None;
        let mut carry_buckets: Vec<(usize, u64)> = Vec::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "t" => {
                    if carry_totals.is_some() {
                        return Err(f.err("duplicate 't' carryover line"));
                    }
                    let v = (
                        f.u64("carryover requests")?,
                        f.u64("carryover failed")?,
                        f.u64("carryover reallocations")?,
                        f.u64("carryover migrations")?,
                    );
                    f.finish()?;
                    carry_totals = Some(v);
                }
                "h" => {
                    if carry_hist.is_some() {
                        return Err(f.err("duplicate 'h' carryover histogram line"));
                    }
                    let v = (
                        f.u64("count")?,
                        f.u64("sum")?,
                        f.u64("max")?,
                        f.u64("overflow")?,
                    );
                    f.finish()?;
                    carry_hist = Some(v);
                }
                "hb" => {
                    let cost = f.usize("bucket cost")?;
                    let n = f.u64("bucket count")?;
                    f.finish()?;
                    carry_buckets.push((cost, n));
                }
                "c" => {
                    if header.is_some() {
                        return Err(f.err("duplicate 'c' config line"));
                    }
                    let shards = f.usize("shards")?;
                    let machines_per_shard = f.usize("machines per shard")?;
                    let backend_raw = f.token("backend")?;
                    let backend = match BackendKind::parse(backend_raw) {
                        Ok(b) => b,
                        Err(msg) => return Err(f.err(msg)),
                    };
                    let parallel = f.u64("parallel flag")? != 0;
                    let journal = f.u64("journal flag")? != 0;
                    let retained_segments = f.usize("retained segments")?;
                    let batches = f.u64("batches")?;
                    f.finish()?;
                    if shards == 0 {
                        return Err(f.err("engine needs at least one shard"));
                    }
                    if machines_per_shard == 0 {
                        return Err(f.err("shards need at least one machine"));
                    }
                    header = Some((
                        EngineConfig {
                            shards,
                            machines_per_shard,
                            backend,
                            parallel,
                            journal,
                            retained_segments,
                        },
                        batches,
                    ));
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown engine snapshot op '{other}'"),
                    })
                }
            }
        }
        let (cfg, batches) = header.ok_or(ParseError {
            line: 0,
            message: "engine snapshot has no 'c' config line".to_string(),
        })?;
        let carry = match (carry_totals, carry_hist) {
            (None, None) if carry_buckets.is_empty() => Carryover::default(),
            (Some((requests, failed, reallocations, migrations)), Some((cn, cs, cm, co))) => {
                // Untrusted-snapshot arithmetic is checked, not trusted:
                // a forged carryover near u64::MAX would overflow the
                // carry + live-shard sums in `metrics`/`total_costs`.
                // 2^48 is absurd headroom for real lifetimes and leaves
                // 2^16 of summation slack.
                const CARRY_LIMIT: u64 = u64::MAX >> 16;
                for (what, v) in [
                    ("requests", requests),
                    ("failed", failed),
                    ("reallocations", reallocations),
                    ("migrations", migrations),
                    ("histogram count", cn),
                    ("histogram sum", cs),
                ] {
                    if v > CARRY_LIMIT {
                        return Err(ParseError {
                            line: 0,
                            message: format!("carryover {what} {v} exceeds the sanity bound"),
                        });
                    }
                }
                let hist =
                    crate::metrics::CostHistogram::from_parts(cn, cs, cm, co, &carry_buckets)
                        .map_err(|message| ParseError {
                            line: 0,
                            message: format!("carryover histogram: {message}"),
                        })?;
                // Retired shards uphold requests == histogram count, so
                // their union must too.
                if requests != hist.count() {
                    return Err(ParseError {
                        line: 0,
                        message: format!(
                            "carryover records {requests} requests but the histogram holds {}",
                            hist.count()
                        ),
                    });
                }
                Carryover {
                    requests,
                    failed,
                    reallocations,
                    migrations,
                    hist,
                }
            }
            _ => {
                return Err(ParseError {
                    line: 0,
                    message: "carryover 't'/'h' lines must appear together".to_string(),
                })
            }
        };
        // The router section is optional for the same reason: earlier
        // snapshots predate it, and their engines were always at the
        // genesis table for their recorded shard count.
        let router = match node.children_of(Router::SNAPSHOT_KIND).next() {
            Some(rn) => {
                let router = Router::read_state(rn)?;
                if router.shards() != cfg.shards {
                    return Err(ParseError {
                        line: 0,
                        message: format!(
                            "router table covers {} shards but the engine config says {}",
                            router.shards(),
                            cfg.shards
                        ),
                    });
                }
                router
            }
            None => Router::new(cfg.shards),
        };
        let shard_nodes: Vec<&SnapshotNode> = node.children_of("shard").collect();
        if shard_nodes.len() != cfg.shards {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "engine snapshot declares {} shards but embeds {} shard sections",
                    cfg.shards,
                    shard_nodes.len()
                ),
            });
        }
        let mut shards: Vec<Arc<Mutex<Shard>>> = Vec::with_capacity(cfg.shards);
        for (i, sn) in shard_nodes.into_iter().enumerate() {
            let shard = Shard::read_state(cfg.backend, cfg.machines_per_shard, sn)?;
            if shard.id() != i {
                return Err(ParseError {
                    line: 0,
                    message: format!("shard sections out of order: found {} at {i}", shard.id()),
                });
            }
            shards.push(Arc::new(Mutex::new(shard)));
        }
        let pool = Self::build_pool(&cfg, &shards);
        let journal = cfg.journal.then(|| {
            let mut journal = Journal::new(cfg.clone());
            if !router.is_genesis() {
                journal.append_epoch(EpochRecord::of(&router));
            }
            journal
        });
        Ok(Engine {
            cfg,
            router,
            shards,
            carry,
            pool,
            pool_forced: false,
            journal,
            batches,
            sink: None,
            durability_error: None,
            tele: None,
            coalesce: None,
            deferred: 0,
            pending_trace: None,
            flush_traces: BTreeMap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::Window;

    fn engine(shards: usize, parallel: bool) -> Engine {
        Engine::new(EngineConfig {
            shards,
            parallel,
            journal: true,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn submit_routes_deletes_to_the_inserting_shard() {
        let mut e = engine(8, false);
        for i in 0..200u64 {
            e.submit(Request::Insert {
                id: JobId(i),
                window: Window::new(0, 1 << 12),
            });
        }
        assert_eq!(e.queued(), 200);
        let report = e.flush();
        assert_eq!(report.processed(), 200);
        assert_eq!(report.failed(), 0);
        for i in 0..200u64 {
            e.submit(Request::Delete { id: JobId(i) });
        }
        let report = e.flush();
        assert_eq!(report.processed(), 200, "failures: {:?}", report.failures);
        assert_eq!(e.active_count(), 0);
    }

    #[test]
    fn tenants_are_namespaced() {
        let mut e = engine(4, false);
        let w = Window::new(0, 64);
        let a = e
            .submit_for(
                TenantId(1),
                Request::Insert {
                    id: JobId(7),
                    window: w,
                },
            )
            .unwrap();
        let b = e
            .submit_for(
                TenantId(2),
                Request::Insert {
                    id: JobId(7),
                    window: w,
                },
            )
            .unwrap();
        assert_ne!(a, b, "same external id, different tenants");
        let report = e.flush();
        assert_eq!(report.processed(), 2);
        assert_eq!(e.active_count(), 2);
        // Oversized external ids are rejected up front.
        let big = JobId(1 << TENANT_SHIFT);
        assert!(e
            .submit_for(TenantId(1), Request::Delete { id: big })
            .is_err());
        // The reserved tenant 0 (aliasing the direct submit() space) too.
        assert!(e
            .submit_for(TenantId(0), Request::Delete { id: JobId(7) })
            .is_err());
    }

    #[test]
    fn parallel_flush_matches_sequential() {
        let build = |parallel| {
            let mut e = engine(6, parallel);
            for i in 0..300u64 {
                e.submit(Request::Insert {
                    id: JobId(i),
                    window: Window::new((i % 4) * 256, (i % 4) * 256 + 256),
                });
            }
            e.flush();
            for i in (0..300u64).step_by(3) {
                e.submit(Request::Delete { id: JobId(i) });
            }
            e.flush();
            e
        };
        let seq = build(false);
        let par = build(true);
        assert_eq!(seq.placements(), par.placements());
        assert_eq!(seq.total_costs(), par.total_costs());
        assert!(seq
            .journal()
            .unwrap()
            .iter_events()
            .eq(par.journal().unwrap().iter_events()));
    }

    #[test]
    fn metrics_aggregate_shard_rows() {
        let mut e = engine(4, false);
        for i in 0..128u64 {
            e.submit(Request::Insert {
                id: JobId(i),
                window: Window::new(0, 1 << 10),
            });
        }
        e.flush();
        let m = e.metrics();
        assert_eq!(m.requests, 128);
        assert_eq!(m.active_jobs, 128);
        assert_eq!(m.shards.len(), 4);
        assert_eq!(m.shards.iter().map(|s| s.requests).sum::<u64>(), 128);
        assert!(
            m.imbalance() < 2.0,
            "router is badly skewed: {}",
            m.imbalance()
        );
    }
}
