//! # realloc-engine
//!
//! A sharded, batched scheduling *service* over the SPAA'13 reallocation
//! schedulers — the serving layer that turns the algorithm crates into a
//! system:
//!
//! * **Sharding** — requests are routed across `S` independent shards by
//!   a stable hash of the (tenant-resolved) job id ([`Engine::shard_of`]).
//!   Each shard owns one full scheduler ([`backend`]): a machine group
//!   driven through the §3/§5 wrapper, or a natively multi-machine
//!   baseline. Shards share no state, so a flush drains them
//!   concurrently with plain disjoint borrows ([`shard`]).
//! * **Batching** — [`Engine::submit`] only enqueues (per-shard FIFO
//!   queues); [`Engine::flush`] services everything queued and returns a
//!   [`batch::BatchReport`]. Rejected requests are reported, never fatal:
//!   a multi-tenant service keeps serving the rest of the stream.
//! * **Multi-tenancy** — [`Engine::submit_for`] namespaces each tenant's
//!   job ids into disjoint ranges of the global id space, so tenants
//!   cannot collide (or address each other's jobs) as long as untrusted
//!   callers are only ever handed `submit_for`; the raw [`Engine::submit`]
//!   interface spans the whole id space and is for trusted embedders and
//!   journal replay.
//! * **Telemetry** — per-shard [`realloc_core::CostMeter`]s aggregate
//!   into a [`metrics::Metrics`] snapshot: totals, per-request
//!   reallocation-cost p50/p95/p99, and router balance.
//! * **Durability** — an optional segmented journal ([`journal::Journal`])
//!   records every request and its netted outcome; [`Engine::checkpoint`]
//!   snapshots the full engine state (every layer implements
//!   [`realloc_core::Restorable`]) into the journal and truncates sealed
//!   segments beyond [`EngineConfig::retained_segments`], so
//!   [`Engine::recover`] rebuilds the exact pre-crash engine from the
//!   latest checkpoint plus the journal *tail* — O(tail), not
//!   O(history) — while [`journal::Journal::replay`] keeps the full
//!   audit path with divergence detection. Shard/engine migration is
//!   "snapshot, ship, restore" ([`Engine::restore_snapshot`]).
//!
//! # Quickstart
//!
//! ```
//! use realloc_engine::{BackendKind, Engine, EngineConfig};
//! use realloc_core::{JobId, Request, Window};
//!
//! let mut engine = Engine::new(EngineConfig {
//!     shards: 4,
//!     backend: BackendKind::TheoremOne { gamma: 8 },
//!     ..EngineConfig::default()
//! });
//!
//! for i in 0..64u64 {
//!     engine.submit(Request::Insert {
//!         id: JobId(i),
//!         window: Window::new(0, 1 << 10),
//!     });
//! }
//! let report = engine.flush();
//! assert_eq!(report.processed(), 64);
//! assert_eq!(engine.active_count(), 64);
//!
//! let m = engine.metrics();
//! assert_eq!(m.requests, 64);
//! assert!(m.shards.iter().all(|s| s.active_jobs > 0), "all shards used");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod journal;
pub mod metrics;
pub mod pool;
pub mod shard;

pub use backend::{Backend, BackendKind};
pub use batch::BatchReport;
pub use journal::{Checkpoint, Journal, JournalEvent, ReplayDivergence, ReplayError};
pub use metrics::Metrics;

use crate::journal::Costs;
use crate::pool::WorkerPool;
use crate::shard::{Shard, ShardDrain};
use realloc_core::cost::Placement;
use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, Request, RequestSeq};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks one shard cell (uncontended outside a concurrent flush).
pub(crate) fn lock(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().expect("shard mutex poisoned")
}

/// A tenant namespace. Each tenant's external job ids live in a disjoint
/// slice of the global [`JobId`] space (see [`Engine::submit_for`]).
///
/// `TenantId(0)` is **reserved**: its slice coincides with the low ids of
/// the direct [`Engine::submit`] space, so handing it to `submit_for`
/// would let a "tenant" address direct submitters' jobs. `submit_for`
/// rejects it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

/// Bits of the global job-id space reserved for the external id; the
/// tenant id occupies the bits above.
const TENANT_SHIFT: u32 = 48;

/// Engine configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of independent shards (`>= 1`).
    pub shards: usize,
    /// Machines per shard backend.
    pub machines_per_shard: usize,
    /// Scheduler each shard runs.
    pub backend: BackendKind,
    /// Drain shards on a **persistent worker pool** during
    /// [`Engine::flush`]: `min(shards, available_parallelism)` long-lived
    /// threads spawned at construction, each draining a contiguous chunk
    /// of shards (inline when the host offers no parallelism — enabling
    /// this is never a pessimization). Results are identical either way
    /// (shards are independent and the flush is a full barrier); this
    /// only trades a channel round-trip per flush against parallel drain
    /// time. See `BENCH_engine_ingest.json`.
    pub parallel: bool,
    /// Record every serviced request into an in-memory [`Journal`].
    pub journal: bool,
    /// How many **sealed** journal segments to retain after a
    /// checkpoint (the open tail is always kept). Each
    /// [`Engine::checkpoint`] seals the current segment; once a
    /// checkpoint exists, older segments are redundant for recovery, so
    /// anything beyond this cap is dropped — bounding the journal's
    /// memory instead of growing without bound from genesis. `0` keeps
    /// only the latest checkpoint plus the tail (minimum-footprint
    /// recovery); larger values keep audit/replay depth.
    pub retained_segments: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            machines_per_shard: 1,
            backend: BackendKind::TheoremOne { gamma: 8 },
            parallel: false,
            journal: false,
            retained_segments: 4,
        }
    }
}

/// The sharded, batched scheduling service. See the crate docs.
///
/// Shards live behind `Arc<Mutex<_>>` so the persistent worker pool can
/// drain them without `unsafe`; every mutex is uncontended outside a
/// concurrent flush (the engine is the only other lock holder).
pub struct Engine {
    cfg: EngineConfig,
    shards: Vec<Arc<Mutex<Shard>>>,
    /// Persistent drain workers, present iff `cfg.parallel` with > 1 shard.
    pool: Option<WorkerPool>,
    journal: Option<Journal>,
    batches: u64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.cfg)
            .field("batches", &self.batches)
            .field("queued", &self.queued())
            .field("active", &self.active_count())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine: `cfg.shards` shards, each running a fresh
    /// `cfg.backend` on `cfg.machines_per_shard` machines.
    pub fn new(cfg: EngineConfig) -> Self {
        assert!(cfg.shards >= 1, "engine needs at least one shard");
        assert!(
            cfg.machines_per_shard >= 1,
            "shards need at least one machine"
        );
        let shards: Vec<Arc<Mutex<Shard>>> = (0..cfg.shards)
            .map(|i| {
                Arc::new(Mutex::new(Shard::new(
                    i,
                    cfg.backend,
                    cfg.machines_per_shard,
                )))
            })
            .collect();
        let pool = Self::build_pool(&cfg, &shards);
        let journal = cfg.journal.then(|| Journal::new(cfg.clone()));
        Engine {
            cfg,
            shards,
            pool,
            journal,
            batches: 0,
        }
    }

    /// A pool with fewer than two hardware threads behind it can only
    /// add context switches — degrade to inline drains so `parallel`
    /// is never a pessimization. (Shared by `new` and snapshot restore.)
    fn build_pool(cfg: &EngineConfig, shards: &[Arc<Mutex<Shard>>]) -> Option<WorkerPool> {
        (cfg.parallel && cfg.shards > 1 && WorkerPool::threads_for(cfg.shards) > 1)
            .then(|| WorkerPool::new(shards))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Test hook: build the persistent worker pool — with **multiple
    /// workers** — even when the host's available parallelism would make
    /// the engine drain inline (see [`EngineConfig::parallel`]). Lets
    /// the pool/journal equivalence property tests exercise the real
    /// cross-worker barrier and chunk reassembly on single-core CI
    /// runners. No-op when a pool already exists or with one shard.
    #[doc(hidden)]
    pub fn force_parallel_pool(&mut self) {
        if self.pool.is_none() && self.shards.len() > 1 {
            let threads = self.shards.len().clamp(2, 4);
            self.pool = Some(WorkerPool::with_threads(&self.shards, threads));
        }
    }

    /// Whether flushes currently drain on the worker pool.
    pub fn uses_pool(&self) -> bool {
        self.pool.is_some()
    }

    /// The shard a job id routes to — a pure function of the id and the
    /// shard count (FNV-1a over the id bytes), so routing is
    /// deterministic, stable across engine instances, and maps a job's
    /// delete to the shard that serviced its insert.
    pub fn shard_of(&self, id: JobId) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in id.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Enqueues a request for the next flush, addressing the **raw
    /// global id space** — including every tenant's slice.
    ///
    /// This is the privileged interface for trusted callers (embedders
    /// driving a single id space, harnesses, and [`Journal::replay`],
    /// which must restore tenant-namespaced ids verbatim). Code serving
    /// untrusted tenants must go through [`Engine::submit_for`], which
    /// confines each tenant to its own slice; handing tenants `submit`
    /// would let them address each other's jobs.
    pub fn submit(&mut self, request: Request) {
        let shard = self.shard_of(request.job_id());
        lock(&self.shards[shard]).enqueue(request);
    }

    /// Enqueues every request of a sequence (raw id space; see
    /// [`Engine::submit`]).
    pub fn submit_seq(&mut self, seq: &RequestSeq) {
        for &r in seq.requests() {
            self.submit(r);
        }
    }

    /// Enqueues a request on behalf of `tenant`, translating its external
    /// job id into the tenant's slice of the global id space. Returns the
    /// global id (for correlating journal entries and placements).
    ///
    /// Fails if `tenant` is the reserved [`TenantId`]`(0)` or the
    /// external id does not fit the per-tenant id space (`2^48` ids per
    /// tenant).
    pub fn submit_for(&mut self, tenant: TenantId, request: Request) -> Result<JobId, Error> {
        let external = request.job_id();
        if tenant.0 == 0 {
            return Err(Error::UnsupportedJob {
                job: external,
                detail: "TenantId(0) is reserved (it aliases the direct submit() id space)"
                    .to_string(),
            });
        }
        if external.0 >> TENANT_SHIFT != 0 {
            return Err(Error::UnsupportedJob {
                job: external,
                detail: format!(
                    "external id {} exceeds the {}-bit per-tenant id space",
                    external.0, TENANT_SHIFT
                ),
            });
        }
        let global = JobId(((tenant.0 as u64) << TENANT_SHIFT) | external.0);
        let namespaced = match request {
            Request::Insert { window, .. } => Request::Insert { id: global, window },
            Request::Delete { .. } => Request::Delete { id: global },
        };
        self.submit(namespaced);
        Ok(global)
    }

    /// Requests queued across all shards, waiting for the next flush.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| lock(s).queued()).sum()
    }

    /// Services every queued request. Shards drain concurrently on the
    /// persistent worker pool when the engine is configured `parallel`;
    /// each shard processes its own queue in FIFO order either way, so
    /// results are identical.
    pub fn flush(&mut self) -> BatchReport {
        let mut drains: Vec<ShardDrain> = Vec::with_capacity(self.shards.len());
        match &self.pool {
            Some(pool) => pool.drain_all(&mut drains),
            None => drains.extend(self.shards.iter().map(|s| lock(s).drain())),
        }
        let batch = self.batches;
        self.batches += 1;
        if let Some(journal) = &mut self.journal {
            for (shard, drain) in drains.iter().enumerate() {
                for &(request, result) in &drain.records {
                    journal.append(JournalEvent {
                        batch,
                        shard,
                        request,
                        result,
                    });
                }
            }
        }
        BatchReport::from_drains(batch, &drains)
    }

    /// Submits a whole sequence in `batch_size`-request batches, flushing
    /// between batches. Returns `(processed, failed)` totals.
    pub fn ingest(&mut self, seq: &RequestSeq, batch_size: usize) -> (usize, usize) {
        assert!(batch_size >= 1);
        let (mut ok, mut failed) = (0usize, 0usize);
        for chunk in seq.requests().chunks(batch_size) {
            for &r in chunk {
                self.submit(r);
            }
            let report = self.flush();
            ok += report.processed();
            failed += report.failed();
        }
        (ok, failed)
    }

    /// Jobs currently scheduled, across all shards.
    pub fn active_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).active_count()).sum()
    }

    /// Completed flushes.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Point-in-time telemetry snapshot.
    pub fn metrics(&self) -> Metrics {
        Metrics::collect(&self.shards)
    }

    /// The journal, when enabled in the config.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Every active job's `(shard, machine, slot)` placement, sorted by
    /// job id — the global schedule view used by equivalence tests and
    /// debugging tools.
    pub fn placements(&self) -> Vec<(JobId, usize, Placement)> {
        let mut out: Vec<(JobId, usize, Placement)> = self
            .shards
            .iter()
            .flat_map(|s| {
                let s = lock(s);
                s.snapshot()
                    .iter()
                    .map(|(id, p)| (id, s.id(), p))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|&(id, _, _)| id);
        out
    }

    /// Total netted costs serviced across shards (journal-free view of
    /// the headline numbers).
    pub fn total_costs(&self) -> Costs {
        Costs {
            reallocations: self
                .shards
                .iter()
                .map(|s| lock(s).total_reallocations())
                .sum(),
            migrations: self.shards.iter().map(|s| lock(s).total_migrations()).sum(),
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing & recovery
    // ------------------------------------------------------------------

    /// Takes a checkpoint: flushes anything still queued (recorded as an
    /// ordinary batch), snapshots the **full engine state** — every
    /// shard's scheduler, active set, and telemetry — into the journal
    /// as a checkpoint record, and drops sealed journal segments beyond
    /// [`EngineConfig::retained_segments`].
    ///
    /// After a checkpoint, [`Engine::recover`] rebuilds this exact state
    /// from the serialized journal by restoring the snapshot and
    /// replaying only the tail — O(tail) instead of O(history). No-op
    /// when the journal is disabled (there is nowhere to anchor the
    /// checkpoint). Returns whether a checkpoint was recorded.
    pub fn checkpoint(&mut self) -> bool {
        if self.journal.is_none() {
            return false;
        }
        if self.queued() > 0 {
            self.flush();
        }
        let snapshot = self.snapshot_text();
        let batches = self.batches;
        self.journal
            .as_mut()
            .expect("checked above")
            .checkpoint(snapshot, batches);
        true
    }

    /// Restores an engine from a snapshot document produced by
    /// [`realloc_core::Restorable::snapshot_text`] — the "snapshot,
    /// ship, restore" path for shard/engine migration.
    pub fn restore_snapshot(text: &str) -> Result<Engine, ParseError> {
        <Engine as Restorable>::restore(text)
    }

    /// Recovers an engine from serialized journal text read from
    /// `reader`: parse, restore the latest checkpoint, replay only the
    /// tail with full divergence detection, and resume with the journal
    /// attached (recording continues where the recording left off).
    ///
    /// Equivalent to a full [`Journal::replay`] in outcome — placements,
    /// metrics, and telemetry are byte-identical — but O(tail) in time.
    pub fn recover<R: std::io::Read>(mut reader: R) -> Result<Engine, RecoverError> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let journal = Journal::from_text(&text)?;
        Ok(journal.recover_engine()?)
    }

    /// Replaces the journal with a fresh, empty one (replay bookkeeping).
    pub(crate) fn reset_journal(&mut self) {
        let mut cfg = self.cfg.clone();
        cfg.journal = true;
        self.cfg.journal = true;
        self.journal = Some(Journal::new(cfg));
    }

    /// Attaches an existing journal (recovery hands the recovered engine
    /// its own history so recording continues seamlessly). The journal's
    /// config is re-anchored to this engine's: the serialized `c` header
    /// only carries shards/machines/backend, but truncation behavior
    /// (`retained_segments`) must follow the restored configuration, not
    /// the parser's default.
    pub(crate) fn attach_journal(&mut self, mut journal: Journal) {
        self.cfg.journal = true;
        journal.set_config(self.cfg.clone());
        self.journal = Some(journal);
    }

    /// Ensures the flush counter is strictly past `batch`, so the next
    /// flush never reuses a batch number that already has recorded
    /// events (see `Journal::replay_from`).
    pub(crate) fn bump_batches_past(&mut self, batch: u64) {
        self.batches = self.batches.max(batch.saturating_add(1));
    }
}

/// Why [`Engine::recover`] failed.
#[derive(Debug)]
pub enum RecoverError {
    /// The reader failed.
    Io(std::io::Error),
    /// The journal text failed to parse.
    Journal(ParseError),
    /// The checkpoint was corrupt or the tail replay diverged.
    Replay(ReplayError),
}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<ParseError> for RecoverError {
    fn from(e: ParseError) -> Self {
        RecoverError::Journal(e)
    }
}

impl From<ReplayError> for RecoverError {
    fn from(e: ReplayError) -> Self {
        RecoverError::Replay(e)
    }
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery read failed: {e}"),
            RecoverError::Journal(e) => write!(f, "journal parse failed: {e}"),
            RecoverError::Replay(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RecoverError {}

impl Restorable for Engine {
    const SNAPSHOT_KIND: &'static str = "engine";

    fn write_state(&self, w: &mut SnapshotWriter) {
        w.line(format_args!(
            "c {} {} {} {} {} {} {}",
            self.cfg.shards,
            self.cfg.machines_per_shard,
            self.cfg.backend,
            self.cfg.parallel as u8,
            self.cfg.journal as u8,
            self.cfg.retained_segments,
            self.batches
        ));
        for shard in &self.shards {
            lock(shard).write_state(w);
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut header: Option<(EngineConfig, u64)> = None;
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "c" => {
                    if header.is_some() {
                        return Err(f.err("duplicate 'c' config line"));
                    }
                    let shards = f.usize("shards")?;
                    let machines_per_shard = f.usize("machines per shard")?;
                    let backend_raw = f.token("backend")?;
                    let backend = match BackendKind::parse(backend_raw) {
                        Ok(b) => b,
                        Err(msg) => return Err(f.err(msg)),
                    };
                    let parallel = f.u64("parallel flag")? != 0;
                    let journal = f.u64("journal flag")? != 0;
                    let retained_segments = f.usize("retained segments")?;
                    let batches = f.u64("batches")?;
                    f.finish()?;
                    if shards == 0 {
                        return Err(f.err("engine needs at least one shard"));
                    }
                    if machines_per_shard == 0 {
                        return Err(f.err("shards need at least one machine"));
                    }
                    header = Some((
                        EngineConfig {
                            shards,
                            machines_per_shard,
                            backend,
                            parallel,
                            journal,
                            retained_segments,
                        },
                        batches,
                    ));
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown engine snapshot op '{other}'"),
                    })
                }
            }
        }
        let (cfg, batches) = header.ok_or(ParseError {
            line: 0,
            message: "engine snapshot has no 'c' config line".to_string(),
        })?;
        let shard_nodes: Vec<&SnapshotNode> = node.children_of("shard").collect();
        if shard_nodes.len() != cfg.shards {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "engine snapshot declares {} shards but embeds {} shard sections",
                    cfg.shards,
                    shard_nodes.len()
                ),
            });
        }
        let mut shards: Vec<Arc<Mutex<Shard>>> = Vec::with_capacity(cfg.shards);
        for (i, sn) in shard_nodes.into_iter().enumerate() {
            let shard = Shard::read_state(cfg.backend, cfg.machines_per_shard, sn)?;
            if shard.id() != i {
                return Err(ParseError {
                    line: 0,
                    message: format!("shard sections out of order: found {} at {i}", shard.id()),
                });
            }
            shards.push(Arc::new(Mutex::new(shard)));
        }
        let pool = Self::build_pool(&cfg, &shards);
        let journal = cfg.journal.then(|| Journal::new(cfg.clone()));
        Ok(Engine {
            cfg,
            shards,
            pool,
            journal,
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::Window;

    fn engine(shards: usize, parallel: bool) -> Engine {
        Engine::new(EngineConfig {
            shards,
            parallel,
            journal: true,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn submit_routes_deletes_to_the_inserting_shard() {
        let mut e = engine(8, false);
        for i in 0..200u64 {
            e.submit(Request::Insert {
                id: JobId(i),
                window: Window::new(0, 1 << 12),
            });
        }
        assert_eq!(e.queued(), 200);
        let report = e.flush();
        assert_eq!(report.processed(), 200);
        assert_eq!(report.failed(), 0);
        for i in 0..200u64 {
            e.submit(Request::Delete { id: JobId(i) });
        }
        let report = e.flush();
        assert_eq!(report.processed(), 200, "failures: {:?}", report.failures);
        assert_eq!(e.active_count(), 0);
    }

    #[test]
    fn tenants_are_namespaced() {
        let mut e = engine(4, false);
        let w = Window::new(0, 64);
        let a = e
            .submit_for(
                TenantId(1),
                Request::Insert {
                    id: JobId(7),
                    window: w,
                },
            )
            .unwrap();
        let b = e
            .submit_for(
                TenantId(2),
                Request::Insert {
                    id: JobId(7),
                    window: w,
                },
            )
            .unwrap();
        assert_ne!(a, b, "same external id, different tenants");
        let report = e.flush();
        assert_eq!(report.processed(), 2);
        assert_eq!(e.active_count(), 2);
        // Oversized external ids are rejected up front.
        let big = JobId(1 << TENANT_SHIFT);
        assert!(e
            .submit_for(TenantId(1), Request::Delete { id: big })
            .is_err());
        // The reserved tenant 0 (aliasing the direct submit() space) too.
        assert!(e
            .submit_for(TenantId(0), Request::Delete { id: JobId(7) })
            .is_err());
    }

    #[test]
    fn parallel_flush_matches_sequential() {
        let build = |parallel| {
            let mut e = engine(6, parallel);
            for i in 0..300u64 {
                e.submit(Request::Insert {
                    id: JobId(i),
                    window: Window::new((i % 4) * 256, (i % 4) * 256 + 256),
                });
            }
            e.flush();
            for i in (0..300u64).step_by(3) {
                e.submit(Request::Delete { id: JobId(i) });
            }
            e.flush();
            e
        };
        let seq = build(false);
        let par = build(true);
        assert_eq!(seq.placements(), par.placements());
        assert_eq!(seq.total_costs(), par.total_costs());
        assert_eq!(
            seq.journal().unwrap().events(),
            par.journal().unwrap().events()
        );
    }

    #[test]
    fn metrics_aggregate_shard_rows() {
        let mut e = engine(4, false);
        for i in 0..128u64 {
            e.submit(Request::Insert {
                id: JobId(i),
                window: Window::new(0, 1 << 10),
            });
        }
        e.flush();
        let m = e.metrics();
        assert_eq!(m.requests, 128);
        assert_eq!(m.active_jobs, 128);
        assert_eq!(m.shards.len(), 4);
        assert_eq!(m.shards.iter().map(|s| s.requests).sum::<u64>(), 128);
        assert!(
            m.imbalance() < 2.0,
            "router is badly skewed: {}",
            m.imbalance()
        );
    }
}
