//! Pluggable per-shard scheduler backends.
//!
//! A shard owns one full [`Reallocator`] — either a machine group driven
//! through the §3/§5 wrapper ([`realloc_multi::ReallocatingScheduler`])
//! over any single-machine scheduler, or a natively multi-machine
//! baseline. [`BackendKind`] is the serializable selector (it also names
//! backends on the `exp_engine_throughput` command line and inside
//! journal headers); [`BackendKind::build`] instantiates the trait
//! object.

use realloc_baselines::{EdfRescheduler, LlfRescheduler, NaivePeckingScheduler};
use realloc_core::Reallocator;
use realloc_multi::{ReallocatingScheduler, TheoremOneScheduler};
use realloc_reservation::{DeamortizedScheduler, ReservationScheduler};

/// A shard backend: any reallocating scheduler that can cross threads.
pub type BoxedBackend = Box<dyn Reallocator + Send>;

/// Which scheduler a shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Raw §4 reservation scheduler per machine (no trimming):
    /// `O(log* Δ)` reallocations per request.
    Reservation,
    /// The paper's Theorem 1 configuration: reservation + `n*` trimming,
    /// `O(min{log* n, log* Δ})` per request.
    TheoremOne {
        /// Trim factor `γ`.
        gamma: u64,
    },
    /// Deamortized trimming (worst-case bounded per-request work).
    Deamortized {
        /// Trim factor `γ`.
        gamma: u64,
    },
    /// The Lemma 4 naive pecking-order baseline.
    Naive,
    /// Earliest-deadline-first full recompute (brittle baseline).
    Edf,
    /// Least-laxity-first full recompute (brittle baseline).
    Llf,
}

impl BackendKind {
    /// Instantiates the backend on `machines` machines.
    pub fn build(&self, machines: usize) -> BoxedBackend {
        match *self {
            BackendKind::Reservation => Box::new(ReallocatingScheduler::from_factory(
                machines,
                ReservationScheduler::new,
            )),
            BackendKind::TheoremOne { gamma } => {
                Box::new(TheoremOneScheduler::theorem_one(machines, gamma))
            }
            BackendKind::Deamortized { gamma } => {
                Box::new(ReallocatingScheduler::from_factory(machines, || {
                    DeamortizedScheduler::new(gamma)
                }))
            }
            BackendKind::Naive => Box::new(ReallocatingScheduler::from_factory(
                machines,
                NaivePeckingScheduler::new,
            )),
            BackendKind::Edf => Box::new(EdfRescheduler::new(machines)),
            BackendKind::Llf => Box::new(LlfRescheduler::new(machines)),
        }
    }

    /// Parses the textual selector (inverse of [`std::fmt::Display`]):
    /// `reservation`, `theorem1:γ`, `deamortized:γ`, `naive`, `edf`,
    /// `llf`.
    pub fn parse(s: &str) -> Result<BackendKind, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let gamma = |what: &str| -> Result<u64, String> {
            let raw = arg.ok_or_else(|| format!("{what} needs ':gamma' (e.g. {what}:8)"))?;
            raw.parse::<u64>()
                .map_err(|e| format!("bad gamma '{raw}': {e}"))
                .and_then(|g| {
                    if g >= 1 {
                        Ok(g)
                    } else {
                        Err("gamma must be >= 1".to_string())
                    }
                })
        };
        match name {
            "reservation" => Ok(BackendKind::Reservation),
            "theorem1" => Ok(BackendKind::TheoremOne {
                gamma: gamma("theorem1")?,
            }),
            "deamortized" => Ok(BackendKind::Deamortized {
                gamma: gamma("deamortized")?,
            }),
            "naive" => Ok(BackendKind::Naive),
            "edf" => Ok(BackendKind::Edf),
            "llf" => Ok(BackendKind::Llf),
            other => Err(format!(
                "unknown backend '{other}' (expected reservation, theorem1:g, \
                 deamortized:g, naive, edf, llf)"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BackendKind::Reservation => write!(f, "reservation"),
            BackendKind::TheoremOne { gamma } => write!(f, "theorem1:{gamma}"),
            BackendKind::Deamortized { gamma } => write!(f, "deamortized:{gamma}"),
            BackendKind::Naive => write!(f, "naive"),
            BackendKind::Edf => write!(f, "edf"),
            BackendKind::Llf => write!(f, "llf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::{JobId, Window};

    #[test]
    fn parse_round_trips() {
        for kind in [
            BackendKind::Reservation,
            BackendKind::TheoremOne { gamma: 8 },
            BackendKind::Deamortized { gamma: 4 },
            BackendKind::Naive,
            BackendKind::Edf,
            BackendKind::Llf,
        ] {
            assert_eq!(BackendKind::parse(&kind.to_string()).unwrap(), kind);
        }
        assert!(BackendKind::parse("theorem1").is_err());
        assert!(BackendKind::parse("theorem1:0").is_err());
        assert!(BackendKind::parse("quantum").is_err());
    }

    #[test]
    fn every_backend_schedules() {
        for kind in [
            BackendKind::Reservation,
            BackendKind::TheoremOne { gamma: 8 },
            BackendKind::Deamortized { gamma: 8 },
            BackendKind::Naive,
            BackendKind::Edf,
            BackendKind::Llf,
        ] {
            let mut b = kind.build(2);
            assert_eq!(b.machines(), 2);
            b.insert(JobId(1), Window::new(0, 16)).unwrap();
            b.insert(JobId(2), Window::new(0, 16)).unwrap();
            assert_eq!(b.active_count(), 2, "{kind}");
            b.delete(JobId(1)).unwrap();
            assert_eq!(b.active_count(), 1, "{kind}");
        }
    }
}
