//! Pluggable per-shard scheduler backends.
//!
//! A shard owns one full [`Reallocator`] — either a machine group driven
//! through the §3/§5 wrapper ([`realloc_multi::ReallocatingScheduler`])
//! over any single-machine scheduler, or a natively multi-machine
//! baseline. [`BackendKind`] is the serializable selector (it also names
//! backends on the `exp_engine_throughput` command line and inside
//! journal headers); [`BackendKind::build`] instantiates the [`Backend`].
//!
//! `Backend` is a closed enum rather than a trait object so the
//! checkpoint layer gets static snapshot/restore dispatch: every variant
//! is [`Restorable`], and [`Backend::read_state`] rebuilds the right
//! variant from a [`BackendKind`] plus a parsed snapshot section —
//! something a `Box<dyn Reallocator>` cannot offer without downcasting.

use realloc_baselines::{EdfRescheduler, LlfRescheduler, NaivePeckingScheduler};
use realloc_core::snapshot::{Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, Reallocator, RequestOutcome, ScheduleSnapshot, Window};
use realloc_multi::{ReallocatingScheduler, TheoremOneScheduler};
use realloc_reservation::{DeamortizedScheduler, ReservationScheduler};

/// A shard backend: one of the closed set of schedulers a shard can run.
/// All variants are `Send`, so shards still cross the worker-pool
/// threads freely.
#[allow(clippy::large_enum_variant)]
pub enum Backend {
    /// Raw reservation scheduler per machine (no trimming).
    Reservation(ReallocatingScheduler<ReservationScheduler>),
    /// Theorem 1: reservation + `n*` trimming per machine.
    TheoremOne(TheoremOneScheduler),
    /// Deamortized trimming per machine.
    Deamortized(ReallocatingScheduler<DeamortizedScheduler>),
    /// Lemma 4 naive pecking baseline per machine.
    Naive(ReallocatingScheduler<NaivePeckingScheduler>),
    /// EDF full-recompute baseline (natively multi-machine).
    Edf(EdfRescheduler),
    /// LLF full-recompute baseline (natively multi-machine).
    Llf(LlfRescheduler),
}

macro_rules! each_backend {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            Backend::Reservation($b) => $body,
            Backend::TheoremOne($b) => $body,
            Backend::Deamortized($b) => $body,
            Backend::Naive($b) => $body,
            Backend::Edf($b) => $body,
            Backend::Llf($b) => $body,
        }
    };
}

impl Reallocator for Backend {
    fn machines(&self) -> usize {
        each_backend!(self, b => b.machines())
    }

    fn insert(&mut self, id: JobId, window: Window) -> Result<RequestOutcome, Error> {
        each_backend!(self, b => b.insert(id, window))
    }

    fn delete(&mut self, id: JobId) -> Result<RequestOutcome, Error> {
        each_backend!(self, b => b.delete(id))
    }

    fn snapshot(&self) -> ScheduleSnapshot {
        each_backend!(self, b => b.snapshot())
    }

    fn active_count(&self) -> usize {
        each_backend!(self, b => b.active_count())
    }

    fn name(&self) -> &'static str {
        each_backend!(self, b => b.name())
    }
}

impl Backend {
    /// Writes the backend's full state as a child section of the current
    /// snapshot section (kind depends on the variant: `multi`, `edf`, or
    /// `llf`).
    pub fn write_state(&self, w: &mut SnapshotWriter) {
        each_backend!(self, b => w.child(b))
    }

    /// Restores a backend of the given kind from its snapshot section
    /// inside `parent`, validating that the recorded state matches the
    /// selector (machine count, trim γ).
    pub fn read_state(
        kind: BackendKind,
        machines: usize,
        parent: &SnapshotNode,
    ) -> Result<Backend, ParseError> {
        fn section<T: Restorable>(parent: &SnapshotNode) -> Result<&SnapshotNode, ParseError> {
            parent.only_child(T::SNAPSHOT_KIND)
        }
        let backend = match kind {
            BackendKind::Reservation => {
                Backend::Reservation(Restorable::read_state(section::<
                    ReallocatingScheduler<ReservationScheduler>,
                >(parent)?)?)
            }
            BackendKind::TheoremOne { gamma } => {
                let s: TheoremOneScheduler =
                    Restorable::read_state(section::<TheoremOneScheduler>(parent)?)?;
                for m in 0..s.machines() {
                    if s.backend(m).gamma() != gamma {
                        return Err(ParseError {
                            line: 0,
                            message: format!(
                                "machine {m} recorded gamma {} but the backend is theorem1:{gamma}",
                                s.backend(m).gamma()
                            ),
                        });
                    }
                }
                Backend::TheoremOne(s)
            }
            BackendKind::Deamortized { gamma } => {
                let s: ReallocatingScheduler<DeamortizedScheduler> = Restorable::read_state(
                    section::<ReallocatingScheduler<DeamortizedScheduler>>(parent)?,
                )?;
                for m in 0..s.machines() {
                    if s.backend(m).gamma() != gamma {
                        return Err(ParseError {
                            line: 0,
                            message: format!(
                                "machine {m} recorded gamma {} but the backend is deamortized:{gamma}",
                                s.backend(m).gamma()
                            ),
                        });
                    }
                }
                Backend::Deamortized(s)
            }
            BackendKind::Naive => Backend::Naive(Restorable::read_state(section::<
                ReallocatingScheduler<NaivePeckingScheduler>,
            >(parent)?)?),
            BackendKind::Edf => {
                Backend::Edf(Restorable::read_state(section::<EdfRescheduler>(parent)?)?)
            }
            BackendKind::Llf => {
                Backend::Llf(Restorable::read_state(section::<LlfRescheduler>(parent)?)?)
            }
        };
        if backend.machines() != machines {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "backend snapshot has {} machines, the engine config says {machines}",
                    backend.machines()
                ),
            });
        }
        Ok(backend)
    }
}

/// Which scheduler a shard runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Raw §4 reservation scheduler per machine (no trimming):
    /// `O(log* Δ)` reallocations per request.
    Reservation,
    /// The paper's Theorem 1 configuration: reservation + `n*` trimming,
    /// `O(min{log* n, log* Δ})` per request.
    TheoremOne {
        /// Trim factor `γ`.
        gamma: u64,
    },
    /// Deamortized trimming (worst-case bounded per-request work).
    Deamortized {
        /// Trim factor `γ`.
        gamma: u64,
    },
    /// The Lemma 4 naive pecking-order baseline.
    Naive,
    /// Earliest-deadline-first full recompute (brittle baseline).
    Edf,
    /// Least-laxity-first full recompute (brittle baseline).
    Llf,
}

impl BackendKind {
    /// Instantiates the backend on `machines` machines.
    pub fn build(&self, machines: usize) -> Backend {
        match *self {
            BackendKind::Reservation => Backend::Reservation(ReallocatingScheduler::from_factory(
                machines,
                ReservationScheduler::new,
            )),
            BackendKind::TheoremOne { gamma } => {
                Backend::TheoremOne(TheoremOneScheduler::theorem_one(machines, gamma))
            }
            BackendKind::Deamortized { gamma } => {
                Backend::Deamortized(ReallocatingScheduler::from_factory(machines, || {
                    DeamortizedScheduler::new(gamma)
                }))
            }
            BackendKind::Naive => Backend::Naive(ReallocatingScheduler::from_factory(
                machines,
                NaivePeckingScheduler::new,
            )),
            BackendKind::Edf => Backend::Edf(EdfRescheduler::new(machines)),
            BackendKind::Llf => Backend::Llf(LlfRescheduler::new(machines)),
        }
    }

    /// Parses the textual selector (inverse of [`std::fmt::Display`]):
    /// `reservation`, `theorem1:γ`, `deamortized:γ`, `naive`, `edf`,
    /// `llf`.
    pub fn parse(s: &str) -> Result<BackendKind, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let gamma = |what: &str| -> Result<u64, String> {
            let raw = arg.ok_or_else(|| format!("{what} needs ':gamma' (e.g. {what}:8)"))?;
            raw.parse::<u64>()
                .map_err(|e| format!("bad gamma '{raw}': {e}"))
                .and_then(|g| {
                    if g >= 1 {
                        Ok(g)
                    } else {
                        Err("gamma must be >= 1".to_string())
                    }
                })
        };
        match name {
            "reservation" => Ok(BackendKind::Reservation),
            "theorem1" => Ok(BackendKind::TheoremOne {
                gamma: gamma("theorem1")?,
            }),
            "deamortized" => Ok(BackendKind::Deamortized {
                gamma: gamma("deamortized")?,
            }),
            "naive" => Ok(BackendKind::Naive),
            "edf" => Ok(BackendKind::Edf),
            "llf" => Ok(BackendKind::Llf),
            other => Err(format!(
                "unknown backend '{other}' (expected reservation, theorem1:g, \
                 deamortized:g, naive, edf, llf)"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BackendKind::Reservation => write!(f, "reservation"),
            BackendKind::TheoremOne { gamma } => write!(f, "theorem1:{gamma}"),
            BackendKind::Deamortized { gamma } => write!(f, "deamortized:{gamma}"),
            BackendKind::Naive => write!(f, "naive"),
            BackendKind::Edf => write!(f, "edf"),
            BackendKind::Llf => write!(f, "llf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::{JobId, Window};

    #[test]
    fn parse_round_trips() {
        for kind in [
            BackendKind::Reservation,
            BackendKind::TheoremOne { gamma: 8 },
            BackendKind::Deamortized { gamma: 4 },
            BackendKind::Naive,
            BackendKind::Edf,
            BackendKind::Llf,
        ] {
            assert_eq!(BackendKind::parse(&kind.to_string()).unwrap(), kind);
        }
        assert!(BackendKind::parse("theorem1").is_err());
        assert!(BackendKind::parse("theorem1:0").is_err());
        assert!(BackendKind::parse("quantum").is_err());
    }

    #[test]
    fn every_backend_schedules() {
        for kind in [
            BackendKind::Reservation,
            BackendKind::TheoremOne { gamma: 8 },
            BackendKind::Deamortized { gamma: 8 },
            BackendKind::Naive,
            BackendKind::Edf,
            BackendKind::Llf,
        ] {
            let mut b = kind.build(2);
            assert_eq!(b.machines(), 2);
            b.insert(JobId(1), Window::new(0, 16)).unwrap();
            b.insert(JobId(2), Window::new(0, 16)).unwrap();
            assert_eq!(b.active_count(), 2, "{kind}");
            b.delete(JobId(1)).unwrap();
            assert_eq!(b.active_count(), 1, "{kind}");
        }
    }
}
