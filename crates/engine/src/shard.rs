//! A single engine shard: one backend, one ingress queue, one stats block.
//!
//! Shards are fully independent — no shared scheduling state — so a
//! batch flush can drain all of them concurrently; the engine parks each
//! shard in an `Arc<Mutex<_>>` cell owned jointly with its persistent
//! drain worker (see [`crate::pool`] and [`crate::Engine::flush`]). The
//! queue is a single-producer (the router) / single-consumer (the drain)
//! [`VecDeque`]; the design deliberately keeps each request's entire
//! lifetime on one shard so a lock-free MPSC ring can replace the queue
//! without touching scheduling logic. Telemetry is O(1) per request and
//! O(1) memory (see [`crate::metrics`]).

use crate::backend::{Backend, BackendKind};
use crate::journal::{Costs, ErrCode, ReqResult};
use crate::metrics::CostHistogram;
use crate::tele::{ShardTele, SERVICE_SAMPLE_EVERY};
use fxhash::FxHashMap;
use realloc_core::snapshot::{Fields, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{JobId, Reallocator as _, Request, Window};
use realloc_telemetry::Histogram;
use std::collections::VecDeque;

/// One independent scheduling shard.
pub struct Shard {
    id: usize,
    backend: Backend,
    queue: VecDeque<Request>,
    /// Active jobs with their original windows (tenant-resolved ids).
    /// FxHash: touched once per request; only point lookups, never
    /// order-sensitive iteration.
    active: FxHashMap<JobId, Window>,
    /// Per-request reallocation-cost distribution (bounded memory).
    hist: CostHistogram,
    requests: u64,
    reallocations: u64,
    migrations: u64,
    failed: u64,
    /// Drain-path instrument handles, present iff the owning engine has
    /// telemetry attached. Runtime-only: never serialized (latency state
    /// must not perturb replication digests).
    tele: Option<ShardTele>,
    /// Requests serviced since telemetry attach — the 1-in-N sampling
    /// phase for service-latency timing.
    service_tick: u64,
}

/// Everything one shard did during a single flush, in execution order.
#[derive(Clone, Debug, Default)]
pub struct ShardDrain {
    /// Per-request `(request, result)` records.
    pub records: Vec<(Request, ReqResult)>,
}

impl ShardDrain {
    /// Requests that were serviced successfully.
    pub fn processed(&self) -> usize {
        self.records.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// Requests the backend rejected.
    pub fn failed(&self) -> usize {
        self.records.len() - self.processed()
    }

    /// Total reallocations across the drain.
    pub fn reallocations(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .map(|c| c.reallocations)
            .sum()
    }

    /// Total migrations across the drain.
    pub fn migrations(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .map(|c| c.migrations)
            .sum()
    }
}

impl Shard {
    /// New shard `id` running `kind` on `machines` machines.
    pub fn new(id: usize, kind: BackendKind, machines: usize) -> Self {
        Shard {
            id,
            backend: kind.build(machines),
            queue: VecDeque::new(),
            active: FxHashMap::default(),
            hist: CostHistogram::new(),
            requests: 0,
            reallocations: 0,
            migrations: 0,
            failed: 0,
            tele: None,
            service_tick: 0,
        }
    }

    /// Installs (or clears) the drain-path instruments. Called by the
    /// engine on telemetry attach and again after every reshard (fresh
    /// shards start uninstrumented).
    pub(crate) fn set_telemetry(&mut self, tele: Option<ShardTele>) {
        self.tele = tele;
    }

    /// Shard index within the engine.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueues a request for the next flush.
    pub fn enqueue(&mut self, r: Request) {
        self.queue.push_back(r);
    }

    /// Requests waiting for the next flush.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently scheduled on this shard.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Requests this shard serviced successfully so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests this shard's backend rejected so far.
    pub fn failed_count(&self) -> u64 {
        self.failed
    }

    /// Total reallocations since construction.
    pub fn total_reallocations(&self) -> u64 {
        self.reallocations
    }

    /// Total cross-machine migrations since construction.
    pub fn total_migrations(&self) -> u64 {
        self.migrations
    }

    /// Per-request reallocation-cost distribution.
    pub fn cost_histogram(&self) -> &CostHistogram {
        &self.hist
    }

    /// Largest active window span on this shard (the paper's `Δ`,
    /// shard-local). Computed on demand from the active set.
    pub fn current_max_span(&self) -> u64 {
        self.active.values().map(|w| w.span()).max().unwrap_or(0)
    }

    /// The backend's current `(job, machine, slot)` assignments.
    pub fn snapshot(&self) -> realloc_core::ScheduleSnapshot {
        self.backend.snapshot()
    }

    /// Original window of an active job.
    pub fn window_of(&self, id: JobId) -> Option<Window> {
        self.active.get(&id).copied()
    }

    /// Every active job with its original window, sorted by id.
    pub fn active_jobs(&self) -> Vec<(JobId, Window)> {
        let mut out: Vec<(JobId, Window)> = self.active.iter().map(|(&id, &w)| (id, w)).collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Adopts an already-active job during a reshard rebuild: places it
    /// through the backend and records it active, **without** touching
    /// the request counters, cost totals, or histogram — re-homing a job
    /// is not a serviced request. Any rebuild moves the backend performs
    /// are internal to the fresh shard and not metered.
    pub(crate) fn adopt(&mut self, id: JobId, window: Window) -> Result<(), realloc_core::Error> {
        self.backend.insert(id, window)?;
        self.active.insert(id, window);
        Ok(())
    }

    /// Takes the pending (unflushed) queue, FIFO order preserved — the
    /// reshard path re-routes these onto the successor shards so a resize
    /// never drops a queued request.
    pub(crate) fn take_queue(&mut self) -> VecDeque<Request> {
        std::mem::take(&mut self.queue)
    }

    /// Telemetry counters `(requests, failed, reallocations, migrations)`
    /// — folded into the engine's carryover totals when a reshard retires
    /// this shard.
    pub(crate) fn stat_parts(&self) -> (u64, u64, u64, u64) {
        (
            self.requests,
            self.failed,
            self.reallocations,
            self.migrations,
        )
    }

    /// Services every queued request in FIFO order.
    ///
    /// Failures are recorded and skipped — a multi-tenant service must
    /// keep serving the remaining stream when one request is rejected
    /// (the caller sees each failure in the returned records and in
    /// [`Shard::failed_count`]).
    pub fn drain(&mut self) -> ShardDrain {
        // Take the instrument bundle out so the instrumented loop can
        // borrow `self` mutably; the uninstrumented path stays a single
        // Option check.
        match self.tele.take() {
            Some(tele) => {
                let out = self.drain_instrumented(&tele);
                self.tele = Some(tele);
                out
            }
            None => {
                let mut out = ShardDrain::default();
                while let Some(req) = self.queue.pop_front() {
                    let result = self.service_one(req);
                    out.records.push((req, result));
                }
                out
            }
        }
    }

    /// The instrumented drain loop: times the whole drain (one
    /// `engine_shard_drain_nanos` sample, recorded on whichever worker
    /// thread drains this shard), and one request in
    /// [`SERVICE_SAMPLE_EVERY`] into a **local** histogram merged into
    /// the shared `engine_service_sampled_nanos` once at the end — the
    /// shared-instrument lock is touched twice per drain, never per
    /// request.
    fn drain_instrumented(&mut self, tele: &ShardTele) -> ShardDrain {
        let start = tele.t.now_nanos();
        let mut sampled = Histogram::new();
        let mut out = ShardDrain::default();
        while let Some(req) = self.queue.pop_front() {
            self.service_tick += 1;
            let result = if self.service_tick.is_multiple_of(SERVICE_SAMPLE_EVERY) {
                let t0 = tele.t.now_nanos();
                let result = self.service_one(req);
                sampled.record(tele.t.now_nanos().saturating_sub(t0));
                result
            } else {
                self.service_one(req)
            };
            out.records.push((req, result));
        }
        tele.drain_nanos
            .record(tele.t.now_nanos().saturating_sub(start));
        if !sampled.is_empty() {
            tele.service_nanos.merge(&sampled);
        }
        out
    }

    /// Services one request against the backend, with all shard
    /// bookkeeping. Failures are recorded, never fatal.
    fn service_one(&mut self, req: Request) -> ReqResult {
        match self.backend.request(req) {
            Ok(outcome) => {
                self.apply_bookkeeping(req);
                let netted = outcome.netted();
                let costs = Costs {
                    reallocations: netted.reallocation_cost(),
                    migrations: netted.migration_cost(),
                };
                self.requests += 1;
                self.reallocations += costs.reallocations;
                self.migrations += costs.migrations;
                self.hist.record(costs.reallocations);
                Ok(costs)
            }
            Err(e) => {
                self.failed += 1;
                Err(ErrCode::of(&e))
            }
        }
    }

    fn apply_bookkeeping(&mut self, req: Request) {
        match req {
            Request::Insert { id, window } => {
                self.active.insert(id, window);
            }
            Request::Delete { id } => {
                self.active.remove(&id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapshot / restore (the engine checkpoint building block)
    // ------------------------------------------------------------------

    /// Writes the shard's full state — telemetry counters, cost
    /// histogram, active windows, pending (unflushed) queue entries in
    /// FIFO order, and the backend's complete scheduler state — as a
    /// `shard <id>` section. [`crate::Engine::checkpoint`] flushes
    /// before snapshotting, so checkpoint sections have empty queues;
    /// the migration path may snapshot mid-queue and restore resumes
    /// with the queue intact.
    pub(crate) fn write_state(&self, w: &mut SnapshotWriter) {
        w.begin_args("shard", format_args!("{}", self.id));
        for r in &self.queue {
            match *r {
                Request::Insert { id, window } => w.line(format_args!(
                    "q + {} {} {}",
                    id.0,
                    window.start(),
                    window.end()
                )),
                Request::Delete { id } => w.line(format_args!("q - {}", id.0)),
            }
        }
        w.line(format_args!(
            "s {} {} {} {}",
            self.requests, self.failed, self.reallocations, self.migrations
        ));
        let (count, sum, max, overflow) = self.hist.parts();
        w.line(format_args!("c {count} {sum} {max} {overflow}"));
        for (cost, n) in self.hist.nonzero_buckets() {
            w.line(format_args!("cb {cost} {n}"));
        }
        let mut active: Vec<(JobId, Window)> =
            self.active.iter().map(|(&id, &w)| (id, w)).collect();
        active.sort_by_key(|&(id, _)| id);
        for (id, win) in active {
            w.line(format_args!("a {} {} {}", id.0, win.start(), win.end()));
        }
        self.backend.write_state(w);
        w.end();
    }

    /// Rebuilds a shard from a `shard` section, cross-validating the
    /// active set against the restored backend.
    pub(crate) fn read_state(
        kind: BackendKind,
        machines: usize,
        node: &SnapshotNode,
    ) -> Result<Shard, ParseError> {
        node.expect_kind("shard")?;
        let id: usize = node
            .args
            .first()
            .and_then(|a| a.parse().ok())
            .ok_or(ParseError {
                line: 0,
                message: "shard section needs a numeric id argument".to_string(),
            })?;
        let mut stats: Option<(u64, u64, u64, u64)> = None;
        let mut hist_header: Option<(u64, u64, u64, u64)> = None;
        let mut buckets: Vec<(usize, u64)> = Vec::new();
        let mut active: FxHashMap<JobId, Window> = FxHashMap::default();
        let mut queue: VecDeque<Request> = VecDeque::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "q" => {
                    let op = f.token("queued op")?;
                    let id = JobId(f.u64("job id")?);
                    let request = match op {
                        "+" => {
                            let start = f.u64("window start")?;
                            let end = f.u64("window end")?;
                            if end <= start {
                                return Err(
                                    f.err(format!("window end {end} must exceed start {start}"))
                                );
                            }
                            Request::Insert {
                                id,
                                window: Window::new(start, end),
                            }
                        }
                        "-" => Request::Delete { id },
                        other => return Err(f.err(format!("bad queued op '{other}'"))),
                    };
                    f.finish()?;
                    queue.push_back(request);
                }
                "s" => {
                    if stats.is_some() {
                        return Err(f.err("duplicate 's' stats line"));
                    }
                    let v = (
                        f.u64("requests")?,
                        f.u64("failed")?,
                        f.u64("reallocations")?,
                        f.u64("migrations")?,
                    );
                    f.finish()?;
                    stats = Some(v);
                }
                "c" => {
                    if hist_header.is_some() {
                        return Err(f.err("duplicate 'c' histogram line"));
                    }
                    let v = (
                        f.u64("count")?,
                        f.u64("sum")?,
                        f.u64("max")?,
                        f.u64("overflow")?,
                    );
                    f.finish()?;
                    hist_header = Some(v);
                }
                "cb" => {
                    let cost = f.usize("bucket cost")?;
                    let n = f.u64("bucket count")?;
                    f.finish()?;
                    buckets.push((cost, n));
                }
                "a" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    f.finish()?;
                    if end <= start {
                        return Err(f.err(format!("window end {end} must exceed start {start}")));
                    }
                    if active.insert(id, Window::new(start, end)).is_some() {
                        return Err(f.err(format!("duplicate active job {id}")));
                    }
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown shard snapshot op '{other}'"),
                    })
                }
            }
        }
        let (requests, failed, reallocations, migrations) = stats.ok_or(ParseError {
            line: 0,
            message: format!("shard {id} snapshot has no 's' stats line"),
        })?;
        let (count, sum, max, overflow) = hist_header.ok_or(ParseError {
            line: 0,
            message: format!("shard {id} snapshot has no 'c' histogram line"),
        })?;
        let hist = CostHistogram::from_parts(count, sum, max, overflow, &buckets)
            .map_err(|message| ParseError { line: 0, message })?;
        if requests != count {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "shard {id}: {requests} serviced requests but the histogram records {count}"
                ),
            });
        }
        let backend = Backend::read_state(kind, machines, node)?;
        // The backend must schedule exactly the recorded active set.
        if backend.active_count() != active.len() {
            return Err(ParseError {
                line: 0,
                message: format!(
                    "shard {id}: backend holds {} jobs but {} are recorded active",
                    backend.active_count(),
                    active.len()
                ),
            });
        }
        for (id2, _) in backend.snapshot().iter() {
            if !active.contains_key(&id2) {
                return Err(ParseError {
                    line: 0,
                    message: format!("shard {id}: backend schedules unrecorded job {id2}"),
                });
            }
        }
        Ok(Shard {
            id,
            backend,
            queue,
            active,
            hist,
            requests,
            reallocations,
            migrations,
            failed,
            tele: None,
            service_tick: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_services_fifo_and_records_failures() {
        let mut s = Shard::new(0, BackendKind::Reservation, 1);
        s.enqueue(Request::Insert {
            id: JobId(1),
            window: Window::new(0, 8),
        });
        s.enqueue(Request::Insert {
            id: JobId(1), // duplicate: rejected
            window: Window::new(0, 8),
        });
        s.enqueue(Request::Delete { id: JobId(1) });
        let drain = s.drain();
        assert_eq!(drain.records.len(), 3);
        assert_eq!(drain.processed(), 2);
        assert_eq!(drain.failed(), 1);
        assert_eq!(s.failed_count(), 1);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.queued(), 0);
        assert_eq!(s.cost_histogram().count(), 2);
    }

    #[test]
    fn max_span_tracks_the_active_set() {
        let mut s = Shard::new(3, BackendKind::Reservation, 1);
        for (i, span) in [8u64, 64, 64].iter().enumerate() {
            s.enqueue(Request::Insert {
                id: JobId(i as u64),
                window: Window::with_span(0, *span),
            });
        }
        s.drain();
        assert_eq!(s.current_max_span(), 64);
        s.enqueue(Request::Delete { id: JobId(1) });
        s.enqueue(Request::Delete { id: JobId(2) });
        s.drain();
        assert_eq!(s.current_max_span(), 8);
        assert_eq!(s.window_of(JobId(0)), Some(Window::with_span(0, 8)));
    }
}
