//! Persistent shard worker pool for parallel flushes.
//!
//! PR 1 drained shards on `std::thread::scope` threads spawned inside
//! every flush — one thread per shard, regardless of the host. At
//! serving batch sizes (hundreds of requests across 8–16 shards, i.e.
//! well under a millisecond of work per shard) the per-flush spawn +
//! join cost dominated the drain itself, and on small hosts the
//! oversubscription made `parallel` flushes *slower* than sequential
//! ones. This module replaces that with a pool that is
//!
//! * **persistent** — workers are spawned once at engine construction
//!   and live until the engine drops; a flush costs one channel
//!   round-trip per worker instead of a thread spawn per shard;
//! * **hardware-sized** — `min(shards, available_parallelism)` workers,
//!   each owning a contiguous chunk of shard cells. Extra threads beyond
//!   the hardware can only add context switches, never throughput. On a
//!   single-core host the engine skips the pool entirely and drains
//!   inline, so enabling `parallel` is never a pessimization;
//! * **a full barrier** — [`WorkerPool::drain_all`] fans one `Drain`
//!   command out per worker, then collects each worker's
//!   [`ShardDrain`]s in shard order. Shards share no state and each
//!   chunk is drained in shard order, so the result is byte-identical
//!   to a sequential flush (the journal property tests pin this down).
//!
//! The shard mutexes are uncontended by construction: the engine only
//! locks a shard to enqueue or read stats between flushes, and workers
//! only lock during a drain command. Everything is `std` — no external
//! runtime — and `unsafe`-free (the crate forbids it), which is why the
//! shards are shared via `Arc<Mutex<_>>` rather than lent as `&mut`.

use crate::shard::{Shard, ShardDrain};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

enum Cmd {
    /// Service everything queued on the worker's shard chunk.
    Drain,
    /// Exit the worker loop.
    Shutdown,
}

struct Worker {
    cmd_tx: Sender<Cmd>,
    res_rx: Receiver<Vec<ShardDrain>>,
    handle: Option<JoinHandle<()>>,
}

/// Persistent, hardware-sized drain workers; see the module docs.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// How many drain threads a pool over `shards` shards would use:
    /// `min(shards, available_parallelism)`. When this is `<= 1` a pool
    /// cannot beat draining inline and the engine skips it.
    pub(crate) fn threads_for(shards: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        shards.min(hw)
    }

    /// Spawns a hardware-sized pool; see [`WorkerPool::with_threads`].
    pub(crate) fn new(shards: &[Arc<Mutex<Shard>>]) -> Self {
        Self::with_threads(shards, Self::threads_for(shards.len()))
    }

    /// Spawns `threads` workers (clamped to `1..=shards`), handing each
    /// a contiguous chunk of shards. Workers idle on their command
    /// channel until the first flush. The explicit count exists so tests
    /// can exercise multi-worker chunking and the flush barrier on
    /// hosts whose `available_parallelism` is 1.
    pub(crate) fn with_threads(shards: &[Arc<Mutex<Shard>>], threads: usize) -> Self {
        let threads = threads.clamp(1, shards.len().max(1));
        let chunk = shards.len().div_ceil(threads);
        let workers = shards
            .chunks(chunk)
            .enumerate()
            .map(|(id, chunk)| {
                let cells: Vec<Arc<Mutex<Shard>>> = chunk.iter().map(Arc::clone).collect();
                let (cmd_tx, cmd_rx) = channel::<Cmd>();
                let (res_tx, res_rx) = channel::<Vec<ShardDrain>>();
                let handle = std::thread::Builder::new()
                    .name(format!("realloc-drain-{id}"))
                    .spawn(move || {
                        while let Ok(cmd) = cmd_rx.recv() {
                            match cmd {
                                Cmd::Drain => {
                                    let drains: Vec<ShardDrain> =
                                        cells.iter().map(|s| crate::lock(s).drain()).collect();
                                    if res_tx.send(drains).is_err() {
                                        break; // pool dropped mid-flush
                                    }
                                }
                                Cmd::Shutdown => break,
                            }
                        }
                    })
                    .expect("failed to spawn shard drain worker");
                Worker {
                    cmd_tx,
                    res_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Flush barrier: all chunks drain concurrently; the results are
    /// appended to `out` in shard order (chunks are contiguous and each
    /// worker drains its chunk in shard order, so concatenation in
    /// worker order restores the sequential layout exactly).
    pub(crate) fn drain_all(&self, out: &mut Vec<ShardDrain>) {
        for w in &self.workers {
            w.cmd_tx.send(Cmd::Drain).expect("shard worker exited");
        }
        for w in &self.workers {
            out.extend(w.res_rx.recv().expect("shard drain panicked"));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &self.workers {
            // A worker that already exited (panic) is fine to ignore:
            // join below surfaces nothing, and the drop must not panic.
            let _ = w.cmd_tx.send(Cmd::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use realloc_core::{JobId, Request, Window};

    fn shard_cell(id: usize) -> Arc<Mutex<Shard>> {
        Arc::new(Mutex::new(Shard::new(id, BackendKind::Reservation, 1)))
    }

    #[test]
    fn threads_never_exceed_shards_or_hardware() {
        assert_eq!(WorkerPool::threads_for(0), 0);
        assert_eq!(WorkerPool::threads_for(1), 1);
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap();
        assert_eq!(WorkerPool::threads_for(1024), hw.min(1024));
    }

    #[test]
    fn pool_drains_all_shards_in_order() {
        let shards: Vec<_> = (0..6).map(shard_cell).collect();
        for (i, s) in shards.iter().enumerate() {
            s.lock().unwrap().enqueue(Request::Insert {
                id: JobId(i as u64),
                window: Window::new(0, 64),
            });
        }
        let pool = WorkerPool::new(&shards);
        let mut drains = Vec::new();
        pool.drain_all(&mut drains);
        assert_eq!(drains.len(), 6);
        assert!(drains.iter().all(|d| d.processed() == 1));
        // Order is shard order regardless of chunking: drain i serviced
        // the request enqueued on shard i.
        for (i, d) in drains.iter().enumerate() {
            assert_eq!(d.records[0].0.job_id(), JobId(i as u64));
        }
        // The pool survives repeated (empty) flushes.
        let mut empty = Vec::new();
        pool.drain_all(&mut empty);
        assert_eq!(empty.len(), 6);
        assert!(empty.iter().all(|d| d.records.is_empty()));
    }

    #[test]
    fn multi_worker_chunking_preserves_shard_order() {
        // Force several workers regardless of the host's parallelism so
        // the chunk-concatenation and cross-worker barrier logic is
        // exercised even on single-core CI: 7 shards over 3 workers
        // chunk as [0..3], [3..6], [6..7].
        let shards: Vec<_> = (0..7).map(shard_cell).collect();
        for (i, s) in shards.iter().enumerate() {
            for k in 0..=(i as u64) {
                s.lock().unwrap().enqueue(Request::Insert {
                    id: JobId(i as u64 * 100 + k),
                    window: Window::new(0, 256),
                });
            }
        }
        let pool = WorkerPool::with_threads(&shards, 3);
        let mut drains = Vec::new();
        pool.drain_all(&mut drains);
        assert_eq!(drains.len(), 7);
        for (i, d) in drains.iter().enumerate() {
            // Shard i serviced exactly its own i+1 requests, in FIFO order.
            assert_eq!(d.processed(), i + 1, "shard {i}");
            let ids: Vec<JobId> = d.records.iter().map(|(r, _)| r.job_id()).collect();
            let want: Vec<JobId> = (0..=(i as u64))
                .map(|k| JobId(i as u64 * 100 + k))
                .collect();
            assert_eq!(ids, want, "shard {i} drained out of order");
        }
        // Oversized thread requests clamp to the shard count.
        let wide = WorkerPool::with_threads(&shards, 64);
        let mut again = Vec::new();
        wide.drain_all(&mut again);
        assert_eq!(again.len(), 7);
    }

    #[test]
    fn pool_shutdown_joins_workers() {
        let shards: Vec<_> = (0..2).map(shard_cell).collect();
        let pool = WorkerPool::new(&shards);
        drop(pool); // must not hang or panic
        assert_eq!(shards[0].lock().unwrap().queued(), 0);
    }
}
