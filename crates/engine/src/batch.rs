//! Batch ingestion reports.
//!
//! A *batch* is everything submitted between two [`crate::Engine::flush`]
//! calls. The flush drains every shard queue (concurrently when the
//! engine is configured `parallel`) and returns one [`BatchReport`]
//! summarizing what each shard did, so callers can meter throughput and
//! spot rejected requests without walking the journal.

use crate::journal::ErrCode;
use crate::shard::ShardDrain;
use realloc_core::Request;

/// Per-shard slice of a [`BatchReport`].
#[derive(Clone, Debug, Default)]
pub struct ShardBatchStats {
    /// Shard index.
    pub shard: usize,
    /// Requests serviced successfully in this batch.
    pub processed: usize,
    /// Requests rejected in this batch.
    pub failed: usize,
    /// Reallocations performed in this batch.
    pub reallocations: u64,
    /// Migrations performed in this batch.
    pub migrations: u64,
}

/// What one [`crate::Engine::flush`] did.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Batch sequence number (0-based flush counter).
    pub batch: u64,
    /// Per-shard statistics, indexed by shard id.
    pub per_shard: Vec<ShardBatchStats>,
    /// Every rejected request with its shard and error code.
    pub failures: Vec<(usize, Request, ErrCode)>,
}

impl BatchReport {
    pub(crate) fn from_drains(batch: u64, drains: &[ShardDrain]) -> BatchReport {
        let mut report = BatchReport {
            batch,
            per_shard: Vec::with_capacity(drains.len()),
            failures: Vec::new(),
        };
        for (shard, drain) in drains.iter().enumerate() {
            report.per_shard.push(ShardBatchStats {
                shard,
                processed: drain.processed(),
                failed: drain.failed(),
                reallocations: drain.reallocations(),
                migrations: drain.migrations(),
            });
            for (req, result) in &drain.records {
                if let Err(code) = result {
                    report.failures.push((shard, *req, *code));
                }
            }
        }
        report
    }

    /// Requests serviced successfully across all shards.
    pub fn processed(&self) -> usize {
        self.per_shard.iter().map(|s| s.processed).sum()
    }

    /// Requests rejected across all shards.
    pub fn failed(&self) -> usize {
        self.per_shard.iter().map(|s| s.failed).sum()
    }

    /// Reallocations performed across all shards.
    pub fn reallocations(&self) -> u64 {
        self.per_shard.iter().map(|s| s.reallocations).sum()
    }

    /// Migrations performed across all shards.
    pub fn migrations(&self) -> u64 {
        self.per_shard.iter().map(|s| s.migrations).sum()
    }
}
