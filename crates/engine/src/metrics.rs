//! Telemetry aggregation: per-shard statistics → one engine snapshot.
//!
//! Telemetry must be O(1) per request and O(1) per shard in memory — a
//! serving engine cannot retain per-request samples forever. Per-request
//! reallocation costs therefore feed a fixed-size [`CostHistogram`]
//! (costs are `O(min{log* n, log* Δ})` by Theorem 1, so the direct
//! buckets cover every real stream; pathological costs land in an
//! overflow bucket and percentile queries above it return the recorded
//! maximum).

use crate::shard::Shard;
use std::sync::{Arc, Mutex};

/// Direct buckets of [`CostHistogram`]: exact counts for costs
/// `0..DIRECT_BUCKETS`, one overflow bucket above.
const DIRECT_BUCKETS: usize = 65;

/// Fixed-size exact histogram of per-request reallocation costs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostHistogram {
    buckets: [u64; DIRECT_BUCKETS],
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for CostHistogram {
    fn default() -> Self {
        CostHistogram {
            buckets: [0; DIRECT_BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl CostHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request's cost. O(1).
    pub fn record(&mut self, cost: u64) {
        match self.buckets.get_mut(cost as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += cost;
        self.max = self.max.max(cost);
    }

    /// Requests recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean cost per request.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded cost.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-quantile (`0.0..=1.0`), matching
    /// `sorted[round((count-1) * p)]` on the full sample list — exact
    /// for costs below the overflow bucket, the recorded max above it.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * p).round() as u64;
        let mut seen = 0u64;
        for (cost, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen > rank {
                return cost as u64;
            }
        }
        self.max
    }

    /// Raw scalar parts `(count, sum, max, overflow)` for snapshot
    /// serialization.
    pub(crate) fn parts(&self) -> (u64, u64, u64, u64) {
        (self.count, self.sum, self.max, self.overflow)
    }

    /// Non-empty direct buckets as `(cost, count)` pairs, ascending.
    pub(crate) fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(cost, &n)| (cost, n))
    }

    /// Rebuilds a histogram from serialized parts, validating internal
    /// consistency (graceful errors, never panics — checkpoint data may
    /// be truncated or hand-edited).
    pub(crate) fn from_parts(
        count: u64,
        sum: u64,
        max: u64,
        overflow: u64,
        buckets: &[(usize, u64)],
    ) -> Result<CostHistogram, String> {
        let mut h = CostHistogram {
            overflow,
            count,
            sum,
            max,
            ..CostHistogram::default()
        };
        let mut bucket_total = 0u64;
        for &(cost, n) in buckets {
            let slot = h
                .buckets
                .get_mut(cost)
                .ok_or_else(|| format!("histogram bucket {cost} out of range"))?;
            if *slot != 0 {
                return Err(format!("duplicate histogram bucket {cost}"));
            }
            *slot = n;
            // Checked: counts come from untrusted checkpoint text.
            bucket_total = bucket_total
                .checked_add(n)
                .ok_or_else(|| format!("histogram bucket counts overflow at cost {cost}"))?;
        }
        if bucket_total.checked_add(overflow) != Some(count) {
            return Err(format!(
                "histogram count {count} != bucket total {bucket_total} + overflow {overflow}"
            ));
        }
        if overflow == 0 {
            // Without overflow samples the sum is fully determined by
            // the buckets; a forged sum would skew the restored mean.
            let mut dot = 0u64;
            for &(cost, n) in buckets {
                dot = (cost as u64)
                    .checked_mul(n)
                    .and_then(|x| dot.checked_add(x))
                    .ok_or_else(|| format!("histogram sum overflows at cost {cost}"))?;
            }
            if dot != sum {
                return Err(format!("histogram sum {sum} != bucket dot-product {dot}"));
            }
        }
        if count > 0 && overflow == 0 {
            let top = buckets.iter().map(|&(c, _)| c as u64).max().unwrap_or(0);
            if top != max {
                return Err(format!("histogram max {max} != top bucket {top}"));
            }
        }
        Ok(h)
    }

    /// Merges another histogram into this one (engine-wide union).
    pub fn merge(&mut self, other: &CostHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Totals inherited from shards retired by elastic resizes.
///
/// A reshard dissolves every shard and rebuilds the active jobs on a
/// fresh shard set; the dissolved shards' serviced-request counters and
/// cost histograms are *historical facts* that must survive the rebuild
/// (resizing an engine must not zero its telemetry), so they fold into
/// this engine-level accumulator. [`Metrics`] totals are always
/// `carryover + live shards`; per-shard rows describe live shards only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Carryover {
    /// Requests serviced by retired shards.
    pub requests: u64,
    /// Requests rejected on retired shards.
    pub failed: u64,
    /// Reallocations performed on retired shards.
    pub reallocations: u64,
    /// Migrations performed on retired shards.
    pub migrations: u64,
    /// Per-request cost distribution recorded on retired shards.
    pub hist: CostHistogram,
}

impl Carryover {
    /// Folds a retiring shard's counters and histogram in.
    pub(crate) fn absorb(&mut self, shard: &Shard) {
        let (requests, failed, reallocations, migrations) = shard.stat_parts();
        self.requests += requests;
        self.failed += failed;
        self.reallocations += reallocations;
        self.migrations += migrations;
        self.hist.merge(shard.cost_histogram());
    }
}

/// Cost-distribution summary of per-request reallocation counts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostPercentiles {
    /// Mean reallocations per request.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl CostPercentiles {
    fn of(hist: &CostHistogram) -> CostPercentiles {
        CostPercentiles {
            mean: hist.mean(),
            p50: hist.percentile(0.50),
            p95: hist.percentile(0.95),
            p99: hist.percentile(0.99),
            max: hist.max(),
        }
    }
}

/// One shard's slice of a [`Metrics`] snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Requests serviced successfully.
    pub requests: u64,
    /// Requests rejected by the backend.
    pub failed: u64,
    /// Jobs currently active on the shard.
    pub active_jobs: u64,
    /// Total reallocations since construction.
    pub reallocations: u64,
    /// Total cross-machine migrations since construction.
    pub migrations: u64,
    /// Distribution of per-request reallocation cost.
    pub cost: CostPercentiles,
}

/// Point-in-time telemetry for the whole engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Per-shard rows, indexed by shard id (live shards only; totals
    /// below also include shards retired by resizes).
    pub shards: Vec<ShardMetrics>,
    /// Routing epoch the engine is serving at (0 until the first resize).
    pub epoch: u64,
    /// Requests serviced, lifetime (live shards + resize carryover).
    pub requests: u64,
    /// Requests rejected, lifetime.
    pub failed: u64,
    /// Total active jobs.
    pub active_jobs: u64,
    /// Total reallocations, lifetime.
    pub reallocations: u64,
    /// Total migrations, lifetime.
    pub migrations: u64,
    /// Engine-wide per-request cost distribution (merged shard
    /// histograms plus carryover, not an average of averages).
    pub cost: CostPercentiles,
}

impl Metrics {
    /// Builds a snapshot from the engine's shard cells (each shard is
    /// locked once, briefly — metrics reads never overlap a flush),
    /// folding in the resize carryover so lifetime totals survive
    /// reshards.
    pub(crate) fn collect(shards: &[Arc<Mutex<Shard>>], carry: &Carryover, epoch: u64) -> Metrics {
        let mut union = carry.hist.clone();
        let rows: Vec<ShardMetrics> = shards
            .iter()
            .map(|s| {
                let s = crate::lock(s);
                union.merge(s.cost_histogram());
                ShardMetrics {
                    shard: s.id(),
                    requests: s.requests(),
                    failed: s.failed_count(),
                    active_jobs: s.active_count() as u64,
                    reallocations: s.total_reallocations(),
                    migrations: s.total_migrations(),
                    cost: CostPercentiles::of(s.cost_histogram()),
                }
            })
            .collect();
        Metrics {
            epoch,
            requests: carry.requests + rows.iter().map(|r| r.requests).sum::<u64>(),
            failed: carry.failed + rows.iter().map(|r| r.failed).sum::<u64>(),
            active_jobs: rows.iter().map(|r| r.active_jobs).sum(),
            reallocations: carry.reallocations + rows.iter().map(|r| r.reallocations).sum::<u64>(),
            migrations: carry.migrations + rows.iter().map(|r| r.migrations).sum::<u64>(),
            cost: CostPercentiles::of(&union),
            shards: rows,
        }
    }

    /// Largest per-shard active-set imbalance, as a ratio of the mean
    /// (1.0 = perfectly balanced). Gauges the router's spread.
    pub fn imbalance(&self) -> f64 {
        if self.shards.is_empty() || self.active_jobs == 0 {
            return 1.0;
        }
        let mean = self.active_jobs as f64 / self.shards.len() as f64;
        let max = self.shards.iter().map(|s| s.active_jobs).max().unwrap_or(0) as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_matches_sorted_sample_percentiles() {
        let mut h = CostHistogram::new();
        for v in 1..=100u64 {
            h.record(v % 7);
        }
        let mut sorted: Vec<u64> = (1..=100u64).map(|v| v % 7).collect();
        sorted.sort_unstable();
        let pct = |p: f64| sorted[((sorted.len() as f64 - 1.0) * p).round() as usize];
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(p), pct(p), "p = {p}");
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 6);
        let mean: f64 = sorted.iter().sum::<u64>() as f64 / 100.0;
        assert!((h.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn histogram_overflow_reports_max() {
        let mut h = CostHistogram::new();
        h.record(0);
        h.record(1_000); // overflow bucket
        assert_eq!(h.percentile(1.0), 1_000);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.max(), 1_000);
    }

    #[test]
    fn histogram_merge_is_union() {
        let mut a = CostHistogram::new();
        let mut b = CostHistogram::new();
        for v in [0u64, 1, 1, 2] {
            a.record(v);
        }
        for v in [3u64, 3, 4] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.percentile(0.5), 2);
        assert_eq!(a.max(), 4);
        assert_eq!(CostHistogram::new(), CostHistogram::default());
    }
}
